//! The sharded batch-leasing ID service.
//!
//! ```text
//!             Request { tenant, count }
//!   front-end ──────────────────────────► shard (tenant % shards)
//!                bounded SPSC channel          │  owns the tenant's
//!                                              │  recycled generator
//!                                              ▼
//!                                     lease = next_ids(count)   O(arcs)
//!                                      │                │
//!                     reply (arcs) ◄───┘                └───► audit tap
//!                                                 bounded channel (arcs)
//!                                                            ▼
//!                                              LeaseAudit (striped, symbolic)
//! ```
//!
//! * **Shard-per-worker**: every tenant is pinned to one worker thread
//!   (`tenant % shards`), so a tenant's generator is single-threaded and
//!   needs no lock; cross-tenant parallelism comes from the shard fan-out.
//! * **Bulk leases**: a request for `count` IDs is served by one
//!   [`IdGenerator::next_ids`] call — `O(touched runs)` interval pushes,
//!   not `count` scalar calls — buffered in a recycled
//!   [`Lease`](uuidp_core::lease::Lease) per tenant.
//! * **Online audit**: every lease's arcs are tee'd into a pool of
//!   [`LeaseAudit`] pipeline threads. Each audit thread owns the disjoint
//!   stripe subset `{s : s ≡ t (mod audit_threads)}` of the audit's
//!   universe partition behind its own bounded channel; the worker cuts
//!   each lease with the shared [`StripePlan`] and routes every piece to
//!   the thread owning its stripe. Because the audit's headline counter
//!   is order-invariant *within* a stripe and stripes are disjoint
//!   *across* threads, the merged totals are bit-identical for every
//!   `(shards, audit_stripes, audit_threads)` combination (see
//!   [`uuidp_sim::audit`]).
//! * **Determinism**: tenant `t`'s generator is seeded from the master
//!   seed tree independently of the shard layout, and shard channels are
//!   FIFO — so for a fixed request script the per-tenant ID streams (and
//!   the audit totals) are bit-identical under any `shards` value.
//!
//! [`IdGenerator::next_ids`]: uuidp_core::traits::IdGenerator::next_ids

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::clock;
use uuidp_core::id::IdSpace;
use uuidp_core::interval::Arc;
use uuidp_core::lease::Lease;
use uuidp_core::persist::{self, SnapshotRecord, SnapshotStore};
use uuidp_core::rng::{SeedDomain, SeedTree};
use uuidp_core::traits::{GeneratorError, IdGenerator};
use uuidp_obs::{AtomicHistogram, Counter, Gauge, Registry, Stage, TraceRecorder};
use uuidp_sim::audit::{AuditCounts, LeaseAudit, StripePlan};

use crate::metrics::LatencyHistogram;

/// Events the service-wide trace recorder retains (split across its
/// per-thread ring shards).
const TRACE_CAPACITY: usize = 4096;

/// Tenants and epochs are packed into one audit owner key, so a tenant
/// recycled via [`IdService::reset_tenant`] is audited as a *new* owner —
/// overlap between its pre- and post-reset streams (the re-seeded
/// instance hazard) is then caught like any cross-tenant duplicate.
const EPOCH_SHIFT: u32 = 40;

/// Durable-state configuration: where tenant snapshots live and how
/// wide the write-ahead reservation window is.
///
/// With durability enabled every worker persists a tenant's
/// [`SnapshotRecord`] *before* emitting any ID past the tenant's
/// current reservation frontier, and a tenant whose snapshot exists on
/// startup is rebuilt with [`uuidp_core::persist::recover`] — restored
/// to the persisted state, then advanced past the whole reserved
/// window. A crashed-and-restarted service therefore never re-emits an
/// ID it may already have handed out; it leaks at most `reservation`
/// IDs per tenant per crash.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory of per-tenant snapshot files (shared across shards —
    /// tenants are pinned to one shard, so files have one writer).
    pub dir: PathBuf,
    /// Minimum reservation window per persist. Each persist reserves
    /// `max(reservation, lease count)` IDs; larger windows persist less
    /// often but leak more IDs per crash.
    pub reservation: u128,
    /// Fsync every record before renaming it live (power-loss
    /// durability; process-crash safety needs only the default
    /// rename atomicity).
    pub sync: bool,
    /// Crash-injection test hook: when the `N`th write-ahead persist
    /// (counted across all shards) lands, the lease that triggered it
    /// comes back with [`LeaseReply::halted`] set — and a `TcpServer`
    /// seeing that flag suppresses the reply and kills the whole node,
    /// simulating a crash in the exact window the in-process halt can
    /// never hit: *after* the write-ahead record, *before* the reply.
    /// In-process consumers ignore the flag. `None` disables the hook.
    pub halt_after_persists: Option<u64>,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with a modest default window.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            reservation: 4096,
            sync: false,
            halt_after_persists: None,
        }
    }
}

/// Configuration of an [`IdService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The ID-generation algorithm every tenant runs.
    pub kind: AlgorithmKind,
    /// The ID universe.
    pub space: IdSpace,
    /// Worker shards (threads); tenants are pinned by `tenant % shards`.
    pub shards: usize,
    /// Stripes of the audit's universe partition.
    pub audit_stripes: usize,
    /// Audit pipeline threads; thread `t` owns stripes `s ≡ t (mod
    /// audit_threads)`. Clamped to the stripe count at startup.
    pub audit_threads: usize,
    /// Depth of each bounded request/audit channel.
    pub queue_depth: usize,
    /// Root of the per-tenant seed tree.
    pub master_seed: u64,
    /// Fault injection: `(victim, twin)` makes tenant `twin` draw its
    /// seed as if it were `victim` — two identically seeded generators,
    /// the guaranteed-collision scenario the audit must always flag.
    pub seed_alias: Option<(u64, u64)>,
    /// When set, tenant generator state is persisted with the
    /// write-ahead reservation discipline and recovered on startup.
    pub durability: Option<DurabilityConfig>,
    /// Whether the corr-id trace recorder retains events. The metric
    /// registry is always live (it is a handful of relaxed atomics);
    /// turning this off swaps the recorder for a no-op — the
    /// compiled-in-but-idle configuration the overhead benchmark pins.
    pub obs_trace: bool,
}

impl ServiceConfig {
    /// A service for `kind` over `space` with modest defaults.
    pub fn new(kind: AlgorithmKind, space: IdSpace) -> Self {
        ServiceConfig {
            kind,
            space,
            shards: 2,
            audit_stripes: 16,
            audit_threads: 1,
            queue_depth: 1024,
            master_seed: 0x5EED,
            seed_alias: None,
            durability: None,
            obs_trace: true,
        }
    }
}

/// A granted (possibly partial) lease, as returned to clients.
#[derive(Debug)]
pub struct LeaseReply {
    /// The requesting tenant.
    pub tenant: u64,
    /// Granted arcs in emission order.
    pub arcs: Vec<Arc>,
    /// Total IDs granted (sum of arc lengths).
    pub granted: u128,
    /// The generator error, if the grant fell short of the request.
    pub error: Option<GeneratorError>,
    /// Crash-injection marker: this lease tripped
    /// [`DurabilityConfig::halt_after_persists`]. The IDs *were* issued
    /// and the write-ahead record *was* persisted; a `TcpServer` seeing
    /// this suppresses the reply and halts the node, so the client
    /// observes a crash between persist and reply. In-process callers
    /// ignore it.
    pub halted: bool,
}

enum ShardMsg {
    /// Serve a lease and reply with its arcs. `corr` is the wire
    /// correlation id for trace spans (0 = uncorrelated/in-process).
    Lease {
        tenant: u64,
        count: u128,
        corr: u64,
        reply: SyncSender<LeaseReply>,
    },
    /// Serve a lease, fire-and-forget (stress traffic).
    Issue { tenant: u64, count: u128 },
    /// Recycle the tenant's generator into a fresh epoch via `reset`.
    Reset { tenant: u64 },
    /// Persist every durable tenant at its *current* state (reservation
    /// 0 — an exact-resume checkpoint), then reply.
    Checkpoint { done: SyncSender<()> },
    /// Reply once every prior message on this shard is processed.
    Barrier { done: SyncSender<()> },
    /// Reply with a copy of this shard's running accounting. Doubles as
    /// a barrier: the snapshot covers every prior message, and every
    /// audit record for those messages has already been routed.
    Stats { reply: SyncSender<WorkerStats> },
}

/// One message into an audit pipeline thread.
enum AuditMsg {
    /// One routed batch of audit material: the pieces of one lease that
    /// fall in the stripes owned by a single audit thread, pre-cut by
    /// the shared [`StripePlan`] so the audit records them with no
    /// further routing.
    Record {
        owner: u64,
        /// Non-wrapping `[lo, hi)` segments, each inside one owned stripe.
        segments: Vec<(u128, u128)>,
        /// [`clock::monotonic_ns`] stamp taken at the worker's tap, so
        /// the audit thread's lag reading shares every other telemetry
        /// timestamp's epoch.
        sent_ns: u64,
        /// Wire correlation id of the lease that produced this batch
        /// (0 = in-process traffic), for trace spans.
        corr: u64,
    },
    /// Reply with a snapshot of this thread's counters so far. Because
    /// the channel is FIFO, a probe enqueued after a set of records
    /// observes all of them.
    Probe {
        reply: SyncSender<AuditThreadReport>,
    },
}

/// What one audit pipeline thread measured: its stripe subset's counters
/// plus its own tap-to-audit lag profile. Merging every thread's report
/// ([`AuditCounts::merge`] element-wise, max/weighted-mean for lag)
/// reconstructs the aggregate [`AuditReport`] — and when `audit_threads
/// = 1` the merged report *is* the single thread's report.
#[derive(Debug, Clone, Copy)]
pub struct AuditThreadReport {
    /// Duplicate/record counters for this thread's stripes.
    pub counts: AuditCounts,
    /// Worst tap-to-audit lag this thread observed.
    pub max_lag: Duration,
    /// Mean tap-to-audit lag in nanoseconds on this thread.
    pub mean_lag_ns: f64,
    /// Routed lease batches this thread processed.
    pub records: u64,
}

/// Audit-side half of a [`ServiceReport`].
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Aggregated duplicate/record counters (sum over threads).
    pub counts: AuditCounts,
    /// Worst observed tap-to-audit lag on any thread.
    pub max_lag: Duration,
    /// Mean tap-to-audit lag in nanoseconds, weighted across threads by
    /// records processed.
    pub mean_lag_ns: f64,
    /// Routed lease batches processed (with one audit thread this equals
    /// the number of audited leases; with `n` threads a lease fans out
    /// into up to `n` batches).
    pub records: u64,
    /// The per-thread breakdown the aggregate was merged from, in thread
    /// order. Lag asymmetry here is the straggler signal a single merged
    /// number would hide. Empty only in reports reconstructed from a
    /// remote summary line, which carries aggregates alone.
    pub per_thread: Vec<AuditThreadReport>,
}

impl AuditReport {
    /// Merges per-thread reports into the aggregate view.
    pub fn merge(per_thread: Vec<AuditThreadReport>) -> AuditReport {
        let counts = per_thread
            .iter()
            .fold(AuditCounts::default(), |acc, t| acc.merge(&t.counts));
        let max_lag = per_thread
            .iter()
            .map(|t| t.max_lag)
            .max()
            .unwrap_or(Duration::ZERO);
        let records: u64 = per_thread.iter().map(|t| t.records).sum();
        let lag_sum: f64 = per_thread
            .iter()
            .map(|t| t.mean_lag_ns * t.records as f64)
            .sum();
        AuditReport {
            counts,
            max_lag,
            mean_lag_ns: if records == 0 {
                0.0
            } else {
                lag_sum / records as f64
            },
            records,
            per_thread,
        }
    }
}

/// Aggregated shutdown report of an [`IdService`].
#[derive(Debug)]
pub struct ServiceReport {
    /// Total IDs issued across all leases (including partial grants).
    pub issued_ids: u128,
    /// Leases served.
    pub leases: u64,
    /// Leases that ended in a generator error (exhaustion).
    pub errors: u64,
    /// Per-lease issue cost (measured at the worker, fill + audit tap).
    pub latency: LatencyHistogram,
    /// The audit pipeline's findings.
    pub audit: AuditReport,
    /// Wall-clock service lifetime.
    pub uptime: Duration,
}

struct TenantSlot {
    generator: Box<dyn IdGenerator>,
    lease: Lease,
    epoch: u32,
    /// Write-ahead frontier: the generator may emit up to this count
    /// without persisting again (0 forces a persist on the next lease).
    frontier: u128,
    /// Sequence number of the tenant's last persisted record.
    seq: u64,
}

#[derive(Default, Clone)]
struct WorkerStats {
    issued_ids: u128,
    leases: u64,
    errors: u64,
    latency: LatencyHistogram,
}

/// A running service: worker shards + audit pipeline behind channels.
pub struct IdService {
    space: IdSpace,
    shard_txs: Vec<SyncSender<ShardMsg>>,
    workers: Vec<JoinHandle<WorkerStats>>,
    /// Probe taps into the audit pipeline (the workers hold the record
    /// taps); dropped at shutdown so the audit threads can exit.
    audit_txs: Vec<SyncSender<AuditMsg>>,
    audit: Vec<JoinHandle<AuditThreadReport>>,
    /// [`clock::monotonic_ns`] stamp at construction, for uptime.
    started_ns: u64,
    registry: std::sync::Arc<Registry>,
    trace: std::sync::Arc<TraceRecorder>,
    /// Where flight-recorder dumps land (the durability state dir);
    /// `None` disables crash/duplicate dumps.
    flight_dir: Option<PathBuf>,
}

impl IdService {
    /// Boots the worker shards and the audit pipeline pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.durability` is set but the chosen algorithm
    /// has no snapshot support (SetAside, Snowflake), if the snapshot
    /// directory cannot be created, or if any existing snapshot record
    /// is unreadable — corruption must surface as a boot error, not a
    /// mid-traffic worker panic that would wedge a whole shard.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(config.shards >= 1, "at least one shard");
        assert!(config.queue_depth >= 1, "channels must hold a message");
        if let Some(durability) = &config.durability {
            assert!(
                config
                    .kind
                    .build(config.space)
                    .spawn(0)
                    .snapshot()
                    .is_some(),
                "durability requires a snapshot-capable algorithm, got {:?}",
                config.kind
            );
            let store = SnapshotStore::open(&durability.dir).expect("snapshot directory");
            for tenant in store.tenants().expect("snapshot directory listing") {
                match store.load(tenant) {
                    Err(e) => panic!(
                        "refusing to start over a damaged snapshot store: \
                         tenant {tenant}: {e} (repair or remove the record in {:?})",
                        durability.dir
                    ),
                    Ok(Some(record)) => {
                        // A record from a different universe or algorithm
                        // means the state dir belongs to another
                        // deployment: recovering it would emit IDs
                        // outside this service's space (wedging the
                        // audit) or from the wrong permutation family.
                        assert_eq!(
                            record.space, config.space,
                            "snapshot store {:?} was written for universe {}, \
                             this service is configured for {} (tenant {tenant})",
                            durability.dir, record.space, config.space
                        );
                        assert!(
                            snapshot_matches_kind(&config.kind, &record.state),
                            "snapshot store {:?} holds {:?} state for tenant \
                             {tenant}, incompatible with configured {:?}",
                            durability.dir,
                            record.state,
                            config.kind
                        );
                    }
                    Ok(None) => {}
                }
            }
        }
        let registry = std::sync::Arc::new(Registry::new());
        let trace = std::sync::Arc::new(if config.obs_trace {
            TraceRecorder::new(TRACE_CAPACITY)
        } else {
            TraceRecorder::off()
        });
        let plan = StripePlan::new(config.space, config.audit_stripes);
        // More threads than stripes would idle; clamp rather than panic.
        let audit_threads = config.audit_threads.clamp(1, plan.stripe_count());
        let mut audit_txs = Vec::with_capacity(audit_threads);
        let mut audit = Vec::with_capacity(audit_threads);
        for _ in 0..audit_threads {
            let (tx, rx) = sync_channel::<AuditMsg>(config.queue_depth);
            audit_txs.push(tx);
            let space = config.space;
            let stripes = config.audit_stripes;
            let obs = AuditObs {
                records: registry.counter("uuidp_audit_records_total"),
                duplicate_ids: registry.gauge("uuidp_audit_duplicate_ids"),
                trace: std::sync::Arc::clone(&trace),
            };
            audit.push(std::thread::spawn(move || {
                audit_loop(space, stripes, rx, obs)
            }));
        }

        // One write-ahead persist counter across all shards drives the
        // `halt_after_persists` crash-injection hook.
        let persists = std::sync::Arc::new(AtomicU64::new(0));
        let mut shard_txs = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let (tx, rx) = sync_channel::<ShardMsg>(config.queue_depth);
            shard_txs.push(tx);
            let cfg = config.clone();
            let taps = audit_txs.clone();
            let persists = std::sync::Arc::clone(&persists);
            let obs = WorkerObs::new(&registry, std::sync::Arc::clone(&trace));
            workers.push(std::thread::spawn(move || {
                worker_loop(cfg, rx, taps, plan, persists, obs)
            }));
        }
        // The service keeps its own tap clones for summary probes; they
        // are dropped at shutdown, after the workers', so the audit
        // threads exit exactly when both record and probe taps are gone.
        IdService {
            space: config.space,
            shard_txs,
            workers,
            audit_txs,
            audit,
            started_ns: clock::monotonic_ns(),
            registry,
            trace,
            flight_dir: config.durability.as_ref().map(|d| d.dir.clone()),
        }
    }

    /// The service's metric registry. Front-ends (the TCP server, the
    /// stress driver) register their own families here too, so one
    /// scrape covers the whole node.
    pub fn registry(&self) -> std::sync::Arc<Registry> {
        std::sync::Arc::clone(&self.registry)
    }

    /// The service's corr-id trace recorder (a no-op recorder when
    /// [`ServiceConfig::obs_trace`] is off).
    pub fn trace(&self) -> std::sync::Arc<TraceRecorder> {
        std::sync::Arc::clone(&self.trace)
    }

    /// Where this service's flight-recorder dumps land, if anywhere.
    pub fn flight_dir(&self) -> Option<&PathBuf> {
        self.flight_dir.as_ref()
    }

    /// Dumps a flight-recorder file (registry snapshot + recent trace
    /// events + the focus span's timeline) into the durability state
    /// dir. Returns the dump path, or `None` when the service has no
    /// state dir or the write failed (a postmortem aid must never take
    /// the service down with it).
    pub fn dump_flight(&self, reason: &str, focus_corr: Option<u64>) -> Option<PathBuf> {
        let dir = self.flight_dir.as_ref()?;
        uuidp_obs::dump_flight(
            dir,
            reason,
            &self.registry.snapshot(),
            &self.trace,
            focus_corr,
        )
        .ok()
    }

    /// The service's ID universe.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shard_txs.len()
    }

    /// Number of audit pipeline threads (after stripe-count clamping).
    pub fn audit_threads(&self) -> usize {
        self.audit.len()
    }

    fn shard_of(&self, tenant: u64) -> &SyncSender<ShardMsg> {
        &self.shard_txs[(tenant % self.shard_txs.len() as u64) as usize]
    }

    /// Synchronously leases `count` IDs for `tenant`.
    pub fn lease(&self, tenant: u64, count: u128) -> LeaseReply {
        self.lease_traced(tenant, count, 0)
    }

    /// [`IdService::lease`] carrying the wire correlation id, so the
    /// worker/audit trace events join the request's span. In-process
    /// callers use `corr = 0` (via [`IdService::lease`]).
    pub fn lease_traced(&self, tenant: u64, count: u128, corr: u64) -> LeaseReply {
        let (reply, rx) = sync_channel(1);
        self.shard_of(tenant)
            .send(ShardMsg::Lease {
                tenant,
                count,
                corr,
                reply,
            })
            .expect("shard alive");
        rx.recv().expect("shard replies")
    }

    /// Fire-and-forget lease (stress traffic): the IDs are issued,
    /// audited, and counted, but not shipped back.
    pub fn issue(&self, tenant: u64, count: u128) {
        self.shard_of(tenant)
            .send(ShardMsg::Issue { tenant, count })
            .expect("shard alive");
    }

    /// Recycles `tenant`'s generator into a fresh epoch (allocation-free
    /// [`IdGenerator::reset`] under a fresh seed). The audit treats the
    /// new epoch as a new owner, so pre/post-reset overlap is flagged.
    ///
    /// [`IdGenerator::reset`]: uuidp_core::traits::IdGenerator::reset
    pub fn reset_tenant(&self, tenant: u64) {
        self.shard_of(tenant)
            .send(ShardMsg::Reset { tenant })
            .expect("shard alive");
    }

    /// Sends one `make(done)` message to every shard, then waits for
    /// all acks (fan-out first so shards work in parallel).
    fn shard_barrier(&self, make: impl Fn(SyncSender<()>) -> ShardMsg) {
        let barriers: Vec<Receiver<()>> = self
            .shard_txs
            .iter()
            .map(|tx| {
                let (done, rx) = sync_channel(1);
                tx.send(make(done)).expect("shard alive");
                rx
            })
            .collect();
        for rx in barriers {
            rx.recv().expect("shard alive");
        }
    }

    /// Persists every durable tenant's *current* state as an
    /// exact-resume checkpoint (reservation 0) and blocks until done.
    /// A restart after a clean `checkpoint` resumes every stream with
    /// zero leaked IDs; without one, recovery abandons each tenant's
    /// open reservation window instead. No-op when durability is off.
    pub fn checkpoint(&self) {
        self.shard_barrier(|done| ShardMsg::Checkpoint { done });
    }

    /// Blocks until every shard has processed all previously submitted
    /// requests (the audit pipeline may still be draining).
    pub fn drain(&self) {
        self.shard_barrier(|done| ShardMsg::Barrier { done });
    }

    /// A live snapshot of the service's accounting — the same shape as
    /// the shutdown report, without stopping anything.
    ///
    /// The snapshot is *consistent*: the `Stats` round trip to every
    /// shard is itself a barrier (each shard answers after serving all
    /// prior requests and routing their audit records), and only then
    /// are the audit threads probed — FIFO channels put each probe
    /// behind every record those leases produced. So for a quiesced
    /// service, `recorded_ids` equals `issued_ids` exactly; under live
    /// traffic the snapshot covers at least everything submitted before
    /// the call.
    pub fn summary(&self) -> ServiceReport {
        let stats: Vec<Receiver<WorkerStats>> = self
            .shard_txs
            .iter()
            .map(|tx| {
                let (reply, rx) = sync_channel(1);
                tx.send(ShardMsg::Stats { reply }).expect("shard alive");
                rx
            })
            .collect();
        let mut issued_ids = 0u128;
        let mut leases = 0u64;
        let mut errors = 0u64;
        let mut latency = LatencyHistogram::new();
        for rx in stats {
            let s = rx.recv().expect("shard alive");
            issued_ids += s.issued_ids;
            leases += s.leases;
            errors += s.errors;
            latency.merge(&s.latency);
        }
        let probes: Vec<Receiver<AuditThreadReport>> = self
            .audit_txs
            .iter()
            .map(|tx| {
                let (reply, rx) = sync_channel(1);
                tx.send(AuditMsg::Probe { reply }).expect("audit alive");
                rx
            })
            .collect();
        let audit = AuditReport::merge(
            probes
                .into_iter()
                .map(|rx| rx.recv().expect("audit alive"))
                .collect(),
        );
        ServiceReport {
            issued_ids,
            leases,
            errors,
            latency,
            audit,
            uptime: Duration::from_nanos(clock::monotonic_ns().saturating_sub(self.started_ns)),
        }
    }

    /// Stops the service: closes the request channels, joins the workers
    /// and the audit pipeline, and aggregates their accounting.
    pub fn shutdown(self) -> ServiceReport {
        drop(self.shard_txs);
        let mut issued_ids = 0u128;
        let mut leases = 0u64;
        let mut errors = 0u64;
        let mut latency = LatencyHistogram::new();
        for handle in self.workers {
            let stats = handle.join().expect("worker panicked");
            issued_ids += stats.issued_ids;
            leases += stats.leases;
            errors += stats.errors;
            latency.merge(&stats.latency);
        }
        // The workers' record taps are gone; dropping the probe taps
        // lets the audit threads run dry and exit.
        drop(self.audit_txs);
        let audit = AuditReport::merge(
            self.audit
                .into_iter()
                .map(|h| h.join().expect("audit panicked"))
                .collect(),
        );
        // An audit that found duplicates is exactly the postmortem the
        // flight recorder exists for: dump before the evidence dies
        // with the process.
        if audit.counts.duplicate_ids > 0 {
            if let Some(dir) = &self.flight_dir {
                let _ = uuidp_obs::dump_flight(
                    dir,
                    "audit-duplicate",
                    &self.registry.snapshot(),
                    &self.trace,
                    None,
                );
            }
        }
        ServiceReport {
            issued_ids,
            leases,
            errors,
            latency,
            audit,
            uptime: Duration::from_nanos(clock::monotonic_ns().saturating_sub(self.started_ns)),
        }
    }
}

/// Whether a persisted state could have been produced by an instance of
/// `kind` — the boot-time guard against pointing a service at another
/// deployment's state directory. Parameterized kinds must match their
/// parameters exactly (a Bins(16) record is not a Bins(64) record).
fn snapshot_matches_kind(kind: &AlgorithmKind, state: &uuidp_core::state::GeneratorState) -> bool {
    use uuidp_core::state::GeneratorState as S;
    match (kind, state) {
        (AlgorithmKind::Random, S::Random { .. }) => true,
        (AlgorithmKind::Cluster, S::Cluster { .. }) => true,
        (AlgorithmKind::Bins { k }, S::Bins { k: stored, .. }) => k == stored,
        // Plain ClusterStar doubles; the ablation entry carries its factor.
        (AlgorithmKind::ClusterStar, S::ClusterStar { growth, .. }) => *growth == 2,
        (AlgorithmKind::ClusterStarGrowth { growth }, S::ClusterStar { growth: stored, .. }) => {
            growth == stored
        }
        // Both Bins★ chunk rules share one state shape (chunks/chunk_size
        // are stored per record).
        (AlgorithmKind::BinsStar | AlgorithmKind::BinsStarMaxFit, S::BinsStar { .. }) => true,
        (
            AlgorithmKind::SessionCounter {
                session_bits,
                counter_bits,
            },
            S::SessionCounter {
                session_bits: stored_s,
                counter_bits: stored_c,
                ..
            },
        ) => session_bits == stored_s && counter_bits == stored_c,
        _ => false,
    }
}

fn owner_key(tenant: u64, epoch: u32) -> u64 {
    debug_assert!(tenant < 1 << EPOCH_SHIFT, "tenant id too wide for epoching");
    ((epoch as u64) << EPOCH_SHIFT) | tenant
}

fn tenant_seed(roots: &SeedTree, config: &ServiceConfig, tenant: u64, epoch: u32) -> u64 {
    // Fault injection: the twin draws the victim's seed material.
    let effective = match config.seed_alias {
        Some((victim, twin)) if tenant == twin => victim,
        _ => tenant,
    };
    roots
        .trial(epoch as u64)
        .seed(SeedDomain::Instance(effective))
}

/// One worker's shared metric/trace handles: registered once at
/// startup, bumped with relaxed atomics on the hot path. Every counter
/// here is a pure fold of the request script (never of timing), so
/// same-seed twin runs reproduce them bit-identically.
struct WorkerObs {
    leases: std::sync::Arc<Counter>,
    issued: std::sync::Arc<Counter>,
    errors: std::sync::Arc<Counter>,
    persists: std::sync::Arc<Counter>,
    latency: std::sync::Arc<AtomicHistogram>,
    trace: std::sync::Arc<TraceRecorder>,
}

impl WorkerObs {
    fn new(registry: &Registry, trace: std::sync::Arc<TraceRecorder>) -> WorkerObs {
        WorkerObs {
            leases: registry.counter("uuidp_leases_total"),
            issued: registry.counter("uuidp_ids_issued_total"),
            errors: registry.counter("uuidp_lease_errors_total"),
            persists: registry.counter("uuidp_persists_total"),
            latency: registry.histogram("uuidp_lease_latency_ns"),
            trace,
        }
    }
}

/// One audit thread's metric/trace handles.
struct AuditObs {
    records: std::sync::Arc<Counter>,
    duplicate_ids: std::sync::Arc<Gauge>,
    trace: std::sync::Arc<TraceRecorder>,
}

/// One shard's routing state: the audit taps plus the shared stripe
/// geometry and a reusable per-thread segment batch buffer.
struct AuditTap {
    taps: Vec<SyncSender<AuditMsg>>,
    plan: StripePlan,
    /// `batches[t]` collects the current lease's pieces bound for audit
    /// thread `t`; drained into messages after each lease.
    batches: Vec<Vec<(u128, u128)>>,
}

impl AuditTap {
    /// Cuts the lease's arcs along the stripe plan and ships each audit
    /// thread the pieces of the stripes it owns (skipping empty batches).
    fn send(&mut self, owner: u64, arcs: &[Arc], corr: u64) {
        let threads = self.taps.len();
        for &arc in arcs {
            self.plan.split(arc, &mut |stripe, lo, hi| {
                self.batches[stripe % threads].push((lo, hi));
            });
        }
        let sent_ns = clock::monotonic_ns();
        for (t, batch) in self.batches.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let _ = self.taps[t].send(AuditMsg::Record {
                owner,
                segments: std::mem::take(batch),
                sent_ns,
                corr,
            });
        }
    }
}

/// One shard's durability state: the shared snapshot store plus the
/// configured minimum reservation window and the cross-shard
/// write-ahead persist counter behind the crash-injection hook.
struct Durability {
    store: SnapshotStore,
    reservation: u128,
    persists: std::sync::Arc<AtomicU64>,
    halt_after: Option<u64>,
}

impl Durability {
    /// Persists `slot`'s current state for `tenant` with the given
    /// reservation window and advances the slot's frontier/sequence.
    /// Persistence failures are fatal: continuing to issue without the
    /// write-ahead record would silently void the recovery guarantee.
    fn persist(&self, space: IdSpace, tenant: u64, slot: &mut TenantSlot, reservation: u128) {
        let state = slot
            .generator
            .snapshot()
            .expect("snapshot support checked at startup");
        slot.seq += 1;
        self.store
            .save(
                tenant,
                &SnapshotRecord {
                    seq: slot.seq,
                    epoch: slot.epoch,
                    reservation,
                    space,
                    state,
                },
            )
            .expect("persist tenant snapshot");
        // Saturating: a wire-supplied count near u128::MAX must clamp
        // the frontier, not wrap it below `generated` (which would
        // silently skip future write-ahead persists).
        slot.frontier = slot.generator.generated().saturating_add(reservation);
    }

    /// Counts one write-ahead persist toward the crash-injection hook;
    /// `true` means this is the persist the node must "die" after.
    fn note_write_ahead(&self) -> bool {
        let n = self.persists.fetch_add(1, Ordering::SeqCst) + 1;
        self.halt_after == Some(n)
    }
}

/// Finds or creates the slot for `tenant`: recovered from the snapshot
/// store when a record exists (continuing the persisted stream past its
/// abandoned reservation window), freshly seeded otherwise.
fn slot_for<'a>(
    config: &ServiceConfig,
    roots: &SeedTree,
    tenants: &'a mut HashMap<u64, TenantSlot>,
    algorithm: &dyn uuidp_core::traits::Algorithm,
    durability: Option<&Durability>,
    tenant: u64,
) -> &'a mut TenantSlot {
    tenants.entry(tenant).or_insert_with(|| {
        let recovered = durability.and_then(|d| {
            let record = d
                .store
                .load(tenant)
                .expect("unreadable tenant snapshot (corrupt store?)")?;
            let generator = persist::recover(&record).expect("recover tenant snapshot");
            Some(TenantSlot {
                frontier: generator.generated(),
                generator,
                lease: Lease::new(config.space),
                epoch: record.epoch,
                seq: record.seq,
            })
        });
        recovered.unwrap_or_else(|| TenantSlot {
            generator: algorithm.spawn(tenant_seed(roots, config, tenant, 0)),
            lease: Lease::new(config.space),
            epoch: 0,
            frontier: 0,
            seq: 0,
        })
    })
}

fn worker_loop(
    config: ServiceConfig,
    rx: Receiver<ShardMsg>,
    taps: Vec<SyncSender<AuditMsg>>,
    plan: StripePlan,
    persists: std::sync::Arc<AtomicU64>,
    obs: WorkerObs,
) -> WorkerStats {
    let algorithm = config.kind.build(config.space);
    let roots = SeedTree::new(config.master_seed);
    let mut tenants: HashMap<u64, TenantSlot> = HashMap::new();
    let mut stats = WorkerStats::default();
    let durability = config.durability.as_ref().map(|d| Durability {
        store: SnapshotStore::with_sync(&d.dir, d.sync).expect("snapshot directory"),
        reservation: d.reservation,
        persists,
        halt_after: d.halt_after_persists,
    });
    let mut tap = AuditTap {
        batches: vec![Vec::new(); taps.len()],
        taps,
        plan,
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Lease {
                tenant,
                count,
                corr,
                reply,
            } => {
                let (granted, error, arcs, halted) = serve(
                    &config,
                    &roots,
                    &mut tenants,
                    algorithm.as_ref(),
                    durability.as_ref(),
                    tenant,
                    count,
                    corr,
                    &mut tap,
                    &mut stats,
                    &obs,
                    true,
                );
                // Client delivery is off the issue-latency clock.
                let _ = reply.send(LeaseReply {
                    tenant,
                    arcs: arcs.unwrap_or_default(),
                    granted,
                    error,
                    halted,
                });
            }
            ShardMsg::Issue { tenant, count } => {
                serve(
                    &config,
                    &roots,
                    &mut tenants,
                    algorithm.as_ref(),
                    durability.as_ref(),
                    tenant,
                    count,
                    0,
                    &mut tap,
                    &mut stats,
                    &obs,
                    false,
                );
            }
            ShardMsg::Reset { tenant } => {
                if let Some(slot) = tenants.get_mut(&tenant) {
                    slot.epoch += 1;
                    slot.generator
                        .reset(tenant_seed(&roots, &config, tenant, slot.epoch));
                    slot.lease.clear();
                    // A reset opens a new permutation; persist it before
                    // anything from the new epoch can be emitted, or a
                    // crash would recover the pre-reset stream while
                    // post-reset IDs are already in the wild.
                    if let Some(d) = &durability {
                        d.persist(config.space, tenant, slot, 0);
                    }
                }
            }
            ShardMsg::Checkpoint { done } => {
                if let Some(d) = &durability {
                    for (&tenant, slot) in tenants.iter_mut() {
                        d.persist(config.space, tenant, slot, 0);
                    }
                }
                let _ = done.send(());
            }
            ShardMsg::Barrier { done } => {
                let _ = done.send(());
            }
            ShardMsg::Stats { reply } => {
                let _ = reply.send(stats.clone());
            }
        }
    }
    stats
}

/// Serves one lease on a worker: fill from the tenant's recycled
/// generator, route the lease's stripe pieces to the audit threads that
/// own them, account latency. A reply copy of the arcs is built only
/// when `want_arcs` is set (the synchronous lease path) — the
/// fire-and-forget path allocates nothing beyond the audit batches.
///
/// With durability on, the write-ahead rule runs first: if this lease
/// would emit past the tenant's reservation frontier, a fresh record is
/// persisted *before* any ID leaves the generator. The returned flag is
/// the crash-injection hook: `true` means this lease's write-ahead
/// persist was the configured `halt_after_persists`-th one, and the
/// node should now die *without replying* — note that the fill still
/// runs first, so the "possibly in the wild" IDs recovery must skip
/// really were emitted.
#[allow(clippy::too_many_arguments)]
fn serve(
    config: &ServiceConfig,
    roots: &SeedTree,
    tenants: &mut HashMap<u64, TenantSlot>,
    algorithm: &dyn uuidp_core::traits::Algorithm,
    durability: Option<&Durability>,
    tenant: u64,
    count: u128,
    corr: u64,
    tap: &mut AuditTap,
    stats: &mut WorkerStats,
    obs: &WorkerObs,
    want_arcs: bool,
) -> (u128, Option<GeneratorError>, Option<Vec<Arc>>, bool) {
    let t0 = clock::monotonic_ns();
    let slot = slot_for(config, roots, tenants, algorithm, durability, tenant);
    let mut halted = false;
    if let Some(d) = durability {
        // Saturating: the protocol accepts arbitrary u128 counts, and a
        // wrapped sum here would skip exactly the persist the recovery
        // guarantee depends on.
        if slot.generator.generated().saturating_add(count) > slot.frontier {
            d.persist(config.space, tenant, slot, count.max(d.reservation));
            halted = d.note_write_ahead();
            obs.persists.inc();
            obs.trace.record(
                corr,
                tenant,
                Stage::WorkerPersist,
                if halted {
                    "write-ahead (halt hook)"
                } else {
                    "write-ahead"
                },
                clock::monotonic_ns(),
            );
        }
    }
    let error = slot.lease.fill(slot.generator.as_mut(), count).err();
    let granted = slot.lease.granted();
    if granted > 0 {
        tap.send(owner_key(tenant, slot.epoch), slot.lease.arcs(), corr);
    }
    // Per-lease happy-path stamps only for real (wire) correlation
    // ids: corr-0 emissions cannot join a span — they'd collapse into
    // one shared timeline — so recording them only evicts the events
    // the flight recorder exists to keep (persists, duplicates,
    // connection milestones). Skipping them also keeps the batched
    // in-process issue path off the clock and the ring entirely.
    if corr != 0 && obs.trace.sampled(corr) {
        obs.trace.record(
            corr,
            tenant,
            Stage::WorkerEmit,
            "lease",
            clock::monotonic_ns(),
        );
    }
    let issue_ns = clock::monotonic_ns().saturating_sub(t0);
    stats.latency.record(Duration::from_nanos(issue_ns));
    stats.issued_ids += granted;
    stats.leases += 1;
    stats.errors += error.is_some() as u64;
    obs.latency.record_ns(issue_ns);
    obs.leases.inc();
    obs.issued.add(granted.min(u64::MAX as u128) as u64);
    if error.is_some() {
        obs.errors.inc();
    }
    // The client copy is off the issue-latency clock.
    let arcs = want_arcs.then(|| slot.lease.arcs().to_vec());
    (granted, error, arcs, halted)
}

/// One audit pipeline thread. It allocates the full stripe array (empty
/// stripes are a few machine words each) but only ever receives pieces
/// of the stripes it owns, so the per-thread working sets stay disjoint
/// and the merged counters are interleaving-invariant.
fn audit_loop(
    space: IdSpace,
    stripes: usize,
    rx: Receiver<AuditMsg>,
    obs: AuditObs,
) -> AuditThreadReport {
    let mut audit = LeaseAudit::new(space, stripes);
    let mut max_lag = Duration::ZERO;
    let mut lag_sum_ns = 0u128;
    let mut records = 0u64;
    let report = |audit: &LeaseAudit, max_lag, lag_sum_ns: u128, records: u64| AuditThreadReport {
        counts: audit.counts(),
        max_lag,
        mean_lag_ns: if records == 0 {
            0.0
        } else {
            lag_sum_ns as f64 / records as f64
        },
        records,
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            AuditMsg::Record {
                owner,
                segments,
                sent_ns,
                corr,
            } => {
                let lag = Duration::from_nanos(clock::monotonic_ns().saturating_sub(sent_ns));
                max_lag = max_lag.max(lag);
                lag_sum_ns += lag.as_nanos();
                records += 1;
                let before = audit.counts().duplicate_ids;
                for (lo, hi) in segments {
                    audit.record_clipped(owner, lo, hi);
                }
                obs.records.inc();
                let dups = audit.counts().duplicate_ids;
                if dups != before {
                    // The gauge is a cross-thread sum of each thread's
                    // stripe-subset total; move it by this batch's delta.
                    obs.duplicate_ids
                        .add((dups - before).min(i64::MAX as u128) as i64);
                    obs.trace.record(
                        corr,
                        owner,
                        Stage::AuditRecord,
                        "duplicate",
                        clock::monotonic_ns(),
                    );
                } else if corr != 0 && obs.trace.sampled(corr) {
                    // Clean audit legs stamp only for wire corrs, like
                    // the worker-emit stamp: a corr-0 "clean" is ring
                    // spam. Duplicates above always record — they are
                    // exactly what the ring is for.
                    obs.trace.record(
                        corr,
                        owner,
                        Stage::AuditRecord,
                        "clean",
                        clock::monotonic_ns(),
                    );
                }
            }
            AuditMsg::Probe { reply } => {
                let _ = reply.send(report(&audit, max_lag, lag_sum_ns, records));
            }
        }
    }
    report(&audit, max_lag, lag_sum_ns, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::id::Id;

    fn config(kind: AlgorithmKind, bits: u32) -> ServiceConfig {
        ServiceConfig::new(kind, IdSpace::with_bits(bits).unwrap())
    }

    /// Expands a reply's arcs into scalar IDs, in emission order.
    fn ids_of(reply: &LeaseReply, space: IdSpace) -> Vec<Id> {
        reply
            .arcs
            .iter()
            .flat_map(|a| (0..a.len).map(move |i| a.nth(space, i)))
            .collect()
    }

    #[test]
    fn leases_match_direct_generator_streams() {
        let cfg = config(AlgorithmKind::ClusterStar, 32);
        let space = cfg.space;
        let service = IdService::start(cfg.clone());
        let mut streams: HashMap<u64, Vec<Id>> = HashMap::new();
        for round in 0..10u128 {
            for tenant in 0..5u64 {
                let reply = service.lease(tenant, 16 + round);
                assert!(reply.error.is_none());
                assert_eq!(reply.granted, 16 + round);
                streams
                    .entry(tenant)
                    .or_default()
                    .extend(ids_of(&reply, space));
            }
        }
        let report = service.shutdown();
        assert_eq!(report.leases, 50);
        assert!(!report.audit.counts.collided(), "independent tenants");
        // Every tenant's leased stream equals its direct generator stream.
        let alg = cfg.kind.build(space);
        let roots = SeedTree::new(cfg.master_seed);
        for (tenant, stream) in streams {
            let mut gen = alg.spawn(roots.trial(0).seed(SeedDomain::Instance(tenant)));
            for (i, id) in stream.iter().enumerate() {
                assert_eq!(*id, gen.next_id().unwrap(), "tenant {tenant} id {i}");
            }
        }
    }

    #[test]
    fn per_tenant_streams_are_shard_count_invariant() {
        // The satellite concurrency guarantee: a fixed request script
        // yields bit-identical per-tenant ID streams and audit totals for
        // every worker-shard count, mirroring the Monte-Carlo engine's
        // thread-count invariance.
        let tenants = 6u64;
        let script: Vec<(u64, u128)> = (0..60)
            .map(|r| ((r * 7 + 3) % tenants, 8 + (r as u128 % 5) * 13))
            .collect();
        let mut reference: Option<(HashMap<u64, Vec<Id>>, AuditCounts)> = None;
        for shards in [1usize, 2, 3, 5] {
            let mut cfg = config(AlgorithmKind::BinsStar, 40);
            cfg.shards = shards;
            let space = cfg.space;
            let service = IdService::start(cfg);
            let mut streams: HashMap<u64, Vec<Id>> = HashMap::new();
            for &(tenant, count) in &script {
                let reply = service.lease(tenant, count);
                streams
                    .entry(tenant)
                    .or_default()
                    .extend(ids_of(&reply, space));
            }
            service.drain();
            let report = service.shutdown();
            match &reference {
                None => reference = Some((streams, report.audit.counts)),
                Some((ref_streams, ref_counts)) => {
                    assert_eq!(ref_streams, &streams, "{shards} shards changed IDs");
                    assert_eq!(
                        ref_counts, &report.audit.counts,
                        "{shards} shards changed audit"
                    );
                }
            }
        }
    }

    #[test]
    fn audit_totals_are_audit_thread_invariant() {
        // The tentpole determinism guarantee: the same request script
        // yields bit-identical audit counters for every audit-thread
        // count (stripes are disjoint across threads, counters are
        // order-invariant within a stripe). A small universe forces real
        // cross-tenant duplicates so the counter is non-trivial.
        // (`recorded_arcs` counts post-split segments and `flagged_records`
        // is an arrival-order diagnostic, so only the interleaving-invariant
        // counters are pinned across the grid.)
        let script: Vec<(u64, u128)> = (0..80)
            .map(|r| ((r * 5 + 1) % 7, 16 + (r as u128 % 6) * 9))
            .collect();
        let mut reference: Option<(u128, u128, u128)> = None;
        for threads in [1usize, 2, 5] {
            for stripes in [1usize, 16] {
                let mut cfg = config(AlgorithmKind::Cluster, 11); // m = 2048
                cfg.shards = 3;
                cfg.audit_stripes = stripes;
                cfg.audit_threads = threads;
                let service = IdService::start(cfg);
                for &(tenant, count) in &script {
                    service.issue(tenant, count);
                }
                service.drain();
                let report = service.shutdown();
                assert!(report.audit.counts.collided(), "tiny universe must collide");
                let got = (
                    report.issued_ids,
                    report.audit.counts.duplicate_ids,
                    report.audit.counts.recorded_ids,
                );
                match &reference {
                    None => reference = Some(got),
                    Some(r) => assert_eq!(
                        r, &got,
                        "{threads} audit threads x {stripes} stripes changed totals"
                    ),
                }
            }
        }
    }

    #[test]
    fn merged_report_equals_the_single_thread_report() {
        // Metrics honesty: with one audit thread the merged aggregate is
        // exactly that thread's report — same counts, lag, and records.
        let cfg = config(AlgorithmKind::ClusterStar, 32);
        let service = IdService::start(cfg);
        for tenant in 0..6u64 {
            service.issue(tenant, 300);
        }
        service.drain();
        let report = service.shutdown();
        assert_eq!(report.audit.per_thread.len(), 1);
        let t = &report.audit.per_thread[0];
        assert_eq!(report.audit.counts, t.counts);
        assert_eq!(report.audit.max_lag, t.max_lag);
        assert_eq!(report.audit.mean_lag_ns, t.mean_lag_ns);
        assert_eq!(report.audit.records, t.records);
    }

    #[test]
    fn per_thread_breakdown_is_consistent_with_the_aggregate() {
        let mut cfg = config(AlgorithmKind::BinsStar, 36);
        cfg.audit_stripes = 32;
        cfg.audit_threads = 4;
        cfg.shards = 2;
        let service = IdService::start(cfg);
        assert_eq!(service.audit_threads(), 4);
        for r in 0..40u64 {
            service.issue(r % 5, 200);
        }
        service.drain();
        let report = service.shutdown();
        let audit = &report.audit;
        assert_eq!(audit.per_thread.len(), 4);
        let merged = audit
            .per_thread
            .iter()
            .fold(AuditCounts::default(), |acc, t| acc.merge(&t.counts));
        assert_eq!(audit.counts, merged);
        assert_eq!(
            audit.records,
            audit.per_thread.iter().map(|t| t.records).sum::<u64>()
        );
        assert_eq!(
            audit.max_lag,
            audit.per_thread.iter().map(|t| t.max_lag).max().unwrap()
        );
        // Bins* footprints spread across the universe, so with 32 stripes
        // every thread should have seen material.
        assert!(
            audit.per_thread.iter().all(|t| t.records > 0),
            "a stripe-subset thread starved: {:?}",
            audit.per_thread
        );
        assert_eq!(audit.counts.recorded_ids, report.issued_ids);
    }

    #[test]
    fn audit_threads_clamp_to_the_stripe_count() {
        let mut cfg = config(AlgorithmKind::Cluster, 20);
        cfg.audit_stripes = 2;
        cfg.audit_threads = 16;
        let service = IdService::start(cfg);
        assert_eq!(service.audit_threads(), 2);
        service.issue(0, 64);
        service.drain();
        let report = service.shutdown();
        assert_eq!(report.issued_ids, 64);
        assert_eq!(report.audit.per_thread.len(), 2);
    }

    #[test]
    fn injected_twin_tenants_are_flagged_with_exact_measure() {
        // Zero-false-negative check: tenant 9 is seeded as tenant 0, so
        // every ID it leases duplicates tenant 0's stream.
        let mut cfg = config(AlgorithmKind::Cluster, 48);
        cfg.seed_alias = Some((0, 9));
        cfg.shards = 3;
        cfg.audit_threads = 3; // the duplicates must survive routing
        let service = IdService::start(cfg);
        let per_lease = 512u128;
        let leases = 8u128;
        for _ in 0..leases {
            service.issue(0, per_lease);
            service.issue(9, per_lease);
        }
        service.drain();
        let report = service.shutdown();
        assert!(report.audit.counts.collided(), "audit missed twin tenants");
        assert_eq!(
            report.audit.counts.duplicate_ids,
            per_lease * leases,
            "every twin-issued ID is a duplicate, counted exactly once"
        );
        assert_eq!(report.issued_ids, 2 * per_lease * leases);
    }

    #[test]
    fn reset_tenant_opens_a_new_epoch_and_audits_across_it() {
        // A reset Cluster tenant re-draws its start uniformly; on a tiny
        // universe the pre- and post-reset clusters overlap with high
        // probability, and the audit must catch that *self*-aliasing.
        let mut cfg = config(AlgorithmKind::Cluster, 8); // m = 256
        cfg.shards = 1;
        let service = IdService::start(cfg);
        service.issue(0, 200);
        service.reset_tenant(0);
        service.issue(0, 200);
        service.drain();
        let report = service.shutdown();
        // 200 + 200 IDs in a 256 universe: ≥ 144 duplicates, guaranteed.
        assert!(report.audit.counts.duplicate_ids >= 144);
        assert_eq!(report.issued_ids, 400);
    }

    #[test]
    fn partial_grants_surface_the_generator_error() {
        let mut cfg = config(AlgorithmKind::Random, 4); // m = 16
        cfg.shards = 1;
        let service = IdService::start(cfg);
        let reply = service.lease(3, 100);
        assert_eq!(reply.granted, 16);
        assert!(matches!(
            reply.error,
            Some(GeneratorError::Exhausted { generated: 16 })
        ));
        let report = service.shutdown();
        assert_eq!(report.errors, 1);
        assert_eq!(report.issued_ids, 16);
    }

    fn temp_state_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uuidp-service-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Expands a reply into scalar IDs (durability tests use small leases).
    fn lease_ids(service: &IdService, tenant: u64, count: u128) -> Vec<Id> {
        let reply = service.lease(tenant, count);
        assert!(reply.error.is_none());
        ids_of(&reply, service.space())
    }

    #[test]
    fn crash_restart_with_durability_never_reissues_an_id() {
        // Run 1 "crashes": it persisted write-ahead records during
        // operation but never checkpoints its final state. Run 2 must
        // recover past everything run 1 can have emitted.
        let dir = temp_state_dir("crash");
        for kind in [
            AlgorithmKind::Cluster,
            AlgorithmKind::ClusterStar,
            AlgorithmKind::BinsStar,
            AlgorithmKind::Bins { k: 64 },
            AlgorithmKind::Random,
        ] {
            let _ = std::fs::remove_dir_all(&dir);
            let mut cfg = config(kind.clone(), 20); // m = 2^20: reuse is *likely* if unsafe
            cfg.durability = Some(DurabilityConfig {
                dir: dir.clone(),
                reservation: 128,
                sync: false,
                halt_after_persists: None,
            });
            cfg.shards = 2;
            let service = IdService::start(cfg.clone());
            let mut first_run: HashMap<u64, std::collections::HashSet<Id>> = HashMap::new();
            for round in 0..6u128 {
                for tenant in 0..4u64 {
                    first_run.entry(tenant).or_default().extend(lease_ids(
                        &service,
                        tenant,
                        16 + round * 7,
                    ));
                }
            }
            drop(service.shutdown()); // no checkpoint: the crash fiction

            // The guarantee is per instance: a recovered tenant never
            // repeats *its own* pre-crash IDs. (Distinct tenants still
            // collide at the algorithm's inherent rate — that is the
            // paper's subject, and the audit's job, not recovery's.)
            let service = IdService::start(cfg);
            for tenant in 0..4u64 {
                for id in lease_ids(&service, tenant, 300) {
                    assert!(
                        !first_run[&tenant].contains(&id),
                        "{kind:?}: tenant {tenant} re-issued {id} after restart"
                    );
                }
            }
            drop(service.shutdown());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_makes_the_restart_resume_exactly() {
        let dir = temp_state_dir("checkpoint");
        let mut cfg = config(AlgorithmKind::ClusterStar, 32);
        cfg.durability = Some(DurabilityConfig {
            dir: dir.clone(),
            reservation: 1024,
            sync: false,
            halt_after_persists: None,
        });
        let space = cfg.space;
        let service = IdService::start(cfg.clone());
        let issued = lease_ids(&service, 5, 777);
        service.checkpoint();
        drop(service.shutdown());

        // The restarted tenant continues the same permutation with no
        // gap: its next IDs are exactly what the original seed's stream
        // says positions 777.. are.
        let service = IdService::start(cfg.clone());
        let resumed = lease_ids(&service, 5, 100);
        drop(service.shutdown());
        let alg = cfg.kind.build(space);
        let roots = SeedTree::new(cfg.master_seed);
        let mut reference = alg.spawn(roots.trial(0).seed(SeedDomain::Instance(5)));
        for _ in 0..777 {
            reference.next_id().unwrap();
        }
        for (i, id) in resumed.iter().enumerate() {
            assert_eq!(*id, reference.next_id().unwrap(), "resume diverged at {i}");
        }
        assert_eq!(issued.len(), 777);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_epochs_survive_a_restart() {
        // Epoch 1 is persisted at reset time, so a crash after the reset
        // recovers the *new* stream (and its epoch), not the old one.
        let dir = temp_state_dir("reset-epoch");
        let mut cfg = config(AlgorithmKind::Cluster, 24);
        cfg.shards = 1;
        cfg.durability = Some(DurabilityConfig {
            dir: dir.clone(),
            reservation: 64,
            sync: false,
            halt_after_persists: None,
        });
        let service = IdService::start(cfg.clone());
        lease_ids(&service, 0, 50);
        service.reset_tenant(0);
        let post_reset = lease_ids(&service, 0, 40);
        drop(service.shutdown());

        let service = IdService::start(cfg.clone());
        let recovered = lease_ids(&service, 0, 40);
        drop(service.shutdown());
        // The recovered stream continues epoch 1's permutation past its
        // reservation window: the post-reset persist recorded the fresh
        // state, the first post-reset lease reserved max(40, 64) = 64
        // from it, so recovery resumes at position 64.
        let alg = cfg.kind.build(cfg.space);
        let roots = SeedTree::new(cfg.master_seed);
        let mut epoch1 = alg.spawn(roots.trial(1).seed(SeedDomain::Instance(0)));
        epoch1.skip(64).unwrap();
        assert_eq!(recovered[0], epoch1.next_id().unwrap());
        assert!(recovered.iter().all(|id| !post_reset.contains(id)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "was written for universe")]
    fn foreign_universe_snapshots_are_rejected_at_boot() {
        // Rebinding a state dir to a different --bits must fail fast:
        // recovering 2^40-universe generators into a 2^20 service would
        // emit IDs outside the audit's space.
        let dir = temp_state_dir("foreign-universe");
        let mut cfg = config(AlgorithmKind::Cluster, 40);
        cfg.durability = Some(DurabilityConfig::new(&dir));
        let service = IdService::start(cfg);
        service.lease(0, 10);
        drop(service.shutdown());
        let mut cfg = config(AlgorithmKind::Cluster, 20);
        cfg.durability = Some(DurabilityConfig::new(&dir));
        let _ = IdService::start(cfg);
    }

    #[test]
    #[should_panic(expected = "incompatible with configured")]
    fn foreign_algorithm_snapshots_are_rejected_at_boot() {
        let dir = temp_state_dir("foreign-algorithm");
        let mut cfg = config(AlgorithmKind::Cluster, 32);
        cfg.durability = Some(DurabilityConfig::new(&dir));
        let service = IdService::start(cfg);
        service.lease(0, 10);
        drop(service.shutdown());
        let mut cfg = config(AlgorithmKind::BinsStar, 32);
        cfg.durability = Some(DurabilityConfig::new(&dir));
        let _ = IdService::start(cfg);
    }

    #[test]
    #[should_panic(expected = "damaged snapshot store")]
    fn corrupt_snapshot_records_fail_at_boot_not_mid_traffic() {
        // A bad record must stop the service from booting — not panic a
        // shard worker at first-lease time and wedge the whole shard.
        let dir = temp_state_dir("corrupt-boot");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("tenant-3.snap"), b"not a snapshot").unwrap();
        let mut cfg = config(AlgorithmKind::Cluster, 20);
        cfg.durability = Some(DurabilityConfig::new(&dir));
        let _ = IdService::start(cfg);
    }

    #[test]
    fn absurd_lease_counts_do_not_wrap_the_frontier() {
        // The wire accepts arbitrary u128 counts; the write-ahead
        // arithmetic must saturate, persist, and grant the partial
        // lease instead of wrapping past the frontier check.
        let dir = temp_state_dir("huge-count");
        let mut cfg = config(AlgorithmKind::Cluster, 10); // m = 1024
        cfg.shards = 1;
        cfg.durability = Some(DurabilityConfig {
            dir: dir.clone(),
            reservation: 64,
            sync: false,
            halt_after_persists: None,
        });
        let service = IdService::start(cfg.clone());
        let reply = service.lease(0, u128::MAX);
        assert_eq!(reply.granted, 1024, "whole universe granted");
        assert!(reply.error.is_some(), "exhaustion surfaced");
        drop(service.shutdown());
        // Recovery after the monster lease still refuses to re-emit.
        let service = IdService::start(cfg);
        let reply = service.lease(0, 10);
        assert_eq!(reply.granted, 0, "tenant is exhausted, not recycled");
        drop(service.shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "snapshot-capable")]
    fn durability_rejects_snapshotless_algorithms() {
        let mut cfg = config(AlgorithmKind::SetAside { i: 4, j: 20 }, 16);
        cfg.durability = Some(DurabilityConfig::new(temp_state_dir("reject")));
        let _ = IdService::start(cfg);
    }

    #[test]
    fn latency_histogram_sees_every_lease() {
        let cfg = config(AlgorithmKind::ClusterStar, 24);
        let service = IdService::start(cfg);
        for tenant in 0..4u64 {
            service.issue(tenant, 100);
        }
        service.drain();
        let report = service.shutdown();
        assert_eq!(report.latency.count(), 4);
        assert!(report.latency.quantile_ns(0.99) >= report.latency.quantile_ns(0.5));
        assert_eq!(report.audit.records, 4);
    }
}
