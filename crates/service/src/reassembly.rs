//! Frame reassembly buffers for the reactor.
//!
//! The old demux called `Vec::drain(..used)` once per decoded frame —
//! a head-of-buffer memmove whose cost is quadratic when one read
//! delivers many small frames (the dense-frame test below pins the
//! fix). [`ReadBuf`] instead consumes decoded bytes with an **offset
//! cursor** and compacts the survivors to the front **once per pump
//! pass** (the `pod-ui` framer idiom): however many frames a pass
//! decodes, at most one memmove of the undecoded tail happens.
//!
//! [`BufPool`] recycles drained buffers so steady-state reads allocate
//! nothing: most v2 traffic decodes straight out of the reactor's
//! shared scratch, and only partial tails ever touch a pooled buffer.
//! The pool is owned by the single reactor thread — no locks.

/// A reassembly buffer: bytes in at the back, frames consumed from the
/// front via a cursor, one compaction per pass.
#[derive(Default)]
pub struct ReadBuf {
    data: Vec<u8>,
    start: usize,
    /// Total bytes ever moved by compaction — the linearity odometer
    /// the dense-frame regression test reads.
    moved: u64,
}

impl ReadBuf {
    /// An empty buffer.
    pub fn new() -> ReadBuf {
        ReadBuf::default()
    }

    /// Appends freshly read bytes behind whatever is pending.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// The not-yet-consumed bytes (decode frames from the front).
    pub fn pending(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Marks `n` pending bytes consumed — cursor advance only, no
    /// memmove.
    pub fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.data.len());
    }

    /// Moves the pending tail to the front, reclaiming consumed space.
    /// Called once per pump pass, never per frame.
    pub fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        let tail = self.data.len() - self.start;
        self.data.copy_within(self.start.., 0);
        self.data.truncate(tail);
        self.moved += tail as u64;
        self.start = 0;
    }

    /// True when no bytes are pending.
    pub fn is_empty(&self) -> bool {
        self.start == self.data.len()
    }

    /// Bytes ever moved by compaction (see the dense-frame test).
    pub fn moved_bytes(&self) -> u64 {
        self.moved
    }

    /// The heap footprint this buffer retains.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    fn reset(&mut self) {
        self.data.clear();
        self.start = 0;
    }
}

/// A free-list of drained [`ReadBuf`]s, owned by the reactor thread.
/// Bounded in count and in per-buffer retained capacity so one burst of
/// huge frames cannot pin memory forever.
pub struct BufPool {
    free: Vec<ReadBuf>,
}

/// Buffers kept on the free list.
const MAX_POOLED: usize = 64;
/// A drained buffer whose allocation grew past this is dropped instead
/// of pooled (a 16 MiB max-payload frame must not live on as ballast).
const MAX_RETAINED_CAPACITY: usize = 256 * 1024;

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new()
    }
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> BufPool {
        BufPool { free: Vec::new() }
    }

    /// A recycled buffer if one is free, else a fresh one.
    pub fn get(&mut self) -> ReadBuf {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a drained buffer to the free list (or drops it if it is
    /// oversized or the list is full).
    pub fn put(&mut self, mut buf: ReadBuf) {
        buf.reset();
        if buf.capacity() <= MAX_RETAINED_CAPACITY && self.free.len() < MAX_POOLED {
            self.free.push(buf);
        }
    }

    /// Free-listed buffers (observability for tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_client::frame::{self, FrameBody};

    #[test]
    fn cursor_consume_then_compact_preserves_the_stream() {
        let mut buf = ReadBuf::new();
        buf.extend(b"aaaabbbbcccc");
        assert_eq!(buf.pending(), b"aaaabbbbcccc");
        buf.consume(4);
        assert_eq!(buf.pending(), b"bbbbcccc");
        buf.compact();
        assert_eq!(buf.pending(), b"bbbbcccc");
        buf.extend(b"dd");
        buf.consume(8);
        assert_eq!(buf.pending(), b"dd");
        buf.consume(2);
        assert!(buf.is_empty());
        buf.compact();
        assert_eq!(buf.pending(), b"");
    }

    #[test]
    fn dense_frames_decode_with_linear_memmove_cost() {
        // The satellite regression: one read delivering thousands of
        // tiny frames. The old drain-per-frame demux moved
        // O(frames² × frame_len) bytes; the cursor + one compaction
        // moves at most the undecoded tail — here, zero.
        let one = frame::encode_frame(1, &FrameBody::DrainReq);
        let frame_len = one.len();
        let n = 4096usize;
        let mut buf = ReadBuf::new();
        for corr in 0..n as u64 {
            buf.extend(&frame::encode_frame(corr, &FrameBody::DrainReq));
        }
        let mut decoded = 0usize;
        while let Ok(Some((f, used))) = frame::decode_frame(buf.pending()) {
            assert_eq!(f.corr, decoded as u64);
            buf.consume(used);
            decoded += 1;
        }
        buf.compact();
        assert_eq!(decoded, n);
        assert!(buf.is_empty());
        // Quadratic behavior would have moved ~ n²/2 × frame_len bytes
        // (≈ 200 MB here); the cursor moves none, and even a partial
        // tail would bound it by one frame.
        assert!(
            buf.moved_bytes() <= (frame_len * n) as u64,
            "memmove cost is super-linear: moved {} bytes for {} frames",
            buf.moved_bytes(),
            n
        );
        assert_eq!(buf.moved_bytes(), 0, "fully drained pass moves nothing");
    }

    #[test]
    fn split_frames_reassemble_across_extends() {
        let bytes = frame::encode_frame(42, &FrameBody::SummaryReq);
        let mut buf = ReadBuf::new();
        for chunk in bytes.chunks(3) {
            if let Ok(Some(_)) = frame::decode_frame(buf.pending()) {
                panic!("decoded before the frame was complete");
            }
            buf.extend(chunk);
        }
        let (f, used) = frame::decode_frame(buf.pending()).unwrap().unwrap();
        assert_eq!(f.corr, 42);
        buf.consume(used);
        buf.compact();
        assert!(buf.is_empty());
    }

    #[test]
    fn pool_recycles_but_drops_oversized_buffers() {
        let mut pool = BufPool::new();
        let mut small = pool.get();
        small.extend(&[0u8; 128]);
        pool.put(small);
        assert_eq!(pool.pooled(), 1);
        let reused = pool.get();
        assert_eq!(pool.pooled(), 0);
        assert!(reused.is_empty(), "pooled buffers come back drained");
        assert!(reused.capacity() >= 128, "allocation was recycled");
        let mut huge = ReadBuf::new();
        huge.extend(&vec![0u8; MAX_RETAINED_CAPACITY + 1]);
        pool.put(huge);
        assert_eq!(pool.pooled(), 0, "oversized buffer must not be pooled");
    }
}
