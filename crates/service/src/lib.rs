//! # uuidp-service — a sharded, batch-leasing ID-issuing service
//!
//! The repository's other crates *measure* the collision behaviour of
//! uncoordinated ID algorithms; this crate *serves* IDs with them, the
//! way the paper's production motivators (RocksDB SST unique IDs and
//! cache keys, PRs #8990/#9126) consume them under heavy uncoordinated
//! traffic. It is the deployment-shaped layer over the PR 1 engine
//! primitives:
//!
//! * [`service`] — [`service::IdService`]: shard-per-worker issuing over
//!   bounded channels. Each shard owns its tenants' recycled
//!   [`IdGenerator`]s and serves **bulk leases** — one
//!   [`next_ids`](uuidp_core::traits::IdGenerator::next_ids) call emits a
//!   whole run of IDs as `O(1)` amortized interval pushes (Cluster and
//!   the arc-structured algorithms lease thousands of IDs per arc), so
//!   aggregate throughput is bounded by channel hops, not by per-ID
//!   work. Every lease is routed, stripe by stripe, into a **pool of
//!   audit threads**, each owning a disjoint subset of the striped
//!   *symbolic* [`LeaseAudit`](uuidp_sim::audit::LeaseAudit) — flagging
//!   cross-tenant duplicates and silent aliasing online with
//!   interleaving-invariant totals (bit-identical for every `(shards,
//!   audit_stripes, audit_threads)` combination), and reporting
//!   per-thread lag so a straggling stripe subset is visible.
//! * [`protocol`] — the v1 newline-framed line protocol (`lease` /
//!   `reset` / `drain` / `quit` / `shutdown`) with both the server-side
//!   renderers and the client-side parsers; its wire types are the same
//!   typed `uuidp_client` structs the v2 binary client returns.
//! * [`net`] — [`net::TcpServer`]: the TCP front-end, **negotiating the
//!   wire protocol per connection**: v1 text clients get the classic
//!   thread-per-connection line loop; v2 binary-frame clients
//!   (`uuidp_client::Client`) are served with no per-connection thread
//!   at all — a nonblocking demux reads every v2 connection and a
//!   fixed, tenant-keyed worker pool executes requests by correlation
//!   id. Plus [`net::RemoteClient`] (the blocking v1 client) and
//!   [`net::DialedClient`] (either protocol behind one surface).
//! * [`stress`] — [`stress::run_stress`]: replays deterministic traffic
//!   mixes (uniform, Zipf-skewed, flood, and the `adversary` crate's
//!   adaptive RunHunter playing through the front door) and reports
//!   throughput, p50/p99 issue latency, and audit lag. The driver is
//!   transport-generic ([`stress::StressTarget`]);
//!   [`stress::run_stress_remote`] replays the same mixes through a
//!   loopback TCP server and must reproduce the in-process audit totals
//!   exactly.
//! * [`metrics`] — the allocation-free latency histogram behind those
//!   quantiles.
//!
//! The CLI surfaces this as `uuidp serve` (stdin, or `--listen` for
//! TCP) and `uuidp stress` (`--remote` for the socket path); `repro
//! bench-json` records the issuance and audit-pipeline numbers in
//! `BENCH_PR<N>.json`.
//!
//! [`IdGenerator`]: uuidp_core::traits::IdGenerator

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod net;
pub mod protocol;
pub mod reactor;
pub mod reassembly;
pub mod service;
pub mod stress;
#[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
pub mod sys;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::metrics::LatencyHistogram;
    pub use crate::net::{DialedClient, RemoteClient, ServerOptions, TcpServer};
    pub use crate::protocol::{Command, WireLease, WireSummary};
    pub use crate::reactor::NetBackend;
    pub use crate::service::{
        AuditReport, AuditThreadReport, IdService, LeaseReply, ServiceConfig, ServiceReport,
    };
    pub use crate::stress::{
        run_stress, run_stress_remote, StressConfig, StressReport, StressTarget, TrafficMix,
    };
}
