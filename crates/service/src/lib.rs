//! # uuidp-service — a sharded, batch-leasing ID-issuing service
//!
//! The repository's other crates *measure* the collision behaviour of
//! uncoordinated ID algorithms; this crate *serves* IDs with them, the
//! way the paper's production motivators (RocksDB SST unique IDs and
//! cache keys, PRs #8990/#9126) consume them under heavy uncoordinated
//! traffic. It is the deployment-shaped layer over the PR 1 engine
//! primitives:
//!
//! * [`service`] — [`service::IdService`]: shard-per-worker issuing over
//!   bounded channels. Each shard owns its tenants' recycled
//!   [`IdGenerator`]s and serves **bulk leases** — one
//!   [`next_ids`](uuidp_core::traits::IdGenerator::next_ids) call emits a
//!   whole run of IDs as `O(1)` amortized interval pushes (Cluster and
//!   the arc-structured algorithms lease thousands of IDs per arc), so
//!   aggregate throughput is bounded by channel hops, not by per-ID
//!   work. Every lease is tee'd into a striped, *symbolic*
//!   [`LeaseAudit`](uuidp_sim::audit::LeaseAudit) pipeline that flags
//!   cross-tenant duplicates and silent aliasing online, with
//!   interleaving-invariant totals (bit-identical for every shard
//!   count).
//! * [`stress`] — [`stress::run_stress`]: replays deterministic traffic
//!   mixes (uniform, Zipf-skewed, flood, and the `adversary` crate's
//!   adaptive RunHunter playing through the front door) and reports
//!   throughput, p50/p99 issue latency, and audit lag.
//! * [`metrics`] — the allocation-free latency histogram behind those
//!   quantiles.
//!
//! The CLI surfaces this as `uuidp serve` (line-protocol front-end) and
//! `uuidp stress` (the driver); `repro bench-json` records the
//! batch-lease vs scalar-issue speedup in `BENCH_PR2.json`.
//!
//! [`IdGenerator`]: uuidp_core::traits::IdGenerator

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod service;
pub mod stress;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::metrics::LatencyHistogram;
    pub use crate::service::{AuditReport, IdService, LeaseReply, ServiceConfig, ServiceReport};
    pub use crate::stress::{run_stress, StressConfig, StressReport, TrafficMix};
}
