//! The stress driver: replay `kvstore::workload`-shaped traffic mixes
//! against a live [`IdService`] and report end-to-end issue throughput,
//! per-lease latency quantiles, and audit health.
//!
//! Four mixes, mirroring the repository's adversary taxonomy:
//!
//! * [`TrafficMix::Uniform`] — every tenant leases equally (the uniform
//!   profile, Cluster's oblivious worst case);
//! * [`TrafficMix::Skewed`] — tenants lease by a power-law (the skewed
//!   profiles where Bins★'s competitive ratio shines);
//! * [`TrafficMix::Flood`] — one hot tenant takes most of the volume in
//!   oversized batches (the `SkewedFlood` shape);
//! * [`TrafficMix::Hunter`] — the `adversary` crate's [`RunHunter`]
//!   plays its adaptive game *through the service front door*, choosing
//!   each next request from the IDs the service actually returned.
//!
//! Every mix is generated deterministically from the service's master
//! seed, so stress runs are reproducible end to end.
//!
//! The driver is transport-generic: every mix runs against a
//! [`StressTarget`], either the in-process [`IdService`]
//! ([`run_stress`]) or a loopback TCP server through the real
//! [`RemoteClient`] socket path ([`run_stress_remote`]) — and because
//! the audit totals are interleaving-invariant, the two transports must
//! report identical issued/duplicate counts for the same seed and mix.
//!
//! Remote runs can fan the client side out: with `remote_workers > 1`
//! the driver keeps a pool of worker threads, **each owning one
//! persistent connection for the whole run** ([`PooledRemoteTarget`]).
//! Tenants are pinned to pool workers (`tenant % workers`), so every
//! tenant's requests stay FIFO on one connection and the totals remain
//! bit-identical to the single-connection and in-process paths. Against
//! the thread-per-connection server this bounds the server's thread
//! count at `workers` for the entire run — connection reuse instead of
//! connection churn.
//!
//! Chaos runs ([`StressConfig::chaos`]) interpose a deterministic
//! [`ChaosProxy`] between the client pool and the server and swap the
//! fail-fast targets for a retrying one ([`ChaosRemoteTarget`]): every
//! request failure is classified (retry-safe / lease-in-doubt / fatal),
//! retried under a seeded [`RetryPolicy`], and accounted into the
//! report's SLO section. The shutdown that yields the authoritative
//! totals travels over the proxy in passthrough mode, so the report
//! itself is never a casualty of the faults it describes.
//!
//! [`RunHunter`]: uuidp_adversary::run_hunter::RunHunter

use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc as SyncArc;
use std::thread::JoinHandle;
use std::time::Duration;

use uuidp_core::clock;

use uuidp_adversary::adaptive::{Action, AdversarySpec, GameView};
use uuidp_adversary::run_hunter::RunHunter;
use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::Arc;
use uuidp_core::rng::{SeedDomain, SeedTree};

use uuidp_client::{ProtoVersion, RetryPolicy};
use uuidp_netchaos::{schedule_fingerprint, ChaosProxy, ChaosSpec, FaultCounts};
use uuidp_obs::{SlowLease, Snapshot, TailSampler, TimeSeries};

use crate::metrics::FaultCounters;
use crate::net::{DialedClient, RemoteClient, ServerOptions, TcpServer};
use crate::protocol::WireSummary;
use crate::reactor::NetBackend;
use crate::service::{AuditReport, IdService, ServiceConfig, ServiceReport};

/// Per-request bound for every blocking client phase in a chaos run:
/// long enough that a throttled-but-alive peer gets through, short
/// enough that a truncated reply cannot hang the driver.
const CHAOS_TIMEOUT: Duration = Duration::from_secs(5);

/// How many connection plans the report's schedule fingerprint covers.
/// Fixed (rather than "however many connections this run happened to
/// make") so the pin is a pure function of `(spec, seed)` and two runs
/// of the same seed print the same fingerprint even when retry timing
/// differs.
const FINGERPRINT_CONNS: u64 = 64;

/// Worst-K leases each remote run samples end to end; the sampled corr
/// ids get their span timelines fetched back over the wire post-run.
const TAIL_SAMPLES: usize = 4;

/// The request-mix shapes the driver can replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrafficMix {
    /// Round-robin, equal batches: the uniform demand profile.
    #[default]
    Uniform,
    /// Power-law tenant choice (`weight(t) ∝ 1/(t+1)^1.2`): Zipf-shaped
    /// load, the skewed profiles of the competitive analysis.
    Skewed,
    /// One hot tenant takes 3 of every 4 requests at 4× batch size;
    /// the rest round-robin, the `SkewedFlood` shape.
    Flood,
    /// The adaptive `RunHunter` attacker drives single-ID requests
    /// through the synchronous lease path, observing returned IDs.
    Hunter,
}

impl TrafficMix {
    /// Parses a mix name (`uniform | skewed | flood | hunter`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Ok(TrafficMix::Uniform),
            "skewed" | "zipf" => Ok(TrafficMix::Skewed),
            "flood" => Ok(TrafficMix::Flood),
            "hunter" | "adaptive" => Ok(TrafficMix::Hunter),
            other => Err(format!(
                "unknown mix `{other}` (uniform | skewed | flood | hunter)"
            )),
        }
    }
}

impl fmt::Display for TrafficMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TrafficMix::Uniform => "uniform",
            TrafficMix::Skewed => "skewed",
            TrafficMix::Flood => "flood",
            TrafficMix::Hunter => "hunter",
        };
        f.write_str(name)
    }
}

/// Configuration of one stress run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// The service under test.
    pub service: ServiceConfig,
    /// Number of tenants generating load.
    pub tenants: u64,
    /// Lease requests to submit.
    pub requests: u64,
    /// IDs per lease (the batch size; Flood multiplies it for the hot
    /// tenant, Hunter ignores it and requests single IDs).
    pub count: u128,
    /// Traffic shape.
    pub mix: TrafficMix,
    /// Client-side pool width for remote runs: worker threads, each
    /// with one persistent connection reused for the whole run. `1`
    /// keeps the classic single-connection driver.
    pub remote_workers: usize,
    /// Which wire protocol remote runs speak: the v1 text line protocol
    /// (one connection per pool worker) or the v2 binary framed
    /// protocol, where the whole pool **multiplexes one connection**.
    pub protocol: ProtoVersion,
    /// Fault schedule for remote runs: when set, a [`ChaosProxy`] built
    /// from this spec and [`StressConfig::chaos_seed`] sits between the
    /// clients and the server, and the driver switches to classified
    /// retries instead of failing fast. Ignored by in-process runs.
    pub chaos: Option<ChaosSpec>,
    /// Seed for the chaos schedule *and* the retry jitter; the same
    /// seed replays the same fault schedule bit-for-bit.
    pub chaos_seed: u64,
    /// Scrape the metric registry during remote runs: a sidecar thread
    /// scrapes the server over its own v1 connection while load flows
    /// (asserting the required families are present and every counter
    /// is monotone scrape-over-scrape), and the report gains the final
    /// server-side family values. Ignored by in-process runs.
    pub scrape: bool,
    /// Which readiness backend the remote run's server uses (see
    /// [`NetBackend`]): `Auto` picks epoll where compiled in, `Poll`
    /// forces the portable rotation fallback so CI can exercise it.
    /// Ignored by in-process runs.
    pub net_backend: NetBackend,
}

impl StressConfig {
    /// A stress run of `requests` leases over `tenants` tenants.
    pub fn new(service: ServiceConfig, tenants: u64, requests: u64, count: u128) -> Self {
        assert!(tenants >= 1, "at least one tenant");
        StressConfig {
            service,
            tenants,
            requests,
            count,
            mix: TrafficMix::Uniform,
            remote_workers: 1,
            protocol: ProtoVersion::V1,
            chaos: None,
            chaos_seed: 0,
            scrape: false,
            net_backend: NetBackend::Auto,
        }
    }
}

/// Metric families every scrape of a live service must expose. The
/// canonical list lives with the registry ([`uuidp_obs::families`]);
/// this re-export keeps the stress driver's old path working.
pub use uuidp_obs::families::REQUIRED as REQUIRED_FAMILIES;

/// What the scrape sidecar (and the final server-side snapshot)
/// observed during a `scrape`-enabled remote run.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Over-the-wire scrapes completed while the run was live (the
    /// sidecar keeps scraping until the shutdown severs it).
    pub scrapes: u64,
    /// Windows the sidecar's time-series ring ingested (one tick per
    /// scrape — a bounded ring, so long runs retain only the tail).
    pub windows: u64,
    /// Peak per-window `uuidp_ids_issued_total` delta across the
    /// retained windows: the hottest scrape-to-scrape issue burst.
    pub peak_ids_per_window: u64,
    /// Final authoritative family values, read from the server-side
    /// registry after the run — flattened the way
    /// [`uuidp_obs::parse_exposition`] flattens an exposition.
    pub families: std::collections::BTreeMap<String, f64>,
}

/// The scrape sidecar: one dedicated v1 connection hammering `metrics`
/// while the run is live. Every scrape asserts the [`REQUIRED_FAMILIES`]
/// are present and that no counter family went backwards — the
/// monotonicity half of the export-surface contract — and is ingested
/// into a bounded [`TimeSeries`] ring (one window per scrape), so the
/// report can describe the run's shape over time, not just its end
/// state. Ends (returning the scrape count and the ring) when the
/// shutdown severs its connection.
fn spawn_wire_scraper(addr: SocketAddr, space: IdSpace) -> JoinHandle<(u64, TimeSeries)> {
    std::thread::spawn(move || {
        let mut scrapes = 0u64;
        let mut series = TimeSeries::new(1, 64);
        let mut last: std::collections::BTreeMap<String, f64> = Default::default();
        let Ok(mut client) = RemoteClient::connect_with(addr, space, Some(CHAOS_TIMEOUT)) else {
            return (0, series); // raced the shutdown before the first scrape
        };
        loop {
            let text = match client.metrics() {
                Ok(t) => t,
                Err(_) => return (scrapes, series), // severed: the run is over
            };
            let families = uuidp_obs::parse_exposition(&text);
            for name in REQUIRED_FAMILIES {
                assert!(
                    families.contains_key(*name),
                    "scrape missing required family {name}:\n{text}"
                );
            }
            for (name, value) in &families {
                if name.ends_with("_total") || name.ends_with("_count") {
                    if let Some(prev) = last.get(name) {
                        assert!(
                            value >= prev,
                            "metric family {name} went backwards across scrapes: {prev} -> {value}"
                        );
                    }
                }
            }
            last = families;
            series.ingest(scrapes, &Snapshot::parse_prometheus(&text));
            scrapes += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
    })
}

/// Anything a stress mix can be replayed against: the in-process
/// service or a remote front-end over a socket. The driver only ever
/// needs to lease (observing arcs, for the adaptive mix), fire
/// lease-shaped load, drain, and collect the final accounting.
pub trait StressTarget {
    /// The target's ID universe.
    fn space(&self) -> IdSpace;
    /// Synchronously leases `count` IDs and returns the granted arcs.
    fn lease_arcs(&mut self, tenant: u64, count: u128) -> Vec<Arc>;
    /// Lease-shaped load where the reply is not needed. (A remote
    /// target still reads the reply to keep the line protocol in sync,
    /// which is why this takes `&mut self`.)
    fn issue(&mut self, tenant: u64, count: u128);
    /// Blocks until every submitted request has been processed.
    fn drain(&mut self);
    /// Shuts the target down and returns its aggregate accounting.
    fn finish(self) -> TargetReport;
}

/// The shutdown accounting a [`StressTarget`] hands back: the subset of
/// a [`ServiceReport`] every transport can deliver (a remote target
/// reconstructs it from the wire summary, so latency arrives as
/// pre-computed quantiles rather than a mergeable histogram).
#[derive(Debug)]
pub struct TargetReport {
    /// Total IDs issued.
    pub issued_ids: u128,
    /// Leases served.
    pub leases: u64,
    /// Leases that hit a generator error.
    pub errors: u64,
    /// Median per-lease issue cost, nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile per-lease issue cost, nanoseconds.
    pub p99_ns: f64,
    /// 99.9th-percentile per-lease issue cost, nanoseconds — the tail
    /// the SLO section watches under chaos.
    pub p999_ns: f64,
    /// Mean per-lease issue cost, nanoseconds.
    pub mean_ns: f64,
    /// Client-side fault classification (all-zero outside chaos runs).
    pub faults: FaultCounters,
    /// The audit pipeline's findings.
    pub audit: AuditReport,
    /// Worst sampled end-to-end leases, with wire-fetched span
    /// timelines where available (remote targets only).
    pub slow: Vec<SlowLease>,
}

impl From<ServiceReport> for TargetReport {
    fn from(report: ServiceReport) -> TargetReport {
        TargetReport {
            issued_ids: report.issued_ids,
            leases: report.leases,
            errors: report.errors,
            p50_ns: report.latency.quantile_ns(0.50),
            p99_ns: report.latency.quantile_ns(0.99),
            p999_ns: report.latency.quantile_ns(0.999),
            mean_ns: report.latency.mean_ns(),
            faults: FaultCounters::default(),
            audit: report.audit,
            slow: Vec::new(),
        }
    }
}

impl From<WireSummary> for TargetReport {
    fn from(summary: WireSummary) -> TargetReport {
        TargetReport {
            issued_ids: summary.issued_ids,
            leases: summary.leases,
            errors: summary.errors,
            p50_ns: summary.p50_ns,
            p99_ns: summary.p99_ns,
            p999_ns: summary.p999_ns,
            mean_ns: summary.mean_ns,
            faults: FaultCounters::default(),
            audit: AuditReport {
                counts: uuidp_sim::audit::AuditCounts {
                    duplicate_ids: summary.duplicate_ids,
                    flagged_records: summary.flagged_records,
                    recorded_ids: summary.recorded_ids,
                    recorded_arcs: summary.recorded_arcs,
                },
                max_lag: Duration::from_nanos(summary.max_lag_ns.min(u64::MAX as u128) as u64),
                mean_lag_ns: summary.mean_lag_ns,
                records: summary.records,
                per_thread: Vec::new(), // aggregates only cross the wire
            },
            slow: Vec::new(),
        }
    }
}

/// The in-process target: a locally started [`IdService`].
pub struct LocalTarget {
    service: IdService,
}

impl LocalTarget {
    /// Boots a service for `config`.
    pub fn start(config: ServiceConfig) -> LocalTarget {
        LocalTarget {
            service: IdService::start(config),
        }
    }
}

impl StressTarget for LocalTarget {
    fn space(&self) -> IdSpace {
        self.service.space()
    }

    fn lease_arcs(&mut self, tenant: u64, count: u128) -> Vec<Arc> {
        self.service.lease(tenant, count).arcs
    }

    fn issue(&mut self, tenant: u64, count: u128) {
        self.service.issue(tenant, count);
    }

    fn drain(&mut self) {
        self.service.drain();
    }

    fn finish(self) -> TargetReport {
        self.service.shutdown().into()
    }
}

/// Fills in wire-fetched timelines for a sampler's retained leases.
/// Only v2 samples carry a real corr id; everything else keeps its
/// empty story (and an evicted span comes back empty too).
fn fetch_timelines(client: &mut DialedClient, tail: &mut TailSampler) {
    for s in tail.worst_mut() {
        if s.corr != 0 {
            if let Ok(text) = client.timeline(s.corr) {
                s.timeline = text;
            }
        }
    }
}

/// One lease's end-to-end cost in nanoseconds, from a
/// [`clock::monotonic_ns`] start stamp — the same epoch every other
/// telemetry timestamp in the stack uses.
fn elapsed_ns(started_ns: u64) -> u64 {
    clock::monotonic_ns().saturating_sub(started_ns)
}

/// The socket target: one [`DialedClient`] (either protocol) driving a
/// TCP front-end. The report comes from the wire summary, so the whole
/// client code path — not just the traffic — is exercised.
pub struct RemoteTarget {
    client: DialedClient,
    space: IdSpace,
    tail: TailSampler,
}

impl RemoteTarget {
    /// Connects to a front-end serving `space` at `addr`, speaking
    /// `protocol`.
    pub fn connect(
        addr: std::net::SocketAddr,
        space: IdSpace,
        protocol: ProtoVersion,
    ) -> io::Result<RemoteTarget> {
        Ok(RemoteTarget {
            client: DialedClient::connect(addr, space, protocol)?,
            space,
            tail: TailSampler::new(TAIL_SAMPLES, 0),
        })
    }
}

impl StressTarget for RemoteTarget {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn lease_arcs(&mut self, tenant: u64, count: u128) -> Vec<Arc> {
        let started = clock::monotonic_ns();
        let (lease, corr) = self
            .client
            .lease_with_corr(tenant, count)
            .expect("remote stress lease i/o");
        self.tail.offer(corr, tenant, 0, elapsed_ns(started));
        lease.arcs
    }

    fn issue(&mut self, tenant: u64, count: u128) {
        // Same wire path as a lease; the reply is read (keeping the
        // request/reply accounting in sync) and dropped.
        let started = clock::monotonic_ns();
        let (_, corr) = self
            .client
            .lease_with_corr(tenant, count)
            .expect("remote stress issue i/o");
        self.tail.offer(corr, tenant, 0, elapsed_ns(started));
    }

    fn drain(&mut self) {
        self.client.drain().expect("remote stress drain i/o");
    }

    fn finish(self) -> TargetReport {
        let RemoteTarget {
            mut client,
            mut tail,
            ..
        } = self;
        fetch_timelines(&mut client, &mut tail);
        let mut report: TargetReport = client
            .shutdown()
            .expect("remote stress shutdown i/o")
            .into();
        report.slow = tail.worst().to_vec();
        report
    }
}

/// One unit of work routed to a pool worker.
enum PoolMsg {
    /// Synchronous lease; the worker ships the granted arcs back.
    Lease {
        tenant: u64,
        count: u128,
        reply: SyncSender<Vec<Arc>>,
    },
    /// Lease-shaped load; the worker reads and drops the reply.
    Issue { tenant: u64, count: u128 },
    /// Ack once every prior message on this worker is fully replied.
    Barrier { done: SyncSender<()> },
    /// Issue a protocol-level drain on this worker's connection.
    Drain { done: SyncSender<()> },
}

/// The connection-reuse socket target: `workers` threads, each holding
/// one persistent [`DialedClient`] for the entire run. Requests are
/// pinned to workers by `tenant % workers`, preserving each tenant's
/// request order (and therefore the run's deterministic totals) while
/// the server sees a fixed, small set of long-lived connections
/// instead of per-phase or per-request churn.
///
/// Under protocol v2 the pool goes one better: every worker holds a
/// clone of **one multiplexed connection**, so the server sees a single
/// connection carrying the whole pool's concurrent traffic — `workers`×
/// fewer sockets at the same request parallelism.
pub struct PooledRemoteTarget {
    space: IdSpace,
    txs: Vec<SyncSender<PoolMsg>>,
    workers: Vec<JoinHandle<(DialedClient, TailSampler)>>,
}

/// A pool worker: drains its queue over its one persistent connection
/// (or connection clone), then hands the still-open client back for the
/// shutdown step along with its worst-lease samples.
fn pool_worker(mut client: DialedClient, rx: Receiver<PoolMsg>) -> (DialedClient, TailSampler) {
    let mut tail = TailSampler::new(TAIL_SAMPLES, 0);
    while let Ok(msg) = rx.recv() {
        match msg {
            PoolMsg::Lease {
                tenant,
                count,
                reply,
            } => {
                let started = clock::monotonic_ns();
                let (lease, corr) = client
                    .lease_with_corr(tenant, count)
                    .expect("pooled stress lease i/o");
                tail.offer(corr, tenant, 0, elapsed_ns(started));
                let _ = reply.send(lease.arcs);
            }
            PoolMsg::Issue { tenant, count } => {
                // The reply is read (keeping the stream in sync) and
                // dropped, like the single-connection issue path.
                let started = clock::monotonic_ns();
                let (_, corr) = client
                    .lease_with_corr(tenant, count)
                    .expect("pooled stress issue i/o");
                tail.offer(corr, tenant, 0, elapsed_ns(started));
            }
            PoolMsg::Barrier { done } => {
                let _ = done.send(());
            }
            PoolMsg::Drain { done } => {
                client.drain().expect("pooled stress drain i/o");
                let _ = done.send(());
            }
        }
    }
    (client, tail)
}

impl PooledRemoteTarget {
    /// Starts a pool of `workers ≥ 1` threads against the front-end at
    /// `addr`: one persistent v1 connection per worker, or `workers`
    /// clones of a single multiplexed v2 connection.
    pub fn connect(
        addr: std::net::SocketAddr,
        space: IdSpace,
        workers: usize,
        protocol: ProtoVersion,
    ) -> io::Result<PooledRemoteTarget> {
        let workers = workers.max(1);
        let shared = match protocol {
            ProtoVersion::V1 => None,
            ProtoVersion::V2 => Some(uuidp_client::Client::connect(addr, space)?),
        };
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let client = match &shared {
                None => DialedClient::connect(addr, space, ProtoVersion::V1)?,
                Some(mux) => DialedClient::V2(mux.clone()),
            };
            let (tx, rx) = sync_channel::<PoolMsg>(1024);
            txs.push(tx);
            handles.push(std::thread::spawn(move || pool_worker(client, rx)));
        }
        Ok(PooledRemoteTarget {
            space,
            txs,
            workers: handles,
        })
    }

    /// Pool width.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    fn tx_of(&self, tenant: u64) -> &SyncSender<PoolMsg> {
        &self.txs[(tenant % self.txs.len() as u64) as usize]
    }

    /// Acks from every worker once all previously routed messages have
    /// been fully served (each worker reads every reply before taking
    /// its next message, so an ack implies server-side completion).
    fn barrier_all(&self) {
        let barriers: Vec<Receiver<()>> = self
            .txs
            .iter()
            .map(|tx| {
                let (done, rx) = sync_channel(1);
                tx.send(PoolMsg::Barrier { done })
                    .expect("pool worker alive");
                rx
            })
            .collect();
        for rx in barriers {
            rx.recv().expect("pool worker alive");
        }
    }
}

impl StressTarget for PooledRemoteTarget {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn lease_arcs(&mut self, tenant: u64, count: u128) -> Vec<Arc> {
        let (reply, rx) = sync_channel(1);
        self.tx_of(tenant)
            .send(PoolMsg::Lease {
                tenant,
                count,
                reply,
            })
            .expect("pool worker alive");
        rx.recv().expect("pool worker replies")
    }

    fn issue(&mut self, tenant: u64, count: u128) {
        self.tx_of(tenant)
            .send(PoolMsg::Issue { tenant, count })
            .expect("pool worker alive");
    }

    fn drain(&mut self) {
        // Local barrier first (all pooled requests fully replied), then
        // one protocol drain so the contract matches the other targets.
        self.barrier_all();
        let (done, rx) = sync_channel(1);
        self.txs[0]
            .send(PoolMsg::Drain { done })
            .expect("pool worker alive");
        rx.recv().expect("pool worker drains");
    }

    fn finish(self) -> TargetReport {
        drop(self.txs); // workers exit their loops and return their clients
        let mut tail = TailSampler::new(TAIL_SAMPLES, 0);
        let mut clients = Vec::with_capacity(self.workers.len());
        for handle in self.workers {
            let (client, worker_tail) = handle.join().expect("pool worker panicked");
            tail.merge(&worker_tail);
            clients.push(client);
        }
        let mut closer = clients.remove(0);
        for client in clients {
            let _ = client.quit();
        }
        fetch_timelines(&mut closer, &mut tail);
        let mut report: TargetReport = closer
            .shutdown()
            .expect("pooled stress shutdown i/o")
            .into();
        report.slow = tail.worst().to_vec();
        report
    }
}

/// A [`DialedClient`] wrapped in classified retries: every failure is
/// observed into a [`FaultCounters`], the (possibly poisoned)
/// connection is replaced, and the request is retried under the seeded
/// [`RetryPolicy`] until it succeeds or the budget is exhausted.
///
/// Retrying a lease-in-doubt failure is deliberate and *correct* for
/// this service: the generator never re-emits an ID, so the retried
/// lease yields fresh IDs and the abandoned grant merely leaks
/// server-side — leak-not-duplicate, pinned by the global audit.
struct ResilientClient {
    addr: SocketAddr,
    space: IdSpace,
    protocol: ProtoVersion,
    policy: RetryPolicy,
    client: Option<DialedClient>,
    ever_connected: bool,
    faults: FaultCounters,
}

impl ResilientClient {
    fn new(addr: SocketAddr, space: IdSpace, protocol: ProtoVersion, policy: RetryPolicy) -> Self {
        ResilientClient {
            addr,
            space,
            protocol,
            policy,
            client: None,
            ever_connected: false,
            faults: FaultCounters::default(),
        }
    }

    fn client(&mut self) -> io::Result<&mut DialedClient> {
        if self.client.is_none() {
            let dialed = DialedClient::connect_with(
                self.addr,
                self.space,
                self.protocol,
                Some(CHAOS_TIMEOUT),
            )?;
            if self.ever_connected {
                self.faults.reconnects += 1;
            }
            self.ever_connected = true;
            self.client = Some(dialed);
        }
        Ok(self.client.as_mut().expect("just dialed"))
    }

    /// Runs `f` against a live connection, retrying per the policy.
    /// Returns `None` when the retry budget is exhausted (the request
    /// is abandoned and counted against the error budget).
    fn attempt<T>(&mut self, f: impl Fn(&mut DialedClient) -> io::Result<T>) -> Option<T> {
        for attempt in 0.. {
            let result = self.client().and_then(&f);
            match result {
                Ok(v) => return Some(v),
                Err(e) => {
                    self.faults.observe(&e);
                    // Any failure poisons the connection (a timed-out
                    // request's late reply must never be read as the
                    // next request's answer): replace it.
                    self.client = None;
                    if self.policy.allows(attempt) {
                        self.faults.retries += 1;
                        std::thread::sleep(self.policy.delay(attempt));
                    } else {
                        self.faults.exhausted += 1;
                        return None;
                    }
                }
            }
        }
        unreachable!("the retry loop returns from within")
    }
}

/// A resilient pool worker: like [`pool_worker`], but failures are
/// classified, retried, and counted instead of panicking. Hands its
/// fault ledger and worst-lease samples back when the queue closes.
/// Latency here is measured around the whole attempt — retries and
/// backoff included — because that is what the caller experienced.
fn resilient_pool_worker(
    mut client: ResilientClient,
    rx: Receiver<PoolMsg>,
) -> (FaultCounters, TailSampler) {
    let mut tail = TailSampler::new(TAIL_SAMPLES, 0);
    while let Ok(msg) = rx.recv() {
        match msg {
            PoolMsg::Lease {
                tenant,
                count,
                reply,
            } => {
                let started = clock::monotonic_ns();
                let arcs = match client.attempt(|c| c.lease_with_corr(tenant, count)) {
                    Some((lease, corr)) => {
                        tail.offer(corr, tenant, 0, elapsed_ns(started));
                        lease.arcs
                    }
                    None => Vec::new(),
                };
                let _ = reply.send(arcs);
            }
            PoolMsg::Issue { tenant, count } => {
                let started = clock::monotonic_ns();
                if let Some((_, corr)) = client.attempt(|c| c.lease_with_corr(tenant, count)) {
                    tail.offer(corr, tenant, 0, elapsed_ns(started));
                }
            }
            PoolMsg::Barrier { done } => {
                let _ = done.send(());
            }
            PoolMsg::Drain { done } => {
                let _ = client.attempt(|c| c.drain());
                let _ = done.send(());
            }
        }
    }
    (client.faults, tail)
}

/// The chaos socket target: a pool of [`ResilientClient`] workers
/// talking through a shared [`ChaosProxy`]. Unlike
/// [`PooledRemoteTarget`], every worker owns an independent connection
/// even under protocol v2 — a severed mux must not take the whole pool
/// down with it.
pub struct ChaosRemoteTarget {
    space: IdSpace,
    protocol: ProtoVersion,
    proxy: SyncArc<ChaosProxy>,
    txs: Vec<SyncSender<PoolMsg>>,
    workers: Vec<JoinHandle<(FaultCounters, TailSampler)>>,
}

impl ChaosRemoteTarget {
    /// Starts `workers ≥ 1` resilient workers dialing through `proxy`.
    /// Connections are lazy — the first request dials (and the dial
    /// itself is inside the retry loop, so a refused connection window
    /// is survivable).
    pub fn connect(
        proxy: SyncArc<ChaosProxy>,
        space: IdSpace,
        workers: usize,
        protocol: ProtoVersion,
        policy: RetryPolicy,
    ) -> ChaosRemoteTarget {
        let workers = workers.max(1);
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            // Distinct jitter streams per worker, still seed-determined.
            let policy = RetryPolicy {
                seed: policy.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..policy
            };
            let client = ResilientClient::new(proxy.addr(), space, protocol, policy);
            let (tx, rx) = sync_channel::<PoolMsg>(1024);
            txs.push(tx);
            handles.push(std::thread::spawn(move || {
                resilient_pool_worker(client, rx)
            }));
        }
        ChaosRemoteTarget {
            space,
            protocol,
            proxy,
            txs,
            workers: handles,
        }
    }

    fn tx_of(&self, tenant: u64) -> &SyncSender<PoolMsg> {
        &self.txs[(tenant % self.txs.len() as u64) as usize]
    }
}

impl StressTarget for ChaosRemoteTarget {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn lease_arcs(&mut self, tenant: u64, count: u128) -> Vec<Arc> {
        let (reply, rx) = sync_channel(1);
        self.tx_of(tenant)
            .send(PoolMsg::Lease {
                tenant,
                count,
                reply,
            })
            .expect("chaos pool worker alive");
        rx.recv().expect("chaos pool worker replies")
    }

    fn issue(&mut self, tenant: u64, count: u128) {
        self.tx_of(tenant)
            .send(PoolMsg::Issue { tenant, count })
            .expect("chaos pool worker alive");
    }

    fn drain(&mut self) {
        let barriers: Vec<Receiver<()>> = self
            .txs
            .iter()
            .map(|tx| {
                let (done, rx) = sync_channel(1);
                tx.send(PoolMsg::Barrier { done })
                    .expect("chaos pool worker alive");
                rx
            })
            .collect();
        for rx in barriers {
            rx.recv().expect("chaos pool worker alive");
        }
        let (done, rx) = sync_channel(1);
        self.txs[0]
            .send(PoolMsg::Drain { done })
            .expect("chaos pool worker alive");
        rx.recv().expect("chaos pool worker drains");
    }

    fn finish(self) -> TargetReport {
        // The report must survive the chaos that produced it: flip the
        // proxy to passthrough so the shutdown travels a clean path
        // (new connections are unscheduled from here on).
        self.proxy.set_passthrough(true);
        drop(self.txs); // workers exit and hand back their ledgers
        let mut faults = FaultCounters::default();
        let mut tail = TailSampler::new(TAIL_SAMPLES, 0);
        for handle in self.workers {
            let (worker_faults, worker_tail) = handle.join().expect("chaos pool worker panicked");
            faults.merge(&worker_faults);
            tail.merge(&worker_tail);
        }
        let mut last_err: Option<io::Error> = None;
        for _ in 0..10 {
            let attempt = DialedClient::connect_with(
                self.proxy.addr(),
                self.space,
                self.protocol,
                Some(CHAOS_TIMEOUT),
            )
            .and_then(|mut client| {
                // The proxy is passthrough now, so the timeline fetches
                // ride the same clean path as the shutdown.
                fetch_timelines(&mut client, &mut tail);
                client.shutdown()
            });
            match attempt {
                Ok(summary) => {
                    let mut report = TargetReport::from(summary);
                    report.faults = faults;
                    report.slow = tail.worst().to_vec();
                    return report;
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        panic!(
            "shutdown over a passthrough proxy kept failing: {:?}",
            last_err
        );
    }
}

/// What one stress run measured.
#[derive(Debug)]
pub struct StressReport {
    /// The mix that was replayed.
    pub mix: TrafficMix,
    /// Worker shards used.
    pub shards: usize,
    /// Leases submitted.
    pub requests: u64,
    /// Total IDs issued.
    pub issued_ids: u128,
    /// Wall clock from first submission to worker drain.
    pub elapsed: Duration,
    /// Aggregate issue rate (IDs per second).
    pub ids_per_sec: f64,
    /// Median per-lease issue cost, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-lease issue cost, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile per-lease issue cost, microseconds.
    pub p999_us: f64,
    /// Mean per-lease issue cost, microseconds.
    pub mean_us: f64,
    /// Leases that hit a generator error.
    pub errors: u64,
    /// Client-side fault classification and recovery accounting
    /// (all-zero outside chaos runs).
    pub faults: FaultCounters,
    /// The chaos stamp, when this run injected faults.
    pub chaos: Option<ChaosReport>,
    /// The audit pipeline's findings (lag, duplicates).
    pub audit: AuditReport,
    /// The scrape sidecar's accounting plus the final server-side
    /// registry families (only for `scrape`-enabled remote runs).
    pub metrics: Option<MetricsReport>,
    /// The worst leases the run produced, with their end-to-end span
    /// timelines when the target spoke protocol v2 (empty otherwise).
    pub slow: Vec<SlowLease>,
}

/// What a chaos run did to the wire, stamped into the report.
#[derive(Debug, Clone, Copy)]
pub struct ChaosReport {
    /// The fault intensities that scheduled this run.
    pub spec: ChaosSpec,
    /// The seed the schedule (and retry jitter) was derived from.
    pub seed: u64,
    /// [`schedule_fingerprint`] over the first [`FINGERPRINT_CONNS`]
    /// connection plans — a pure function of `(spec, seed)`, so two
    /// runs of the same seed print the same pin.
    pub fingerprint: u64,
    /// What the proxy actually injected.
    pub injected: FaultCounts,
}

impl StressReport {
    /// Renders the human-readable summary block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "mix:         {}\nshards:      {}\nrequests:    {} leases, {} IDs issued\n\
             elapsed:     {:.3}s\nthroughput:  {:.2}M IDs/s\n\
             issue p50:   {:.2} us\nissue p99:   {:.2} us\nissue p999:  {:.2} us\nissue mean:  {:.2} us\n\
             errors:      {}\naudit:       {} arcs, {} duplicate IDs, {} flagged leases\n\
             audit lag:   max {:.2} ms, mean {:.3} ms\n",
            self.mix,
            self.shards,
            self.requests,
            self.issued_ids,
            self.elapsed.as_secs_f64(),
            self.ids_per_sec / 1e6,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.mean_us,
            self.errors,
            self.audit.counts.recorded_arcs,
            self.audit.counts.duplicate_ids,
            self.audit.counts.flagged_records,
            self.audit.max_lag.as_secs_f64() * 1e3,
            self.audit.mean_lag_ns / 1e6,
        );
        // The straggler signal: one slow stripe-subset thread hides
        // inside the merged max, so the per-thread maxima are listed
        // whenever the breakdown is available (local runs; remote
        // summaries carry aggregates only).
        if self.audit.per_thread.len() > 1 {
            let lags: Vec<String> = self
                .audit
                .per_thread
                .iter()
                .map(|t| format!("{:.2}", t.max_lag.as_secs_f64() * 1e3))
                .collect();
            out.push_str(&format!(
                "audit threads: {} (per-thread max lag ms: {})\n",
                self.audit.per_thread.len(),
                lags.join(", ")
            ));
        }
        if let Some(chaos) = &self.chaos {
            out.push_str(&format!(
                "chaos:       spec `{}`, seed {}, schedule fingerprint {:016x}\n  injected:    \
                 {} conns: {} refused, {} req-drops, {} reply-truncs, {} reply-corrupts, \
                 {} resealed, {} upstream-failures\n",
                chaos.spec,
                chaos.seed,
                chaos.fingerprint,
                chaos.injected.connections,
                chaos.injected.refused,
                chaos.injected.dropped_requests,
                chaos.injected.truncated_replies,
                chaos.injected.corrupted_replies,
                chaos.injected.resealed_replies,
                chaos.injected.upstream_failures,
            ));
        }
        if self.chaos.is_some() || self.faults != FaultCounters::default() {
            out.push_str(&self.faults.render_slo(self.requests));
            out.push('\n');
        }
        if let Some(metrics) = &self.metrics {
            out.push_str(&format!(
                "metrics:     {} live scrapes, {} families exported\n",
                metrics.scrapes,
                metrics.families.len()
            ));
            if metrics.windows > 0 {
                out.push_str(&format!(
                    "timeseries:  {} windows retained, peak {} IDs/window\n",
                    metrics.windows, metrics.peak_ids_per_window
                ));
            }
            if let Some(agrees) = self.chaos_mirror_agrees() {
                out.push_str(if agrees {
                    "chaos mirror: registry counters agree with injected ground truth\n"
                } else {
                    "chaos mirror: registry counters DISAGREE with injected ground truth\n"
                });
            }
        }
        if !self.slow.is_empty() {
            out.push_str("slow leases:\n");
            for lease in self.slow.iter().take(3) {
                out.push_str(&format!(
                    "  {:.3} ms corr={} tenant={} node={}\n",
                    lease.latency_ns as f64 / 1e6,
                    lease.corr,
                    lease.tenant,
                    lease.node,
                ));
                for line in lease.timeline.lines() {
                    out.push_str(&format!("    {}\n", line));
                }
            }
        }
        out
    }

    /// Whether the scraped `uuidp_netchaos_*` counters equal the chaos
    /// proxy's own injected-fault tally — the ground-truth equality the
    /// chaos smoke gates on. `None` unless the run had both `chaos` and
    /// `scrape` enabled.
    pub fn chaos_mirror_agrees(&self) -> Option<bool> {
        let chaos = self.chaos.as_ref()?;
        let metrics = self.metrics.as_ref()?;
        let of = |name: &str| metrics.families.get(name).copied().unwrap_or(-1.0);
        let i = &chaos.injected;
        Some(
            of("uuidp_netchaos_connections_total") == i.connections as f64
                && of("uuidp_netchaos_refused_total") == i.refused as f64
                && of("uuidp_netchaos_dropped_requests_total") == i.dropped_requests as f64
                && of("uuidp_netchaos_truncated_replies_total") == i.truncated_replies as f64
                && of("uuidp_netchaos_corrupted_replies_total") == i.corrupted_replies as f64
                && of("uuidp_netchaos_resealed_replies_total") == i.resealed_replies as f64
                && of("uuidp_netchaos_upstream_failures_total") == i.upstream_failures as f64,
        )
    }
}

/// Runs one stress phase against the in-process service.
pub fn run_stress(config: StressConfig) -> StressReport {
    let target = LocalTarget::start(config.service.clone());
    run_stress_with(target, config)
}

/// Runs one stress phase over a loopback TCP server: the service is
/// fronted by a [`TcpServer`] on an ephemeral port and every request —
/// including the shutdown that yields the report — travels through the
/// [`RemoteClient`] socket path. With `remote_workers > 1` the client
/// side is the persistent-connection pool ([`PooledRemoteTarget`]).
pub fn run_stress_remote(config: StressConfig) -> io::Result<StressReport> {
    let server = TcpServer::bind_with(
        "127.0.0.1:0",
        config.service.clone(),
        ServerOptions {
            backend: config.net_backend,
            ..ServerOptions::default()
        },
    )?;
    let registry = server.registry();
    // The scrape sidecar dials the server directly (not through any
    // chaos proxy): the export surface is probed while load flows, but
    // scrapes themselves must never be casualties of the schedule.
    let scraper = config
        .scrape
        .then(|| spawn_wire_scraper(server.local_addr(), config.service.space));
    let finish_metrics = |scraper: Option<JoinHandle<(u64, TimeSeries)>>| {
        scraper.map(|handle| {
            let (scrapes, series) = handle.join().expect("wire scraper panicked");
            MetricsReport {
                scrapes,
                windows: series.len() as u64,
                peak_ids_per_window: series
                    .windows()
                    .map(|w| w.counter("uuidp_ids_issued_total"))
                    .max()
                    .unwrap_or(0),
                families: uuidp_obs::parse_exposition(&registry.snapshot().render_prometheus()),
            }
        })
    };
    if let Some(spec) = config.chaos {
        let seed = config.chaos_seed;
        let proxy = SyncArc::new(ChaosProxy::launch(server.local_addr(), spec, seed)?);
        // Mirror every injected fault into the node's own registry, so
        // the scrape shows ground truth next to the service's counters.
        proxy.attach_obs(&registry, server.trace());
        let target = ChaosRemoteTarget::connect(
            SyncArc::clone(&proxy),
            config.service.space,
            config.remote_workers,
            config.protocol,
            RetryPolicy {
                seed,
                ..RetryPolicy::default()
            },
        );
        let mut report = run_stress_with(target, config);
        report.chaos = Some(ChaosReport {
            spec,
            seed,
            fingerprint: schedule_fingerprint(&spec, seed, FINGERPRINT_CONNS),
            injected: proxy.counts(),
        });
        report.metrics = finish_metrics(scraper);
        let _ = server.join();
        return Ok(report);
    }
    let mut report = if config.remote_workers > 1 {
        let target = PooledRemoteTarget::connect(
            server.local_addr(),
            config.service.space,
            config.remote_workers,
            config.protocol,
        )?;
        run_stress_with(target, config)
    } else {
        let target =
            RemoteTarget::connect(server.local_addr(), config.service.space, config.protocol)?;
        run_stress_with(target, config)
    };
    report.metrics = finish_metrics(scraper);
    // Join the server threads; the driver-side report already carries
    // the (identical) totals parsed off the wire.
    let _ = server.join();
    Ok(report)
}

/// Runs one stress phase against any [`StressTarget`].
pub fn run_stress_with<T: StressTarget>(mut target: T, config: StressConfig) -> StressReport {
    let mix = config.mix;
    let shards = config.service.shards;
    let started = clock::monotonic_ns();
    let submitted = match mix {
        TrafficMix::Uniform => drive_uniform(&mut target, &config),
        TrafficMix::Skewed => drive_skewed(&mut target, &config),
        TrafficMix::Flood => drive_flood(&mut target, &config),
        TrafficMix::Hunter => drive_hunter(&mut target, &config),
    };
    target.drain();
    let elapsed = Duration::from_nanos(elapsed_ns(started));
    let report = target.finish();
    let ids_per_sec = report.issued_ids as f64 / elapsed.as_secs_f64().max(1e-9);
    StressReport {
        mix,
        shards,
        requests: submitted,
        issued_ids: report.issued_ids,
        elapsed,
        ids_per_sec,
        p50_us: report.p50_ns / 1e3,
        p99_us: report.p99_ns / 1e3,
        p999_us: report.p999_ns / 1e3,
        mean_us: report.mean_ns / 1e3,
        errors: report.errors,
        faults: report.faults,
        chaos: None,
        audit: report.audit,
        metrics: None,
        slow: report.slow,
    }
}

fn drive_uniform<T: StressTarget>(target: &mut T, cfg: &StressConfig) -> u64 {
    for r in 0..cfg.requests {
        target.issue(r % cfg.tenants, cfg.count);
    }
    cfg.requests
}

fn drive_skewed<T: StressTarget>(target: &mut T, cfg: &StressConfig) -> u64 {
    // Power-law tenant weights, sampled by inverse CDF over prefix sums.
    let alpha = 1.2f64;
    let weights: Vec<f64> = (0..cfg.tenants)
        .map(|t| 1.0 / ((t + 1) as f64).powf(alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut rng = SeedTree::new(cfg.service.master_seed).rng(SeedDomain::Workload);
    for _ in 0..cfg.requests {
        let u = (rng.next_value() >> 11) as f64 / (1u64 << 53) as f64;
        let tenant = cdf
            .partition_point(|&c| c < u)
            .min(cfg.tenants as usize - 1);
        target.issue(tenant as u64, cfg.count);
    }
    cfg.requests
}

fn drive_flood<T: StressTarget>(target: &mut T, cfg: &StressConfig) -> u64 {
    for r in 0..cfg.requests {
        if r % 4 != 3 {
            target.issue(0, cfg.count * 4);
        } else {
            target.issue(1 + r % (cfg.tenants.max(2) - 1), cfg.count);
        }
    }
    cfg.requests
}

fn drive_hunter<T: StressTarget>(target: &mut T, cfg: &StressConfig) -> u64 {
    // The adaptive attacker plays through the front door: every move is
    // a real (synchronous) lease, every observation a real returned ID.
    let n = (cfg.tenants.max(2) as usize).min(64);
    let budget = cfg.requests as u128;
    let spec = RunHunter::new(n, budget.max(n as u128));
    let mut adv = spec.spawn(cfg.service.master_seed);
    let mut histories: Vec<Vec<Id>> = Vec::new();
    let mut submitted = 0u64;
    loop {
        if submitted as u128 >= budget {
            break;
        }
        let action = {
            let view = GameView {
                space: target.space(),
                histories: &histories,
                // The audit runs asynchronously; the attacker plays the
                // budget out rather than stopping at first blood.
                collision: false,
                total_requests: submitted as u128,
            };
            adv.next_action(&view)
        };
        let tenant = match action {
            Action::Stop => break,
            Action::Activate => {
                histories.push(Vec::new());
                histories.len() - 1
            }
            Action::Request(i) => i,
        };
        let arcs = target.lease_arcs(tenant as u64, 1);
        submitted += 1;
        let Some(arc) = arcs.first() else { break };
        histories[tenant].push(arc.start);
    }
    submitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::AlgorithmKind;
    use uuidp_core::id::IdSpace;

    fn base(kind: AlgorithmKind, bits: u32) -> StressConfig {
        let service = ServiceConfig::new(kind, IdSpace::with_bits(bits).unwrap());
        StressConfig::new(service, 8, 400, 64)
    }

    #[test]
    fn uniform_mix_issues_all_requested_ids() {
        let report = run_stress(base(AlgorithmKind::Cluster, 48));
        assert_eq!(report.requests, 400);
        assert_eq!(report.issued_ids, 400 * 64);
        assert_eq!(report.errors, 0);
        assert!(!report.audit.counts.collided());
        assert!(report.ids_per_sec > 0.0);
        assert!(report.p99_us >= report.p50_us);
    }

    #[test]
    fn skewed_and_flood_mixes_run_clean_on_big_universes() {
        for mix in [TrafficMix::Skewed, TrafficMix::Flood] {
            let mut cfg = base(AlgorithmKind::BinsStar, 48);
            cfg.mix = mix;
            cfg.requests = 300;
            let report = run_stress(cfg);
            assert_eq!(report.requests, 300);
            assert!(report.issued_ids >= 300 * 64, "{mix}: batches issued");
            assert!(!report.audit.counts.collided(), "{mix}: no duplicates");
        }
    }

    #[test]
    fn hunter_mix_plays_the_adaptive_game_through_the_service() {
        let mut cfg = base(AlgorithmKind::Cluster, 20);
        cfg.mix = TrafficMix::Hunter;
        cfg.tenants = 4;
        cfg.requests = 200;
        cfg.service.shards = 2;
        let report = run_stress(cfg);
        assert!(report.requests >= 4, "at least the probe phase ran");
        assert_eq!(
            report.issued_ids, report.requests as u128,
            "single-ID leases"
        );
        // On m = 2^20 with 200 adaptively aimed requests the hunter often
        // scores, but the *pipeline* guarantee is just that the audit saw
        // every issued ID.
        assert_eq!(report.audit.counts.recorded_ids, report.issued_ids);
    }

    #[test]
    fn injected_collision_is_always_detected() {
        // The acceptance-criterion scenario: same-seed twin tenants under
        // a full mix must produce zero audit false negatives.
        let mut cfg = base(AlgorithmKind::Cluster, 44);
        cfg.service.seed_alias = Some((0, 1));
        cfg.service.shards = 3;
        let tenants = cfg.tenants as u128;
        let report = run_stress(cfg);
        assert!(report.audit.counts.collided(), "audit false negative");
        // Uniform mix: tenants 0 and 1 lease identical streams of equal
        // volume; every ID of the later-audited twin is a duplicate.
        assert_eq!(
            report.audit.counts.duplicate_ids,
            report.issued_ids / tenants
        );
    }

    #[test]
    fn pooled_remote_transport_reproduces_in_process_totals() {
        // Connection reuse must be invisible in the numbers: for every
        // pool width the audit totals equal the in-process run's (the
        // tenant→worker pinning keeps each tenant's stream FIFO).
        let make = || {
            let mut cfg = base(AlgorithmKind::ClusterStar, 40);
            cfg.mix = TrafficMix::Skewed;
            cfg.requests = 200;
            cfg.service.seed_alias = Some((0, 5)); // live duplicate counter
            cfg
        };
        let local = run_stress(make());
        assert!(local.audit.counts.collided(), "twins must collide");
        for workers in [2usize, 4] {
            let mut cfg = make();
            cfg.remote_workers = workers;
            let pooled = run_stress_remote(cfg).expect("pooled loopback stress");
            assert_eq!(
                (
                    local.issued_ids,
                    local.audit.counts.duplicate_ids,
                    local.audit.counts.recorded_ids,
                ),
                (
                    pooled.issued_ids,
                    pooled.audit.counts.duplicate_ids,
                    pooled.audit.counts.recorded_ids,
                ),
                "{workers} pool workers changed the totals"
            );
        }
    }

    #[test]
    fn v2_transport_reproduces_in_process_totals_single_and_pooled() {
        // The protocol-v2 differential: the binary framed transport —
        // single multiplexed connection or a pool of clones of one —
        // must reproduce the in-process audit totals bit-exactly.
        let make = || {
            let mut cfg = base(AlgorithmKind::ClusterStar, 40);
            cfg.mix = TrafficMix::Skewed;
            cfg.requests = 200;
            cfg.service.seed_alias = Some((0, 5)); // live duplicate counter
            cfg
        };
        let local = run_stress(make());
        assert!(local.audit.counts.collided(), "twins must collide");
        for workers in [1usize, 3] {
            let mut cfg = make();
            cfg.protocol = ProtoVersion::V2;
            cfg.remote_workers = workers;
            let remote = run_stress_remote(cfg).expect("v2 loopback stress");
            assert_eq!(
                (
                    local.issued_ids,
                    local.audit.counts.duplicate_ids,
                    local.audit.counts.recorded_ids,
                ),
                (
                    remote.issued_ids,
                    remote.audit.counts.duplicate_ids,
                    remote.audit.counts.recorded_ids,
                ),
                "protocol v2 with {workers} pool workers changed the totals"
            );
        }
    }

    #[test]
    fn v2_hunter_mix_observes_arcs_over_the_mux() {
        let mut cfg = base(AlgorithmKind::Cluster, 20);
        cfg.mix = TrafficMix::Hunter;
        cfg.tenants = 4;
        cfg.requests = 120;
        cfg.protocol = ProtoVersion::V2;
        let report = run_stress_remote(cfg).expect("v2 hunter stress");
        assert!(report.requests >= 4, "probe phase never ran");
        assert_eq!(report.issued_ids, report.requests as u128);
        assert_eq!(report.audit.counts.recorded_ids, report.issued_ids);
    }

    #[test]
    fn pooled_hunter_mix_observes_arcs_through_the_pool() {
        let mut cfg = base(AlgorithmKind::Cluster, 20);
        cfg.mix = TrafficMix::Hunter;
        cfg.tenants = 4;
        cfg.requests = 120;
        cfg.remote_workers = 3;
        let report = run_stress_remote(cfg).expect("pooled hunter stress");
        assert!(report.requests >= 4, "probe phase never ran");
        assert_eq!(report.issued_ids, report.requests as u128);
        assert_eq!(report.audit.counts.recorded_ids, report.issued_ids);
    }

    #[test]
    fn stress_is_reproducible_across_runs_and_shard_counts() {
        let run = |shards: usize| {
            let mut cfg = base(AlgorithmKind::ClusterStar, 40);
            cfg.mix = TrafficMix::Skewed;
            cfg.service.shards = shards;
            cfg.requests = 250;
            let r = run_stress(cfg);
            (r.issued_ids, r.audit.counts)
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a, b, "shard count changed stress outcome");
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let report = run_stress(base(AlgorithmKind::Cluster, 40));
        let text = report.render();
        assert!(text.contains("throughput"));
        assert!(text.contains("issue p99"));
        assert!(text.contains("issue p999"));
        assert!(text.contains("audit lag"));
    }

    #[test]
    fn chaos_run_degrades_gracefully_and_never_duplicates() {
        // The tentpole invariant: under partitions, torn frames, and
        // corrupted replies, the retrying driver completes the run with
        // zero audit duplicates — lost leases leak, they never replay.
        let mut cfg = base(AlgorithmKind::Cluster, 48);
        cfg.requests = 300;
        cfg.remote_workers = 3;
        cfg.protocol = ProtoVersion::V2;
        cfg.chaos = Some(ChaosSpec::heavy());
        cfg.chaos_seed = 0xC4A05;
        let report = run_stress_remote(cfg).expect("chaos stress run");
        assert_eq!(report.requests, 300);
        assert_eq!(
            report.audit.counts.duplicate_ids, 0,
            "chaos must leak, never duplicate"
        );
        let chaos = report.chaos.expect("chaos stamp");
        assert!(
            chaos.injected.injected() > 0,
            "the heavy preset injected nothing: {:?}",
            chaos.injected
        );
        assert!(
            report.faults.failed_attempts() > 0,
            "no client ever observed a fault"
        );
        let text = report.render();
        assert!(text.contains("slo:"), "{text}");
        assert!(text.contains("fault-class:"), "{text}");
        assert!(text.contains("chaos:"), "{text}");
    }

    #[test]
    fn scraped_run_sees_required_families_live_and_final_totals_exact() {
        let mut cfg = base(AlgorithmKind::Cluster, 48);
        cfg.remote_workers = 2;
        cfg.scrape = true;
        let report = run_stress_remote(cfg).expect("scraped loopback stress");
        let metrics = report
            .metrics
            .clone()
            .expect("scrape-enabled run carries metrics");
        assert!(
            metrics.scrapes >= 1,
            "the sidecar never completed a live scrape"
        );
        // The final server-side registry agrees exactly with the wire
        // summary the run reported.
        assert_eq!(
            metrics.families.get("uuidp_ids_issued_total"),
            Some(&(report.issued_ids as f64)),
        );
        assert_eq!(
            metrics.families.get("uuidp_leases_total"),
            Some(&(report.requests as f64)),
        );
        assert_eq!(
            metrics.families.get("uuidp_audit_records_total"),
            Some(&(report.audit.records as f64)),
        );
        let rendered = report.render();
        assert!(rendered.contains("live scrapes"), "{rendered}");
    }

    #[test]
    fn chaos_registry_mirror_equals_injected_ground_truth() {
        // The injected-fault counters exported by the registry must be
        // *equal* to the proxy's own tally — the scrape-vs-schedule
        // ground-truth gate the chaos smoke runs in CI.
        let mut cfg = base(AlgorithmKind::Cluster, 48);
        cfg.requests = 200;
        cfg.remote_workers = 3;
        cfg.protocol = ProtoVersion::V2;
        cfg.chaos = Some(ChaosSpec::heavy());
        cfg.chaos_seed = 0xB0B0;
        cfg.scrape = true;
        let report = run_stress_remote(cfg).expect("chaos stress run");
        let chaos = report.chaos.expect("chaos stamp");
        assert!(chaos.injected.injected() > 0, "nothing was injected");
        assert_eq!(
            report.chaos_mirror_agrees(),
            Some(true),
            "registry mirror diverged from the proxy tally: {:?} vs {:?}",
            report.metrics.as_ref().map(|m| &m.families),
            chaos.injected,
        );
        assert!(
            report.render().contains("registry counters agree"),
            "render must surface the mirror agreement"
        );
    }

    #[test]
    fn chaos_schedule_fingerprint_is_seed_stable() {
        // Two runs of the same seed stamp the same schedule pin; a
        // different seed diverges.
        let run = |seed: u64| {
            let mut cfg = base(AlgorithmKind::Cluster, 48);
            cfg.requests = 60;
            cfg.remote_workers = 2;
            cfg.protocol = ProtoVersion::V2;
            cfg.chaos = Some(ChaosSpec::small());
            cfg.chaos_seed = seed;
            run_stress_remote(cfg)
                .expect("chaos stress run")
                .chaos
                .expect("chaos stamp")
                .fingerprint
        };
        assert_eq!(run(7), run(7), "same seed must re-print the same pin");
        assert_ne!(run(7), run(8), "different seeds must diverge");
    }
}
