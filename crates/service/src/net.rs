//! TCP front-end for the ID service, plus the matching client.
//!
//! [`TcpServer`] grows the `uuidp serve` line protocol from a
//! process-local loop into a real network daemon: a
//! [`std::net::TcpListener`] with one handler thread per connection, all
//! connections multiplexed onto one shared [`IdService`] (the service's
//! own shard channels already serialize per-tenant work, so concurrent
//! connections need no extra locking beyond the shared handle).
//!
//! Shutdown is graceful and client-initiated: the `shutdown` command
//! stops the accept loop, drains and joins the service (waiting out
//! every in-flight lease), replies with the one-line summary of
//! [`render_summary`], and unblocks every other connection. The summary
//! a client parses and the [`ServiceReport`] the server process keeps
//! describe the same shutdown, so driver-side and server-side accounting
//! can be compared exactly — that is what the remote stress differential
//! test pins.
//!
//! [`RemoteClient`] is the client half: newline-framed commands out,
//! one reply line back per command, typed back into [`WireLease`] /
//! [`WireSummary`] via the [`protocol`](crate::protocol) parsers.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use uuidp_core::id::IdSpace;

use crate::protocol::{
    parse_lease_line, parse_summary, render_lease, render_summary, Command, WireLease, WireSummary,
};
use crate::service::{IdService, ServiceConfig, ServiceReport};

/// Shared state of a running [`TcpServer`].
struct ServerState {
    /// The service; taken (→ `None`) by whichever connection shuts down.
    service: RwLock<Option<IdService>>,
    /// Set before the accept loop is woken for the last time.
    stopping: AtomicBool,
    /// Write halves of every *live* connection, keyed by connection id
    /// so a finished handler can deregister its own entry (otherwise
    /// churning clients would leak one fd each until shutdown). Shutdown
    /// severs whatever is registered to unblock blocked readers.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Connection id source.
    next_conn: AtomicU64,
}

impl ServerState {
    /// Severs every registered connection (shutdown-time unblocking).
    fn sever_all(&self) {
        for (_, conn) in self.conns.lock().expect("conns lock").drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running TCP front-end over one [`IdService`].
pub struct TcpServer {
    local_addr: SocketAddr,
    accept: JoinHandle<()>,
    report_rx: Receiver<ServiceReport>,
    state: Arc<ServerState>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), boots
    /// the service, and starts accepting connections.
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            service: RwLock::new(Some(IdService::start(config))),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let (report_tx, report_rx) = sync_channel::<ServiceReport>(1);
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            let mut handlers = Vec::new();
            for stream in listener.incoming() {
                if accept_state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // One reply line per command line: Nagle + delayed ACK
                // would add ~40ms to every round trip on loopback.
                let _ = stream.set_nodelay(true);
                let state = Arc::clone(&accept_state);
                let report_tx = report_tx.clone();
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, state, report_tx, local_addr);
                }));
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(TcpServer {
            local_addr,
            accept,
            report_rx,
            state,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently registered (live) connections — departed clients are
    /// deregistered by their handler, so this does not grow with
    /// connection churn.
    pub fn live_connections(&self) -> usize {
        self.state.conns.lock().expect("conns lock").len()
    }

    /// Blocks until a client issues `shutdown`, then returns the
    /// server-side [`ServiceReport`] (`None` only if the accept loop
    /// died without a shutdown, which a well-formed run never does).
    pub fn join(self) -> Option<ServiceReport> {
        let _ = self.accept.join();
        self.report_rx.try_recv().ok()
    }

    /// Server-side stop, no client involved: severs every live
    /// connection mid-command, stops the accept loop, and tears the
    /// service down. Clients see an abrupt EOF, exactly as if the
    /// process died.
    ///
    /// This is the crash lever the fleet chaos harness pulls: callers
    /// that *discard* the returned report (and never checkpointed)
    /// keep only what the durability layer's write-ahead records
    /// captured — the fiction of a power cut, at the persistence
    /// boundary where it matters. Returns `None` if a client shutdown
    /// raced this call and won.
    pub fn halt(self) -> Option<ServiceReport> {
        self.state.stopping.store(true, Ordering::SeqCst);
        let service = self.state.service.write().expect("service lock").take();
        let report = service.map(IdService::shutdown);
        self.state.sever_all();
        // Unblock the accept loop, then wait out the handler threads.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.accept.join();
        report.or_else(|| self.report_rx.try_recv().ok())
    }
}

/// One connection: read command lines, reply per line, until quit,
/// shutdown, disconnect, or server stop.
fn handle_connection(
    stream: TcpStream,
    state: Arc<ServerState>,
    report_tx: SyncSender<ServiceReport>,
    local_addr: SocketAddr,
) {
    let Ok(mut out) = stream.try_clone() else {
        return;
    };
    let conn_id = state.next_conn.fetch_add(1, Ordering::SeqCst);
    if let Ok(registered) = stream.try_clone() {
        state
            .conns
            .lock()
            .expect("conns lock")
            .insert(conn_id, registered);
    }
    // Close the register/sever race: a shutdown that drained `conns`
    // *before* the insert above set `stopping` *before* draining, so
    // this check catches exactly the registrations the drain missed —
    // otherwise this handler's blocked read would hang the accept
    // thread's join forever.
    if state.stopping.load(Ordering::SeqCst) {
        state.conns.lock().expect("conns lock").remove(&conn_id);
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return;
    }
    run_connection(stream, &mut out, &state, &report_tx, local_addr);
    // Deregister so long-lived servers don't accumulate one dup'd fd
    // per departed client. (After a shutdown drain this is a no-op.)
    state.conns.lock().expect("conns lock").remove(&conn_id);
}

/// The per-connection command loop (split out so the caller can pair
/// registration with guaranteed deregistration).
fn run_connection(
    stream: TcpStream,
    out: &mut TcpStream,
    state: &ServerState,
    report_tx: &SyncSender<ServiceReport>,
    local_addr: SocketAddr,
) {
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let reply = match Command::parse(&line) {
            Err(msg) => format!("error: {msg}"),
            Ok(None) => continue,
            Ok(Some(Command::Quit)) => break,
            Ok(Some(Command::Lease { tenant, count })) => {
                match state.service.read().expect("service lock").as_ref() {
                    Some(service) => render_lease(&service.lease(tenant, count)),
                    None => "error: shutting down".into(),
                }
            }
            Ok(Some(Command::Reset { tenant })) => {
                match state.service.read().expect("service lock").as_ref() {
                    Some(service) => {
                        service.reset_tenant(tenant);
                        format!("reset tenant={tenant}")
                    }
                    None => "error: shutting down".into(),
                }
            }
            Ok(Some(Command::Drain)) => {
                match state.service.read().expect("service lock").as_ref() {
                    Some(service) => {
                        service.drain();
                        "drained".into()
                    }
                    None => "error: shutting down".into(),
                }
            }
            Ok(Some(Command::Shutdown)) => {
                state.stopping.store(true, Ordering::SeqCst);
                // The write lock waits out every in-flight request.
                let service = state.service.write().expect("service lock").take();
                match service {
                    Some(service) => {
                        let report = service.shutdown();
                        let _ = writeln!(out, "{}", render_summary(&report));
                        let _ = report_tx.send(report);
                        // Unblock sibling connections and the accept loop.
                        state.sever_all();
                        let _ = TcpStream::connect(local_addr);
                        return;
                    }
                    None => "error: shutting down".into(),
                }
            }
        };
        if writeln!(out, "{reply}").is_err() {
            break;
        }
    }
}

/// A blocking line-protocol client for a [`TcpServer`] (or any process
/// speaking the `uuidp serve` grammar).
pub struct RemoteClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    space: IdSpace,
}

fn proto_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl RemoteClient {
    /// Connects to `addr`. `space` must match the server's universe —
    /// the wire carries arc start/len pairs, and the client rebuilds
    /// typed [`Arc`](uuidp_core::interval::Arc)s over this space.
    pub fn connect<A: ToSocketAddrs>(addr: A, space: IdSpace) -> io::Result<RemoteClient> {
        let writer = TcpStream::connect(addr)?;
        // Command lines are tiny and latency-bound; never batch them
        // behind Nagle (pairs with the server-side set_nodelay).
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(RemoteClient {
            reader,
            writer,
            space,
        })
    }

    /// Sends one command line and reads the one reply line.
    fn roundtrip(&mut self, command: &str) -> io::Result<String> {
        writeln!(self.writer, "{command}")?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Leases `count` IDs for `tenant`.
    pub fn lease(&mut self, tenant: u64, count: u128) -> io::Result<WireLease> {
        let line = self.roundtrip(&format!("lease {tenant} {count}"))?;
        parse_lease_line(&line, self.space).map_err(proto_err)
    }

    /// Recycles `tenant`'s generator into a fresh epoch.
    pub fn reset(&mut self, tenant: u64) -> io::Result<()> {
        let line = self.roundtrip(&format!("reset {tenant}"))?;
        if line == format!("reset tenant={tenant}") {
            Ok(())
        } else {
            Err(proto_err(format!("unexpected reset reply: `{line}`")))
        }
    }

    /// Blocks until the server has processed every prior request.
    pub fn drain(&mut self) -> io::Result<()> {
        let line = self.roundtrip("drain")?;
        if line == "drained" {
            Ok(())
        } else {
            Err(proto_err(format!("unexpected drain reply: `{line}`")))
        }
    }

    /// Closes this connection; the server keeps running.
    pub fn quit(mut self) -> io::Result<()> {
        writeln!(self.writer, "quit")?;
        Ok(())
    }

    /// Stops the whole server and returns its parsed shutdown summary.
    pub fn shutdown(mut self) -> io::Result<WireSummary> {
        let line = self.roundtrip("shutdown")?;
        parse_summary(&line).map_err(proto_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::AlgorithmKind;

    fn server(bits: u32) -> (TcpServer, IdSpace) {
        let space = IdSpace::with_bits(bits).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        (
            TcpServer::bind("127.0.0.1:0", config).expect("bind loopback"),
            space,
        )
    }

    #[test]
    fn lease_reset_drain_shutdown_over_loopback() {
        let (server, space) = server(40);
        let mut client = RemoteClient::connect(server.local_addr(), space).unwrap();
        let lease = client.lease(3, 100).unwrap();
        assert_eq!(lease.tenant, 3);
        assert_eq!(lease.granted, 100);
        assert_eq!(lease.arcs.iter().map(|a| a.len).sum::<u128>(), 100);
        assert!(lease.error.is_none());
        client.reset(3).unwrap();
        let again = client.lease(3, 50).unwrap();
        assert_eq!(again.granted, 50);
        client.drain().unwrap();
        let summary = client.shutdown().unwrap();
        assert_eq!(summary.issued_ids, 150);
        assert_eq!(summary.leases, 2);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.audit_threads, 1);
        // The server-side report agrees with what crossed the wire.
        let report = server.join().expect("server report");
        assert_eq!(report.issued_ids, 150);
        assert_eq!(report.leases, 2);
        assert_eq!(
            report.audit.counts.duplicate_ids, summary.duplicate_ids,
            "wire summary diverged from the server report"
        );
    }

    #[test]
    fn concurrent_connections_share_the_service() {
        let (server, space) = server(44);
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u64)
            .map(|tenant| {
                std::thread::spawn(move || {
                    let mut client = RemoteClient::connect(addr, space).unwrap();
                    let mut total = 0u128;
                    for round in 0..10u128 {
                        total += client.lease(tenant, 32 + round).unwrap().granted;
                    }
                    client.quit().unwrap();
                    total
                })
            })
            .collect();
        let issued: u128 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut closer = RemoteClient::connect(addr, space).unwrap();
        closer.drain().unwrap();
        let summary = closer.shutdown().unwrap();
        assert_eq!(summary.issued_ids, issued);
        assert_eq!(summary.leases, 40);
        assert_eq!(summary.duplicate_ids, 0, "independent tenants collided");
        assert!(server.join().is_some());
    }

    #[test]
    fn malformed_lines_get_error_replies_and_keep_the_connection() {
        let (server, space) = server(32);
        let mut client = RemoteClient::connect(server.local_addr(), space).unwrap();
        let reply = client.roundtrip("utter gibberish here").unwrap();
        assert!(reply.starts_with("error:"), "got `{reply}`");
        let reply = client.roundtrip("reset nope").unwrap();
        assert!(reply.starts_with("error:"), "got `{reply}`");
        // Still serviceable afterwards.
        assert_eq!(client.lease(0, 5).unwrap().granted, 5);
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn departed_connections_are_deregistered() {
        // Churning clients must not accumulate registered fds: after
        // every client quits, the live-connection registry drains back
        // to zero (the handler deregisters on exit).
        let (server, space) = server(32);
        let addr = server.local_addr();
        for tenant in 0..5u64 {
            let mut client = RemoteClient::connect(addr, space).unwrap();
            assert_eq!(client.lease(tenant, 8).unwrap().granted, 8);
            client.quit().unwrap();
        }
        // Handlers deregister asynchronously after the quit line.
        for _ in 0..200 {
            if server.live_connections() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.live_connections(), 0, "fd registry leaked");
        let closer = RemoteClient::connect(addr, space).unwrap();
        assert_eq!(closer.shutdown().unwrap().issued_ids, 40);
        server.join().unwrap();
    }

    #[test]
    fn halt_stops_the_server_without_a_client() {
        let (server, space) = server(36);
        let addr = server.local_addr();
        let mut client = RemoteClient::connect(addr, space).unwrap();
        client.lease(0, 25).unwrap();
        // The crash lever: connected clients see EOF, not a summary.
        let report = server.halt().expect("halt yields the report");
        assert_eq!(report.issued_ids, 25);
        let err = client.lease(0, 1).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ),
            "halted server should sever the client, got {err:?}"
        );
        // The port is free again: a new server can bind-and-halt cleanly.
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let again = TcpServer::bind(&addr.to_string(), config).expect("rebind after halt");
        assert!(again.halt().is_some());
    }

    #[test]
    fn sibling_connections_are_unblocked_by_shutdown() {
        let (server, space) = server(36);
        let addr = server.local_addr();
        let idle = RemoteClient::connect(addr, space).unwrap();
        let mut active = RemoteClient::connect(addr, space).unwrap();
        active.lease(0, 10).unwrap();
        active.shutdown().unwrap();
        // The idle connection was severed server-side; the server joins
        // without waiting on it, and the idle client sees EOF.
        let report = server.join().expect("report despite idle sibling");
        assert_eq!(report.issued_ids, 10);
        drop(idle);
    }
}
