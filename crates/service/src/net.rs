//! TCP front-end for the ID service, plus the matching clients.
//!
//! [`TcpServer`] speaks **both wire protocols** and negotiates per
//! connection on the first byte: v1 text lines (the `uuidp serve`
//! grammar, handled exactly as before — one blocking handler thread per
//! connection) and **protocol v2**, the `uuidp_client` binary framed
//! protocol, which is served without any per-connection thread at all:
//!
//! ```text
//!   accept ──► reactor thread (readiness-driven; owns every v2 conn)
//!                 │  sniff first byte: 0x00 ⇒ v2, else hand off to a
//!                 │  v1 line-protocol handler thread
//!                 │  complete frames, dispatched by kind:
//!                 ├── lease/reset ──► worker pool (tenant-keyed queues)
//!                 └── drain/summary/shutdown/halt ──► control thread
//!                        reply frames are *queued* back to the reactor
//!                        and flushed with vectored writes on write
//!                        readiness, correlation ids intact
//! ```
//!
//! The v2 accept path closes the ROADMAP's thread-per-connection item:
//! however many v2 connections are open, the server runs one reactor
//! thread plus a fixed pool of `v2_workers` execution threads. The
//! reactor ([`crate::reactor`]) takes readiness from epoll on Linux
//! (raw syscalls, see [`crate::sys`]) or from a portable poll rotation
//! elsewhere — [`ServerOptions::backend`] picks, and an idle epoll
//! server costs ~zero CPU regardless of connection count. Requests are
//! routed to pool workers by `tenant % workers`, so each tenant's
//! requests stay FIFO end to end (the determinism the differential
//! tests pin), while different tenants' requests from one multiplexed
//! connection are served concurrently. Drain/summary/shutdown run on a
//! dedicated control thread that first barriers the pool — "everything
//! submitted before me" keeps its v1 meaning. Workers never block on a
//! slow peer: replies queue on the owning connection inside the
//! reactor, and a peer that stops reading is eventually severed
//! (backpressure by disconnect, not by stalling a shared thread).
//!
//! Shutdown is graceful and client-initiated in either protocol, and
//! the numbers can never diverge: both the v1 `bye` line and the v2
//! summary frame are projected from the same [`ServiceReport`] by
//! [`wire_summary`]. [`TcpServer::halt`] remains the in-process crash
//! lever, and the v2 `halt` frame is its remote twin; both discard the
//! report and sever every connection mid-command. The durability
//! layer's `halt_after_persists` hook arrives here too: a lease reply
//! flagged `halted` makes the server die *instead of replying* —
//! a crash dropped exactly between the write-ahead persist and the
//! reply, which no external kill can aim that precisely.
//!
//! [`RemoteClient`] is the v1 client half: newline-framed commands out,
//! one reply line back per command. [`DialedClient`] wraps it together
//! with the v2 [`Client`](uuidp_client::Client) behind one protocol-
//! agnostic surface, so consumers (stress driver, fleet router, CLI)
//! select a protocol with a flag instead of a code path.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use uuidp_client::frame::{self, FrameBody};
use uuidp_client::{Client, ClientOptions, ProtoVersion};
use uuidp_core::clock;
use uuidp_core::id::IdSpace;
use uuidp_core::lockorder;
use uuidp_obs::{Registry, Stage, TraceRecorder};

use crate::protocol::{
    parse_lease_line, parse_summary, render_lease, render_summary, wire_summary, Command,
    WireLease, WireSummary,
};
use crate::reactor::{NetBackend, Poller, Reactor, ReactorCmd, ReactorHandle, ReactorSeed};
use crate::service::{IdService, LeaseReply, ServiceConfig, ServiceReport};

/// Front-end options, beyond the service's own configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Accept v2 binary-frame connections (v1 text always works). Off,
    /// the listener is a legacy-only front-end: a v2 hello is answered
    /// with a fatal error frame.
    pub accept_v2: bool,
    /// Execution threads in the shared v2 worker pool. Requests are
    /// pinned to workers by `tenant % v2_workers`.
    pub v2_workers: usize,
    /// Serve metric scrapes (the v1 `metrics` command and the v2
    /// metrics frame). Off, a scrape gets a typed error reply and the
    /// connection stays up — the registry still records either way,
    /// this only gates the *export* surface.
    pub metrics: bool,
    /// Readiness backend for the reactor ([`NetBackend::Auto`] resolves
    /// to epoll where compiled in, the poll rotation elsewhere).
    pub backend: NetBackend,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            accept_v2: true,
            v2_workers: 4,
            metrics: true,
            backend: NetBackend::Auto,
        }
    }
}

/// Shared state of a running [`TcpServer`].
pub(crate) struct ServerState {
    /// The service; taken (→ `None`) by whichever connection shuts down.
    pub(crate) service: RwLock<Option<IdService>>,
    /// Set before the accept loop is woken for the last time.
    pub(crate) stopping: AtomicBool,
    /// Every *live* connection, keyed by connection id so a finished
    /// handler can deregister its own entry (otherwise churning clients
    /// would leak an entry each until shutdown). The value is a write
    /// half **only for blocking v1 handlers** — shutdown must sever
    /// those to unblock their reads. Reactor-owned connections are
    /// counted as `None`: the reactor severs its own sockets on stop,
    /// and cloning a second fd per connection here would double the
    /// server's fd cost (10k idle conns → 20k fds, an EMFILE wall).
    pub(crate) conns: Mutex<HashMap<u64, Option<TcpStream>>>,
    /// Connection id source.
    pub(crate) next_conn: AtomicU64,
    /// The service's universe — validated against every v2 hello.
    pub(crate) space: IdSpace,
    /// The service's metric registry, kept alongside the `RwLock`ed
    /// service so scrapes never contend with the lease path (reading
    /// counters is lock-free; only snapshot assembly walks the map).
    pub(crate) registry: Arc<Registry>,
    /// The service's trace recorder, for the front-end's own lifecycle
    /// stamps (server-demux, reply-sent).
    pub(crate) trace: Arc<TraceRecorder>,
    /// Whether scrapes are served (see [`ServerOptions::metrics`]).
    pub(crate) metrics: bool,
    /// Command surface into the reactor thread (stop paths use it to
    /// bring the reactor down with the sockets).
    pub(crate) reactor: ReactorHandle,
    /// The resolved readiness backend ("epoll" or "poll").
    pub(crate) backend: &'static str,
}

impl ServerState {
    /// Severs every registered connection (shutdown-time unblocking)
    /// and stops the reactor with them — every stop path funnels
    /// through here, and a reactor without sockets has nothing left to
    /// wait on.
    pub(crate) fn sever_all(&self) {
        self.reactor.stop();
        let _order = lockorder::track("server.conns");
        for (_, conn) in self.conns.lock().expect("conns lock").drain() {
            if let Some(conn) = conn {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Registers a reactor-owned connection, returning its id — and
    /// closes the register/sever race: a shutdown that drained `conns`
    /// *before* this insert set `stopping` *before* draining, so the
    /// check below catches exactly the registrations the drain missed.
    /// Returns `None` (connection severed) when the server is stopping.
    /// No fd is cloned here: the reactor severs its own sockets on
    /// stop, so the entry only counts the connection.
    pub(crate) fn register(&self, stream: &TcpStream) -> Option<u64> {
        let conn_id = self.next_conn.fetch_add(1, Ordering::SeqCst);
        {
            let _order = lockorder::track("server.conns");
            self.conns.lock().expect("conns lock").insert(conn_id, None);
        }
        if self.stopping.load(Ordering::SeqCst) {
            self.deregister(conn_id);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return None;
        }
        Some(conn_id)
    }

    /// Upgrades a registered connection to a severable entry before its
    /// blocking v1 handler takes over — once the socket leaves the
    /// readiness set, only a stored write half can unblock its reads at
    /// shutdown. Same race discipline as [`ServerState::register`]:
    /// returns `false` (connection severed) when the server is
    /// stopping, and the caller must not spawn the handler.
    pub(crate) fn promote_v1(&self, conn_id: u64, stream: &TcpStream) -> bool {
        if let Ok(write_half) = stream.try_clone() {
            let _order = lockorder::track("server.conns");
            self.conns
                .lock()
                .expect("conns lock")
                .insert(conn_id, Some(write_half));
        }
        if self.stopping.load(Ordering::SeqCst) {
            self.deregister(conn_id);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return false;
        }
        true
    }

    pub(crate) fn deregister(&self, conn_id: u64) {
        let _order = lockorder::track("server.conns");
        self.conns.lock().expect("conns lock").remove(&conn_id);
    }
}

/// Kills the server from inside: stop accepting, tear the service down
/// **discarding its report**, sever every live connection mid-command,
/// and wake the accept loop. This is the shared crash fiction behind
/// [`TcpServer::halt`], the v2 `halt` frame, and the
/// `halt_after_persists` hook — clients see an abrupt EOF, and what
/// survives is only what the durability layer persisted write-ahead.
///
/// When the service has a durable state dir, the flight recorder dumps
/// its last events + a registry snapshot there first (`reason` names
/// the crash path, `focus_corr` the in-flight request if known), so a
/// post-mortem can see the causal timeline that led into the crash.
fn crash_server(
    state: &ServerState,
    local_addr: SocketAddr,
    reason: &str,
    focus_corr: Option<u64>,
) {
    state.stopping.store(true, Ordering::SeqCst);
    let service = {
        let _order = lockorder::track("server.service");
        state.service.write().expect("service lock").take()
    };
    if let Some(service) = service {
        service.dump_flight(reason, focus_corr);
        drop(service.shutdown());
    }
    state.sever_all();
    let _ = TcpStream::connect(local_addr);
}

/// A running TCP front-end over one [`IdService`].
pub struct TcpServer {
    local_addr: SocketAddr,
    accept: JoinHandle<()>,
    reactor: JoinHandle<()>,
    control: JoinHandle<()>,
    pool: Vec<JoinHandle<()>>,
    report_rx: Receiver<ServiceReport>,
    state: Arc<ServerState>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), boots
    /// the service, and starts accepting connections with default
    /// [`ServerOptions`] (both protocols, a small v2 pool).
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<TcpServer> {
        TcpServer::bind_with(addr, config, ServerOptions::default())
    }

    /// [`bind`](TcpServer::bind) with explicit front-end options.
    pub fn bind_with(
        addr: &str,
        config: ServiceConfig,
        options: ServerOptions,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // The readiness backend resolves here so an explicit `Epoll`
        // request fails the bind (typed) where it is not compiled in.
        let poller = Poller::new(options.backend)?;
        let backend = poller.name();
        let (cmd_tx, cmd_rx) = channel::<ReactorCmd>();
        let reactor_handle = ReactorHandle::new(cmd_tx, poller.waker());
        let space = config.space;
        let service = IdService::start(config);
        let registry = service.registry();
        let trace = service.trace();
        let state = Arc::new(ServerState {
            service: RwLock::new(Some(service)),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            space,
            registry,
            trace,
            metrics: options.metrics,
            reactor: reactor_handle.clone(),
            backend,
        });
        let (report_tx, report_rx) = sync_channel::<ServiceReport>(1);

        // The shared v2 worker pool: tenant-keyed queues, fixed width.
        let workers = options.v2_workers.max(1);
        let mut pool_txs = Vec::with_capacity(workers);
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = sync_channel::<PoolJob>(1024);
            pool_txs.push(tx);
            let state = Arc::clone(&state);
            pool.push(std::thread::spawn(move || {
                pool_worker(state, rx, local_addr)
            }));
        }
        // The v2 control lane (drain / summary / shutdown / halt).
        let (ctrl_tx, ctrl_rx) = sync_channel::<CtrlJob>(64);
        let control = {
            let state = Arc::clone(&state);
            let pool_txs = pool_txs.clone();
            let report_tx = report_tx.clone();
            std::thread::spawn(move || {
                control_worker(state, ctrl_rx, pool_txs, report_tx, local_addr)
            })
        };
        // The reactor: sniffs every new connection, owns all v2 I/O.
        let reactor = {
            let seed = ReactorSeed {
                state: Arc::clone(&state),
                poller,
                cmd_rx,
                handle: reactor_handle.clone(),
                pool_txs,
                ctrl_tx,
                accept_v2: options.accept_v2,
                report_tx: report_tx.clone(),
                local_addr,
            };
            // Built on this thread so its metric families are registered
            // before `bind_with` returns — a scraper that races the
            // reactor's first pass still sees `uuidp_net_wakeups_total`.
            let reactor = Reactor::new(seed);
            std::thread::spawn(move || reactor.run())
        };
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(stream) => stream,
                    Err(_) => {
                        // EMFILE/ENFILE or a transient accept failure:
                        // retrying instantly pegs a core without
                        // freeing the fds the retry needs.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        continue;
                    }
                };
                // One reply per command either way: Nagle + delayed ACK
                // would add ~40ms to every round trip on loopback.
                let _ = stream.set_nodelay(true);
                // The reactor reads everything nonblocking until a
                // connection proves to be v1 and is handed back to a
                // blocking handler thread.
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                if !reactor_handle.adopt(stream) {
                    break; // reactor is gone; the server is coming down
                }
            }
        });
        Ok(TcpServer {
            local_addr,
            accept,
            reactor,
            control,
            pool,
            report_rx,
            state,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently registered (live) connections — departed clients are
    /// deregistered by their handler (v1) or the demux (v2), so this
    /// does not grow with connection churn.
    pub fn live_connections(&self) -> usize {
        self.state.conns.lock().expect("conns lock").len()
    }

    /// The service's metric registry — in-process drivers (stress,
    /// fleet, tests) read counters here without a wire scrape.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.state.registry)
    }

    /// The service's trace recorder — in-process drivers stamp
    /// client-side lifecycle stages (client-send, client-recv) into the
    /// same ring the server stamps, so assembled timelines span both
    /// halves of the exchange.
    pub fn trace(&self) -> Arc<TraceRecorder> {
        Arc::clone(&self.state.trace)
    }

    /// The readiness backend the reactor resolved to: `"epoll"` or
    /// `"poll"` (tests and benches gate wakeup assertions on this).
    pub fn net_backend(&self) -> &'static str {
        self.state.backend
    }

    fn join_threads(self) -> Receiver<ServiceReport> {
        let _ = self.accept.join();
        let _ = self.reactor.join();
        let _ = self.control.join();
        for handle in self.pool {
            let _ = handle.join();
        }
        self.report_rx
    }

    /// Blocks until a client issues `shutdown` (over either protocol),
    /// then returns the server-side [`ServiceReport`] (`None` only if
    /// the accept loop died without a shutdown, which a well-formed run
    /// never does).
    pub fn join(self) -> Option<ServiceReport> {
        self.join_threads().try_recv().ok()
    }

    /// Server-side stop, no client involved: severs every live
    /// connection mid-command, stops the accept loop, and tears the
    /// service down. Clients see an abrupt EOF, exactly as if the
    /// process died.
    ///
    /// This is the crash lever the fleet chaos harness pulls: callers
    /// that *discard* the returned report (and never checkpointed)
    /// keep only what the durability layer's write-ahead records
    /// captured — the fiction of a power cut, at the persistence
    /// boundary where it matters. Returns `None` if a client shutdown
    /// raced this call and won.
    pub fn halt(self) -> Option<ServiceReport> {
        self.state.stopping.store(true, Ordering::SeqCst);
        let service = {
            let _order = lockorder::track("server.service");
            self.state.service.write().expect("service lock").take()
        };
        let report = service.map(|service| {
            // A halt is a staged crash: leave the post-mortem (last
            // trace events + registry snapshot) in the state dir, the
            // same evidence a real power cut would be diagnosed from.
            service.dump_flight("halt", None);
            service.shutdown()
        });
        self.state.sever_all();
        // Unblock the accept loop, then wait out every server thread.
        let _ = TcpStream::connect(self.local_addr);
        let report_rx = self.join_threads();
        report.or_else(|| report_rx.try_recv().ok())
    }
}

// ---------------------------------------------------------------------
// The v2 serving machinery: demux + pool + control.
// ---------------------------------------------------------------------

/// The shared half of one v2 connection: its registry id and a handle
/// to the reactor that owns the socket. A send *queues* the encoded
/// frame on the connection's reply queue — it never touches the socket
/// and never blocks, so a slow peer backpressures only its own queue
/// (severed at the reactor's cap), not the pool worker that served it.
/// The old implementation held a per-connection writer lock and
/// spin/slept through `WouldBlock`, stalling a whole worker behind one
/// unread socket.
pub(crate) struct V2Conn {
    conn_id: u64,
    reactor: ReactorHandle,
}

impl V2Conn {
    pub(crate) fn new(conn_id: u64, reactor: ReactorHandle) -> V2Conn {
        V2Conn { conn_id, reactor }
    }

    /// Queues one whole reply frame (flushed by the reactor on write
    /// readiness). Frames are queued whole, so replies from different
    /// pool workers never interleave mid-frame. Errs only when the
    /// reactor is already gone.
    pub(crate) fn send(&self, corr: u64, body: &FrameBody) -> io::Result<()> {
        self.reactor
            .reply(self.conn_id, frame::encode_frame(corr, body), None)
    }

    /// Like [`send`](V2Conn::send), but blocks (bounded by `timeout`)
    /// until the frame has fully reached the socket. The shutdown path
    /// uses this for its final summary: sockets are severed right
    /// after, and an unflushed summary would turn the graceful protocol
    /// exit into a broken pipe.
    pub(crate) fn send_flushed(
        &self,
        corr: u64,
        body: &FrameBody,
        timeout: Duration,
    ) -> io::Result<()> {
        let (done, rx) = sync_channel::<io::Result<()>>(1);
        self.reactor
            .reply(self.conn_id, frame::encode_frame(corr, body), Some(done))?;
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "reply flush timed out",
            )),
        }
    }

    pub(crate) fn send_error(&self, corr: u64, message: impl Into<String>) {
        let _ = self.send(
            corr,
            &FrameBody::Error {
                message: message.into(),
            },
        );
    }
}

/// Work routed to the tenant-keyed pool.
pub(crate) enum PoolJob {
    Lease {
        conn: Arc<V2Conn>,
        corr: u64,
        tenant: u64,
        count: u128,
    },
    Reset {
        conn: Arc<V2Conn>,
        corr: u64,
        tenant: u64,
    },
    /// Ack once every prior job on this worker is fully served.
    Barrier { done: SyncSender<()> },
}

/// Work routed to the control lane.
pub(crate) enum CtrlJob {
    Drain { conn: Arc<V2Conn>, corr: u64 },
    Summary { conn: Arc<V2Conn>, corr: u64 },
    Shutdown { conn: Arc<V2Conn>, corr: u64 },
    Halt,
}

/// Arcs that fit one v2 lease-reply frame: the fixed fields plus 32
/// bytes per arc must stay under [`frame::MAX_PAYLOAD`], or the encoder
/// would emit a frame the peer must reject as corrupt.
const MAX_REPLY_ARCS: usize = (frame::MAX_PAYLOAD as usize - 64) / 32;

fn lease_resp(reply: &LeaseReply) -> FrameBody {
    // A grant fragmented into more arcs than one frame can carry (only
    // the Random algorithm's point-per-ID leases get near this) must
    // become a *typed* error the client can read — never an over-cap
    // frame that kills the connection as a framing violation.
    if reply.arcs.len() > MAX_REPLY_ARCS {
        return FrameBody::Error {
            message: format!(
                "lease fragmented into {} arcs, more than one v2 frame carries \
                 (max {MAX_REPLY_ARCS}); request fewer IDs per lease",
                reply.arcs.len()
            ),
        };
    }
    FrameBody::LeaseResp {
        tenant: reply.tenant,
        granted: reply.granted,
        arcs: reply
            .arcs
            .iter()
            .map(|a| (a.start.value(), a.len))
            .collect(),
        error: reply.error.as_ref().map(|e| e.to_string()),
    }
}

/// One pool worker: executes tenant-keyed jobs against the shared
/// service, writing each reply frame straight to its connection.
fn pool_worker(state: Arc<ServerState>, rx: Receiver<PoolJob>, local_addr: SocketAddr) {
    while let Ok(job) = rx.recv() {
        match job {
            PoolJob::Lease {
                conn,
                corr,
                tenant,
                count,
            } => {
                let reply = {
                    let _order = lockorder::track("server.service");
                    state
                        .service
                        .read()
                        .expect("service lock")
                        .as_ref()
                        .map(|service| service.lease_traced(tenant, count, corr))
                };
                match reply {
                    // The halt_after_persists hook fired: die between
                    // the write-ahead persist and the reply — and leave
                    // the flight dump focused on the lease that was cut
                    // off mid-exchange.
                    Some(reply) if reply.halted => {
                        crash_server(&state, local_addr, "halt-after-persists", Some(corr))
                    }
                    Some(reply) => {
                        let _ = conn.send(corr, &lease_resp(&reply));
                        state.trace.record(
                            corr,
                            tenant,
                            Stage::ReplySent,
                            "lease-resp",
                            clock::monotonic_ns(),
                        );
                    }
                    None => conn.send_error(corr, "shutting down"),
                }
            }
            PoolJob::Reset { conn, corr, tenant } => {
                let served = {
                    let _order = lockorder::track("server.service");
                    let service = state.service.read().expect("service lock");
                    service.as_ref().map(|s| s.reset_tenant(tenant)).is_some()
                };
                if served {
                    let _ = conn.send(corr, &FrameBody::ResetResp { tenant });
                } else {
                    conn.send_error(corr, "shutting down");
                }
            }
            PoolJob::Barrier { done } => {
                let _ = done.send(());
            }
        }
    }
}

/// Acks from every pool worker once all previously routed jobs are
/// fully served (each worker replies before taking its next job).
fn pool_barrier(pool_txs: &[SyncSender<PoolJob>]) {
    let barriers: Vec<Receiver<()>> = pool_txs
        .iter()
        .map(|tx| {
            let (done, rx) = sync_channel(1);
            // A closed queue means the pool is already gone (server
            // coming down); nothing left to wait for on that worker.
            let _ = tx.send(PoolJob::Barrier { done });
            rx
        })
        .collect();
    for rx in barriers {
        let _ = rx.recv();
    }
}

/// The control lane: pool-barriered drain/summary, graceful shutdown,
/// and the remote crash lever. One thread, so these serializing
/// operations cannot deadlock each other on the pool barrier.
fn control_worker(
    state: Arc<ServerState>,
    rx: Receiver<CtrlJob>,
    pool_txs: Vec<SyncSender<PoolJob>>,
    report_tx: SyncSender<ServiceReport>,
    local_addr: SocketAddr,
) {
    while let Ok(job) = rx.recv() {
        match job {
            CtrlJob::Drain { conn, corr } => {
                // "Everything submitted before me": queued pool jobs
                // first, then the service's own shard barrier.
                pool_barrier(&pool_txs);
                let drained = {
                    let _order = lockorder::track("server.service");
                    let service = state.service.read().expect("service lock");
                    service.as_ref().map(|s| s.drain()).is_some()
                };
                if drained {
                    let _ = conn.send(corr, &FrameBody::DrainResp);
                } else {
                    conn.send_error(corr, "shutting down");
                }
            }
            CtrlJob::Summary { conn, corr } => {
                pool_barrier(&pool_txs);
                let report = {
                    let _order = lockorder::track("server.service");
                    let service = state.service.read().expect("service lock");
                    service.as_ref().map(|s| s.summary())
                };
                match report {
                    Some(report) => {
                        let _ = conn.send(corr, &FrameBody::SummaryResp(wire_summary(&report)));
                    }
                    None => conn.send_error(corr, "shutting down"),
                }
            }
            CtrlJob::Shutdown { conn, corr } => {
                state.stopping.store(true, Ordering::SeqCst);
                // Serve what the pool already holds, then take the
                // service (the write lock waits out in-flight leases).
                pool_barrier(&pool_txs);
                let service = {
                    let _order = lockorder::track("server.service");
                    state.service.write().expect("service lock").take()
                };
                match service {
                    Some(service) => {
                        let report = service.shutdown();
                        // Wait for the summary to actually reach the
                        // socket: sever_all is about to cut every
                        // connection, and the requester must read its
                        // final summary before the FIN.
                        let _ = conn.send_flushed(
                            corr,
                            &FrameBody::SummaryResp(wire_summary(&report)),
                            Duration::from_secs(5),
                        );
                        let _ = report_tx.send(report);
                        // Unblock sibling connections and the accept loop.
                        state.sever_all();
                        let _ = TcpStream::connect(local_addr);
                        return;
                    }
                    None => conn.send_error(corr, "shutting down"),
                }
            }
            CtrlJob::Halt => {
                crash_server(&state, local_addr, "halt", None);
                return;
            }
        }
    }
}

/// What [`dispatch_frame`] decided about the connection that sent the
/// frame.
pub(crate) enum Disposition {
    /// Keep serving the connection.
    Keep,
    /// Sever it — after best-effort delivery of `farewell` (correlation
    /// id + message, encoded into a fatal error frame by the reactor),
    /// so protocol violations still get their diagnostic before EOF.
    /// Queued replies are forfeit.
    Sever {
        /// The farewell error to write, if any.
        farewell: Option<(u64, String)>,
    },
}

fn sever_with(corr: u64, message: String) -> Disposition {
    Disposition::Sever {
        farewell: Some((corr, message)),
    }
}

/// Routes one decoded frame (called from the reactor's pump).
pub(crate) fn dispatch_frame(
    shared: &Arc<V2Conn>,
    hello_done: &mut bool,
    f: frame::Frame,
    state: &ServerState,
    pool_txs: &[SyncSender<PoolJob>],
    ctrl_tx: &SyncSender<CtrlJob>,
) -> Disposition {
    if !*hello_done {
        // Version negotiation: the first frame must be a hello naming a
        // version and universe this server serves.
        return match f.body {
            FrameBody::Hello { version, space } => {
                if version != frame::VERSION {
                    sever_with(
                        0,
                        format!(
                            "unsupported protocol version {version} (this server speaks {})",
                            frame::VERSION
                        ),
                    )
                } else if space != state.space.size() {
                    sever_with(
                        0,
                        format!(
                            "universe mismatch: server is {}, client asked for {space}",
                            state.space.size()
                        ),
                    )
                } else {
                    *hello_done = true;
                    match shared.send(
                        0,
                        &FrameBody::HelloOk {
                            version: frame::VERSION,
                            space: state.space.size(),
                        },
                    ) {
                        Ok(()) => Disposition::Keep,
                        Err(_) => Disposition::Sever { farewell: None },
                    }
                }
            }
            other => sever_with(0, format!("expected hello, got {} frame", other.name())),
        };
    }
    let corr = f.corr;
    match f.body {
        FrameBody::LeaseReq { tenant, count } => {
            state.trace.record(
                corr,
                tenant,
                Stage::ServerDemux,
                "lease-req",
                clock::monotonic_ns(),
            );
            let worker = (tenant % pool_txs.len() as u64) as usize;
            let _ = pool_txs[worker].send(PoolJob::Lease {
                conn: Arc::clone(shared),
                corr,
                tenant,
                count,
            });
            Disposition::Keep
        }
        FrameBody::MetricsReq => {
            // Rendered inline on the reactor thread: a scrape reads the
            // registry lock-free and must never queue behind leases.
            if state.metrics {
                let text = state.registry.snapshot().render_prometheus();
                let _ = shared.send(corr, &FrameBody::MetricsResp { text });
            } else {
                shared.send_error(corr, "metrics are disabled on this listener");
            }
            Disposition::Keep
        }
        FrameBody::TimelineReq { corr: wanted } => {
            // Same inline discipline as a metrics scrape: assembling a
            // span reads the trace ring, never the service, so it must
            // not queue behind leases. An evicted/unsampled span is an
            // empty timeline, not an error — the tail sampler treats
            // it as "story lost to the ring".
            if state.metrics {
                let text = state.trace.timeline(wanted);
                let _ = shared.send(corr, &FrameBody::TimelineResp { text });
            } else {
                shared.send_error(corr, "metrics are disabled on this listener");
            }
            Disposition::Keep
        }
        FrameBody::ResetReq { tenant } => {
            let worker = (tenant % pool_txs.len() as u64) as usize;
            let _ = pool_txs[worker].send(PoolJob::Reset {
                conn: Arc::clone(shared),
                corr,
                tenant,
            });
            Disposition::Keep
        }
        FrameBody::DrainReq => {
            let _ = ctrl_tx.send(CtrlJob::Drain {
                conn: Arc::clone(shared),
                corr,
            });
            Disposition::Keep
        }
        FrameBody::SummaryReq => {
            let _ = ctrl_tx.send(CtrlJob::Summary {
                conn: Arc::clone(shared),
                corr,
            });
            Disposition::Keep
        }
        FrameBody::ShutdownReq => {
            let _ = ctrl_tx.send(CtrlJob::Shutdown {
                conn: Arc::clone(shared),
                corr,
            });
            Disposition::Keep
        }
        FrameBody::HaltReq => {
            let _ = ctrl_tx.send(CtrlJob::Halt);
            Disposition::Keep
        }
        other => sever_with(
            0,
            format!("unexpected {} frame from a client", other.name()),
        ),
    }
}

// ---------------------------------------------------------------------
// The v1 line-protocol path (handed off by the demux after the sniff).
// ---------------------------------------------------------------------

/// One v1 connection: read command lines, reply per line, until quit,
/// shutdown, disconnect, or server stop. `prefix` is whatever the
/// demux read before deciding this was a text client.
pub(crate) fn handle_v1_connection(
    stream: TcpStream,
    conn_id: u64,
    prefix: Vec<u8>,
    state: Arc<ServerState>,
    report_tx: SyncSender<ServiceReport>,
    local_addr: SocketAddr,
) {
    let Ok(mut out) = stream.try_clone() else {
        state.deregister(conn_id);
        return;
    };
    let reader = BufReader::new(io::Cursor::new(prefix).chain(stream));
    run_connection(reader, &mut out, &state, &report_tx, local_addr);
    // Deregister so long-lived servers don't accumulate one dup'd fd
    // per departed client. (After a shutdown drain this is a no-op.)
    state.deregister(conn_id);
}

/// The per-connection v1 command loop (split out so the caller can pair
/// registration with guaranteed deregistration).
fn run_connection<R: BufRead>(
    reader: R,
    out: &mut TcpStream,
    state: &ServerState,
    report_tx: &SyncSender<ServiceReport>,
    local_addr: SocketAddr,
) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let reply = match Command::parse(&line) {
            Err(msg) => format!("error: {msg}"),
            Ok(None) => continue,
            Ok(Some(Command::Quit)) => break,
            Ok(Some(Command::Lease { tenant, count })) => {
                let reply = {
                    let _order = lockorder::track("server.service");
                    state
                        .service
                        .read()
                        .expect("service lock")
                        .as_ref()
                        .map(|service| service.lease(tenant, count))
                };
                match reply {
                    // The halt_after_persists hook: die instead of
                    // replying (see the module docs).
                    Some(reply) if reply.halted => {
                        crash_server(state, local_addr, "halt-after-persists", None);
                        return;
                    }
                    Some(reply) => render_lease(&reply),
                    None => "error: shutting down".into(),
                }
            }
            Ok(Some(Command::Reset { tenant })) => {
                let _order = lockorder::track("server.service");
                match state.service.read().expect("service lock").as_ref() {
                    Some(service) => {
                        service.reset_tenant(tenant);
                        format!("reset tenant={tenant}")
                    }
                    None => "error: shutting down".into(),
                }
            }
            Ok(Some(Command::Drain)) => {
                let _order = lockorder::track("server.service");
                match state.service.read().expect("service lock").as_ref() {
                    Some(service) => {
                        service.drain();
                        "drained".into()
                    }
                    None => "error: shutting down".into(),
                }
            }
            Ok(Some(Command::Metrics)) => {
                if state.metrics {
                    // The one multi-line reply in the grammar: the
                    // exposition, then a `# EOF` sentinel line so a
                    // line-at-a-time client knows where it ends.
                    let text = state.registry.snapshot().render_prometheus();
                    format!("{text}# EOF")
                } else {
                    "error: metrics are disabled on this listener".into()
                }
            }
            Ok(Some(Command::Shutdown)) => {
                state.stopping.store(true, Ordering::SeqCst);
                // The write lock waits out every in-flight request.
                let service = {
                    let _order = lockorder::track("server.service");
                    state.service.write().expect("service lock").take()
                };
                match service {
                    Some(service) => {
                        let report = service.shutdown();
                        let _ = writeln!(out, "{}", render_summary(&report));
                        let _ = report_tx.send(report);
                        // Unblock sibling connections and the accept loop.
                        state.sever_all();
                        let _ = TcpStream::connect(local_addr);
                        return;
                    }
                    None => "error: shutting down".into(),
                }
            }
        };
        if writeln!(out, "{reply}").is_err() {
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Clients.
// ---------------------------------------------------------------------

/// A blocking v1 line-protocol client for a [`TcpServer`] (or any
/// process speaking the `uuidp serve` grammar).
pub struct RemoteClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    space: IdSpace,
}

fn proto_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl RemoteClient {
    /// Connects to `addr`. `space` must match the server's universe —
    /// the wire carries arc start/len pairs, and the client rebuilds
    /// typed [`Arc`](uuidp_core::interval::Arc)s over this space.
    pub fn connect<A: ToSocketAddrs>(addr: A, space: IdSpace) -> io::Result<RemoteClient> {
        RemoteClient::connect_with(addr, space, None)
    }

    /// Like [`RemoteClient::connect`], but every reply read is bounded
    /// by `read_timeout` (`None` = block forever). A stalled or
    /// partitioned server then surfaces as a timed-out [`io::Error`]
    /// instead of hanging the caller; because v1 is strictly
    /// request/reply, a timed-out read leaves the request's fate
    /// unknown (lease-in-doubt) and the connection must be replaced.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        space: IdSpace,
        read_timeout: Option<Duration>,
    ) -> io::Result<RemoteClient> {
        let writer = TcpStream::connect(addr)?;
        // Command lines are tiny and latency-bound; never batch them
        // behind Nagle (pairs with the server-side set_nodelay).
        writer.set_nodelay(true)?;
        writer.set_read_timeout(read_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(RemoteClient {
            reader,
            writer,
            space,
        })
    }

    /// Sends one command line and reads the one reply line.
    fn roundtrip(&mut self, command: &str) -> io::Result<String> {
        writeln!(self.writer, "{command}")?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            // A bounded read that expired: the command was sent, its
            // reply never came — classify as lease-in-doubt so a chaos
            // driver knows not to blindly replay it.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(uuidp_client::broken(
                    "v1 reply read timed out",
                    uuidp_client::ErrorClass::LeaseInDoubt,
                ));
            }
            Err(e) => return Err(e),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(_) => {}
        }
        Ok(line.trim_end().to_string())
    }

    /// Leases `count` IDs for `tenant`.
    pub fn lease(&mut self, tenant: u64, count: u128) -> io::Result<WireLease> {
        let line = self.roundtrip(&format!("lease {tenant} {count}"))?;
        parse_lease_line(&line, self.space).map_err(proto_err)
    }

    /// Recycles `tenant`'s generator into a fresh epoch.
    pub fn reset(&mut self, tenant: u64) -> io::Result<()> {
        let line = self.roundtrip(&format!("reset {tenant}"))?;
        if line == format!("reset tenant={tenant}") {
            Ok(())
        } else {
            Err(proto_err(format!("unexpected reset reply: `{line}`")))
        }
    }

    /// Blocks until the server has processed every prior request.
    pub fn drain(&mut self) -> io::Result<()> {
        let line = self.roundtrip("drain")?;
        if line == "drained" {
            Ok(())
        } else {
            Err(proto_err(format!("unexpected drain reply: `{line}`")))
        }
    }

    /// Scrapes the server's metric registry: the v1 `metrics` command,
    /// whose reply is Prometheus text exposition terminated by a
    /// `# EOF` sentinel line (stripped from the returned text).
    pub fn metrics(&mut self) -> io::Result<String> {
        writeln!(self.writer, "metrics")?;
        let mut text = String::new();
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Err(e) => return Err(e),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-scrape",
                    ));
                }
                Ok(_) => {}
            }
            let trimmed = line.trim_end();
            if trimmed == "# EOF" {
                return Ok(text);
            }
            if text.is_empty() && trimmed.starts_with("error:") {
                return Err(proto_err(trimmed.to_string()));
            }
            text.push_str(trimmed);
            text.push('\n');
        }
    }

    /// Closes this connection; the server keeps running.
    pub fn quit(mut self) -> io::Result<()> {
        writeln!(self.writer, "quit")?;
        Ok(())
    }

    /// Stops the whole server and returns its parsed shutdown summary.
    pub fn shutdown(mut self) -> io::Result<WireSummary> {
        let line = self.roundtrip("shutdown")?;
        parse_summary(&line).map_err(proto_err)
    }
}

/// One client, either protocol: the v1 [`RemoteClient`] and the v2
/// multiplexing [`Client`] behind a protocol-agnostic surface, so
/// consumers select a wire protocol with a [`ProtoVersion`] flag. Both
/// arms return the same typed [`WireLease`] / [`WireSummary`].
pub enum DialedClient {
    /// The v1 text line protocol.
    V1(RemoteClient),
    /// The v2 binary framed protocol (multiplexing-capable).
    V2(Client),
}

impl DialedClient {
    /// Connects to `addr` speaking `proto`.
    pub fn connect(addr: SocketAddr, space: IdSpace, proto: ProtoVersion) -> io::Result<Self> {
        Ok(match proto {
            ProtoVersion::V1 => DialedClient::V1(RemoteClient::connect(addr, space)?),
            ProtoVersion::V2 => DialedClient::V2(Client::connect(addr, space)?),
        })
    }

    /// Connects to `addr` speaking `proto` with every blocking phase
    /// bounded by `timeout`: the dial, the v2 handshake, and each
    /// request's reply read (v1 maps the same bound onto its socket
    /// read timeout). `None` keeps the unbounded [`DialedClient::connect`]
    /// behavior. This is the dial used when a chaos proxy sits between
    /// the client and the server — nothing may hang forever.
    pub fn connect_with(
        addr: SocketAddr,
        space: IdSpace,
        proto: ProtoVersion,
        timeout: Option<Duration>,
    ) -> io::Result<Self> {
        Ok(match proto {
            ProtoVersion::V1 => DialedClient::V1(RemoteClient::connect_with(addr, space, timeout)?),
            ProtoVersion::V2 => {
                let options = ClientOptions {
                    connect_timeout: timeout,
                    handshake_timeout: timeout.or(ClientOptions::default().handshake_timeout),
                    request_timeout: timeout,
                };
                DialedClient::V2(Client::connect_with(addr, space, options)?)
            }
        })
    }

    /// Which protocol this client speaks.
    pub fn protocol(&self) -> ProtoVersion {
        match self {
            DialedClient::V1(_) => ProtoVersion::V1,
            DialedClient::V2(_) => ProtoVersion::V2,
        }
    }

    /// Leases `count` IDs for `tenant`.
    pub fn lease(&mut self, tenant: u64, count: u128) -> io::Result<WireLease> {
        match self {
            DialedClient::V1(c) => c.lease(tenant, count),
            DialedClient::V2(c) => c.lease(tenant, count),
        }
    }

    /// [`DialedClient::lease`], also surfacing the correlation id the
    /// lease traveled under, for tail-latency samplers. The v1 text
    /// protocol has no correlation ids, so v1 leases report corr 0 —
    /// sampled, but with no fetchable story.
    pub fn lease_with_corr(&mut self, tenant: u64, count: u128) -> io::Result<(WireLease, u64)> {
        match self {
            DialedClient::V1(c) => c.lease(tenant, count).map(|l| (l, 0)),
            DialedClient::V2(c) => c.lease_with_corr(tenant, count),
        }
    }

    /// Recycles `tenant`'s generator into a fresh epoch.
    pub fn reset(&mut self, tenant: u64) -> io::Result<()> {
        match self {
            DialedClient::V1(c) => c.reset(tenant),
            DialedClient::V2(c) => c.reset(tenant),
        }
    }

    /// Blocks until the server has processed every prior request.
    pub fn drain(&mut self) -> io::Result<()> {
        match self {
            DialedClient::V1(c) => c.drain(),
            DialedClient::V2(c) => c.drain(),
        }
    }

    /// Scrapes the server's metric registry (Prometheus text
    /// exposition) over whichever protocol this client speaks.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self {
            DialedClient::V1(c) => c.metrics(),
            DialedClient::V2(c) => c.metrics(),
        }
    }

    /// Fetches the server's retained trace span for one correlation id
    /// (protocol v2 only — v1 has no correlation ids to look up).
    pub fn timeline(&mut self, corr: u64) -> io::Result<String> {
        match self {
            DialedClient::V1(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "timeline fetch requires protocol v2",
            )),
            DialedClient::V2(c) => c.timeline(corr),
        }
    }

    /// Closes this connection; the server keeps running. (For a v2
    /// clone this drops one handle; the connection closes with the
    /// last.)
    pub fn quit(self) -> io::Result<()> {
        match self {
            DialedClient::V1(c) => c.quit(),
            DialedClient::V2(_) => Ok(()),
        }
    }

    /// Stops the whole server and returns its final summary.
    pub fn shutdown(self) -> io::Result<WireSummary> {
        match self {
            DialedClient::V1(c) => c.shutdown(),
            DialedClient::V2(c) => c.shutdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::AlgorithmKind;

    fn server(bits: u32) -> (TcpServer, IdSpace) {
        let space = IdSpace::with_bits(bits).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        (
            TcpServer::bind("127.0.0.1:0", config).expect("bind loopback"),
            space,
        )
    }

    #[test]
    fn lease_reset_drain_shutdown_over_loopback() {
        let (server, space) = server(40);
        let mut client = RemoteClient::connect(server.local_addr(), space).unwrap();
        let lease = client.lease(3, 100).unwrap();
        assert_eq!(lease.tenant, 3);
        assert_eq!(lease.granted, 100);
        assert_eq!(lease.arcs.iter().map(|a| a.len).sum::<u128>(), 100);
        assert!(lease.error.is_none());
        client.reset(3).unwrap();
        let again = client.lease(3, 50).unwrap();
        assert_eq!(again.granted, 50);
        client.drain().unwrap();
        let summary = client.shutdown().unwrap();
        assert_eq!(summary.issued_ids, 150);
        assert_eq!(summary.leases, 2);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.audit_threads, 1);
        // The server-side report agrees with what crossed the wire.
        let report = server.join().expect("server report");
        assert_eq!(report.issued_ids, 150);
        assert_eq!(report.leases, 2);
        assert_eq!(
            report.audit.counts.duplicate_ids, summary.duplicate_ids,
            "wire summary diverged from the server report"
        );
    }

    #[test]
    fn v2_client_speaks_the_whole_surface() {
        let (server, space) = server(40);
        let client = Client::connect(server.local_addr(), space).unwrap();
        let lease = client.lease(3, 100).unwrap();
        assert_eq!(lease.tenant, 3);
        assert_eq!(lease.granted, 100);
        assert_eq!(lease.arcs.iter().map(|a| a.len).sum::<u128>(), 100);
        client.reset(3).unwrap();
        assert_eq!(client.lease(3, 50).unwrap().granted, 50);
        client.drain().unwrap();
        // The live summary sees everything served so far…
        let live = client.summary().unwrap();
        assert_eq!(live.issued_ids, 150);
        assert_eq!(live.leases, 2);
        assert_eq!(
            live.recorded_ids, 150,
            "drained service must have a caught-up audit"
        );
        // …and the shutdown summary is the same story, finalized.
        let summary = client.shutdown().unwrap();
        assert_eq!(summary.issued_ids, 150);
        assert_eq!(summary.errors, 0);
        let report = server.join().expect("server report");
        assert_eq!(report.issued_ids, 150);
    }

    #[test]
    fn v2_multiplexes_interleaved_tenants_over_one_connection() {
        let (server, space) = server(44);
        let addr = server.local_addr();
        let client = Client::connect(addr, space).unwrap();
        assert_eq!(server.live_connections(), 1);
        let workers: Vec<_> = (0..6u64)
            .map(|tenant| {
                let client = client.clone();
                std::thread::spawn(move || {
                    let mut total = 0u128;
                    for round in 0..20u128 {
                        total += client.lease(tenant, 16 + round).unwrap().granted;
                    }
                    total
                })
            })
            .collect();
        let issued: u128 = workers.into_iter().map(|h| h.join().unwrap()).sum();
        // Still exactly one connection carried all six tenants.
        assert_eq!(server.live_connections(), 1, "multiplexing leaked conns");
        client.drain().unwrap();
        let summary = client.shutdown().unwrap();
        assert_eq!(summary.issued_ids, issued);
        assert_eq!(summary.leases, 120);
        assert_eq!(summary.duplicate_ids, 0, "independent tenants collided");
        assert!(server.join().is_some());
    }

    #[test]
    fn mixed_v1_and_v2_clients_share_one_server() {
        // The negotiation acceptance scenario: a v1 text client and a
        // v2 binary client served by the same TcpServer, their traffic
        // audited into one consistent total.
        let (server, space) = server(44);
        let addr = server.local_addr();
        let mut v1 = RemoteClient::connect(addr, space).unwrap();
        let v2 = Client::connect(addr, space).unwrap();
        let mut issued = 0u128;
        for round in 0..10u128 {
            issued += v1.lease(0, 10 + round).unwrap().granted;
            issued += v2.lease(1, 20 + round).unwrap().granted;
        }
        // Both protocols see the same live totals.
        v2.drain().unwrap();
        let live = v2.summary().unwrap();
        assert_eq!(live.issued_ids, issued);
        assert_eq!(live.leases, 20);
        assert_eq!(live.recorded_ids, issued);
        // A v1 shutdown finalizes for everyone.
        let summary = v1.shutdown().unwrap();
        assert_eq!(summary.issued_ids, issued);
        assert_eq!(summary.duplicate_ids, 0);
        let report = server.join().expect("server report");
        assert_eq!(report.issued_ids, issued);
    }

    #[test]
    fn v1_read_timeout_turns_a_stalled_server_into_a_typed_error() {
        // A listener that accepts and then never says anything — the
        // pathological peer a partition window produces.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let space = IdSpace::with_bits(40).unwrap();
        let mut client =
            RemoteClient::connect_with(addr, space, Some(Duration::from_millis(50))).unwrap();
        let err = client.lease(0, 10).unwrap_err();
        let broken = uuidp_client::broken_connection(&err).expect("typed broken-connection error");
        assert_eq!(broken.class, uuidp_client::ErrorClass::LeaseInDoubt);
        drop(hold.join().unwrap());
    }

    #[test]
    fn v2_handshake_rejects_universe_mismatch_with_a_typed_error() {
        let (server, _space) = server(40);
        let wrong = IdSpace::with_bits(20).unwrap();
        let err = Client::connect(server.local_addr(), wrong).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("universe mismatch"), "got: {err}");
        assert!(server.halt().is_some());
    }

    #[test]
    fn v2_can_be_disabled_leaving_a_legacy_listener() {
        let space = IdSpace::with_bits(40).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let options = ServerOptions {
            accept_v2: false,
            v2_workers: 2,
            ..ServerOptions::default()
        };
        let server = TcpServer::bind_with("127.0.0.1:0", config, options).unwrap();
        let err = Client::connect(server.local_addr(), space).unwrap_err();
        assert!(err.to_string().contains("disabled"), "got: {err}");
        // v1 still works fine.
        let mut v1 = RemoteClient::connect(server.local_addr(), space).unwrap();
        assert_eq!(v1.lease(0, 7).unwrap().granted, 7);
        v1.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn concurrent_connections_share_the_service() {
        let (server, space) = server(44);
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u64)
            .map(|tenant| {
                std::thread::spawn(move || {
                    let mut client = RemoteClient::connect(addr, space).unwrap();
                    let mut total = 0u128;
                    for round in 0..10u128 {
                        total += client.lease(tenant, 32 + round).unwrap().granted;
                    }
                    client.quit().unwrap();
                    total
                })
            })
            .collect();
        let issued: u128 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut closer = RemoteClient::connect(addr, space).unwrap();
        closer.drain().unwrap();
        let summary = closer.shutdown().unwrap();
        assert_eq!(summary.issued_ids, issued);
        assert_eq!(summary.leases, 40);
        assert_eq!(summary.duplicate_ids, 0, "independent tenants collided");
        assert!(server.join().is_some());
    }

    #[test]
    fn malformed_lines_get_error_replies_and_keep_the_connection() {
        let (server, space) = server(32);
        let mut client = RemoteClient::connect(server.local_addr(), space).unwrap();
        let reply = client.roundtrip("utter gibberish here").unwrap();
        assert!(reply.starts_with("error:"), "got `{reply}`");
        let reply = client.roundtrip("reset nope").unwrap();
        assert!(reply.starts_with("error:"), "got `{reply}`");
        // Still serviceable afterwards.
        assert_eq!(client.lease(0, 5).unwrap().granted, 5);
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn corrupt_v2_frames_sever_the_connection_not_the_server() {
        let (server, space) = server(32);
        let addr = server.local_addr();
        // A raw socket that leads with the v2 magic then turns to soup.
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut garbage = frame::MAGIC.to_vec();
        garbage.extend_from_slice(&[0xFF; 64]);
        raw.write_all(&garbage).unwrap();
        let mut reply = Vec::new();
        let _ = raw.read_to_end(&mut reply); // server severs after the error frame
                                             // The server is still healthy for well-formed clients.
        let client = Client::connect(addr, space).unwrap();
        assert_eq!(client.lease(0, 5).unwrap().granted, 5);
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn departed_connections_are_deregistered() {
        // Churning clients must not accumulate registered fds: after
        // every client quits, the live-connection registry drains back
        // to zero (v1 handlers and the v2 demux both deregister).
        let (server, space) = server(32);
        let addr = server.local_addr();
        for tenant in 0..5u64 {
            let mut client = RemoteClient::connect(addr, space).unwrap();
            assert_eq!(client.lease(tenant, 8).unwrap().granted, 8);
            client.quit().unwrap();
        }
        for tenant in 0..5u64 {
            let client = Client::connect(addr, space).unwrap();
            assert_eq!(client.lease(tenant, 8).unwrap().granted, 8);
            drop(client); // EOF: the demux reaps it
        }
        // Handlers deregister asynchronously after the quit/EOF.
        for _ in 0..200 {
            if server.live_connections() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.live_connections(), 0, "fd registry leaked");
        let closer = RemoteClient::connect(addr, space).unwrap();
        assert_eq!(closer.shutdown().unwrap().issued_ids, 80);
        server.join().unwrap();
    }

    #[test]
    fn halt_stops_the_server_without_a_client() {
        let (server, space) = server(36);
        let addr = server.local_addr();
        let mut client = RemoteClient::connect(addr, space).unwrap();
        client.lease(0, 25).unwrap();
        // The crash lever: connected clients see EOF, not a summary.
        let report = server.halt().expect("halt yields the report");
        assert_eq!(report.issued_ids, 25);
        let err = client.lease(0, 1).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ),
            "halted server should sever the client, got {err:?}"
        );
        // The port is free again: a new server can bind-and-halt cleanly.
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let again = TcpServer::bind(&addr.to_string(), config).expect("rebind after halt");
        assert!(again.halt().is_some());
    }

    #[test]
    fn remote_halt_is_the_crash_lever_over_the_wire() {
        let (server, space) = server(36);
        let addr = server.local_addr();
        let client = Client::connect(addr, space).unwrap();
        assert_eq!(client.lease(0, 25).unwrap().granted, 25);
        let watcher = Client::connect(addr, space).unwrap();
        client.halt().unwrap();
        // Siblings are severed, no summary anywhere, and join() has no
        // report to hand back — exactly like an in-process halt.
        let err = watcher.lease(0, 1).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ),
            "remote halt should sever siblings, got {err:?}"
        );
        assert!(server.join().is_none(), "halt must not produce a report");
    }

    #[test]
    fn sibling_connections_are_unblocked_by_shutdown() {
        let (server, space) = server(36);
        let addr = server.local_addr();
        let idle = RemoteClient::connect(addr, space).unwrap();
        let idle_v2 = Client::connect(addr, space).unwrap();
        let mut active = RemoteClient::connect(addr, space).unwrap();
        active.lease(0, 10).unwrap();
        active.shutdown().unwrap();
        // The idle connections were severed server-side; the server
        // joins without waiting on them.
        let report = server.join().expect("report despite idle siblings");
        assert_eq!(report.issued_ids, 10);
        drop(idle);
        drop(idle_v2);
    }

    #[test]
    fn oversized_lease_replies_become_typed_errors_not_corrupt_frames() {
        let space = IdSpace::with_bits(64).unwrap();
        let arc = uuidp_core::interval::Arc::new(space, uuidp_core::id::Id(0), 1);
        let huge = LeaseReply {
            tenant: 1,
            arcs: vec![arc; MAX_REPLY_ARCS + 1],
            granted: (MAX_REPLY_ARCS + 1) as u128,
            error: None,
            halted: false,
        };
        match lease_resp(&huge) {
            FrameBody::Error { message } => assert!(message.contains("arcs"), "{message}"),
            other => panic!("expected an error frame, got {}", other.name()),
        }
        // A heavily fragmented but frame-sized reply still encodes to a
        // decodable frame.
        let ok = LeaseReply {
            tenant: 1,
            arcs: vec![arc; 10_000],
            granted: 10_000,
            error: None,
            halted: false,
        };
        let bytes = frame::encode_frame(3, &lease_resp(&ok));
        assert!(frame::decode_frame(&bytes).unwrap().is_some());
    }

    #[test]
    fn point_fragmented_random_leases_cross_the_v2_wire() {
        // The Random algorithm leases one arc per ID — the worst-case
        // reply shape for the framed protocol.
        let space = IdSpace::with_bits(24).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Random, space);
        let server = TcpServer::bind("127.0.0.1:0", config).unwrap();
        let client = Client::connect(server.local_addr(), space).unwrap();
        let lease = client.lease(0, 3000).unwrap();
        assert_eq!(lease.granted, 3000);
        assert!(
            lease.arcs.len() >= 2900,
            "random leases should fragment per ID, got {} arcs",
            lease.arcs.len()
        );
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn metrics_scrape_works_over_both_protocols() {
        for proto in [ProtoVersion::V1, ProtoVersion::V2] {
            let (server, space) = server(40);
            let mut client = DialedClient::connect(server.local_addr(), space, proto).unwrap();
            assert_eq!(client.lease(2, 64).unwrap().granted, 64, "{proto}");
            let text = client.metrics().unwrap();
            let families = uuidp_obs::parse_exposition(&text);
            assert_eq!(
                families.get("uuidp_ids_issued_total"),
                Some(&64.0),
                "{proto}: {text}"
            );
            assert_eq!(families.get("uuidp_leases_total"), Some(&1.0), "{proto}");
            assert!(
                families.contains_key("uuidp_lease_latency_ns_count"),
                "{proto}: histogram family missing from scrape:\n{text}"
            );
            // Scrapes are monotone: more work, bigger counters.
            assert_eq!(client.lease(2, 36).unwrap().granted, 36, "{proto}");
            let again = uuidp_obs::parse_exposition(&client.metrics().unwrap());
            assert_eq!(again.get("uuidp_ids_issued_total"), Some(&100.0), "{proto}");
            client.shutdown().unwrap();
            server.join().unwrap();
        }
    }

    #[test]
    fn timeline_fetch_assembles_a_lease_span_over_v2() {
        let (server, space) = server(40);
        let mut client =
            DialedClient::connect(server.local_addr(), space, ProtoVersion::V2).unwrap();
        let (lease, corr) = client.lease_with_corr(5, 16).unwrap();
        assert_eq!(lease.granted, 16);
        assert_ne!(corr, 0, "v2 leases travel under a real corr id");
        let span = client.timeline(corr).unwrap();
        assert!(span.contains(&format!("span corr={corr}")), "{span}");
        assert!(span.contains("server-demux"), "{span}");
        assert!(span.contains("worker-emit"), "{span}");
        assert!(span.contains("reply-sent"), "{span}");
        // An id nothing ever traced comes back as an empty story.
        assert_eq!(client.timeline(u64::MAX).unwrap(), "");
        // v1 has no corr ids: the fetch is a typed refusal, and the
        // lease path still reports corr 0 rather than failing.
        let mut v1 = DialedClient::connect(server.local_addr(), space, ProtoVersion::V1).unwrap();
        assert_eq!(v1.lease_with_corr(5, 4).unwrap().1, 0);
        let err = v1.timeline(1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
        v1.quit().unwrap();
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn disabled_metrics_surface_reports_typed_errors_on_both_protocols() {
        let space = IdSpace::with_bits(40).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let options = ServerOptions {
            metrics: false,
            ..ServerOptions::default()
        };
        let server = TcpServer::bind_with("127.0.0.1:0", config, options).unwrap();
        let addr = server.local_addr();
        let mut v1 = RemoteClient::connect(addr, space).unwrap();
        let err = v1.metrics().unwrap_err();
        assert!(err.to_string().contains("disabled"), "got: {err}");
        let v2 = Client::connect(addr, space).unwrap();
        let err = v2.metrics().unwrap_err();
        assert!(err.to_string().contains("disabled"), "got: {err}");
        // Both connections survived the refusal.
        assert_eq!(v1.lease(0, 5).unwrap().granted, 5);
        assert_eq!(v2.lease(1, 5).unwrap().granted, 5);
        v1.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn dialed_client_serves_both_protocols_identically() {
        for proto in [ProtoVersion::V1, ProtoVersion::V2] {
            let (server, space) = server(40);
            let mut client = DialedClient::connect(server.local_addr(), space, proto).unwrap();
            assert_eq!(client.protocol(), proto);
            let lease = client.lease(5, 64).unwrap();
            assert_eq!(lease.granted, 64, "{proto}");
            client.reset(5).unwrap();
            client.drain().unwrap();
            let summary = client.shutdown().unwrap();
            assert_eq!(summary.issued_ids, 64, "{proto}");
            assert_eq!(summary.leases, 1, "{proto}");
            server.join().unwrap();
        }
    }

    #[test]
    fn v1_handler_threads_are_reaped_between_connections() {
        // Regression: the old demux pushed one JoinHandle per v1
        // connection and only joined them at shutdown — a slow leak on
        // any long-lived server with v1 churn. The reactor reaps
        // finished handlers every pass, so the live count must return
        // to zero while the server keeps serving.
        let (server, space) = server(40);
        let registry = server.registry();
        for tenant in 0..16 {
            let mut client = RemoteClient::connect(server.local_addr(), space).unwrap();
            assert_eq!(client.lease(tenant, 10).unwrap().granted, 10);
            client.quit().unwrap();
        }
        let live = registry.gauge("uuidp_net_v1_handlers_live");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while live.get() != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "{} v1 handler threads still alive after every client quit",
                live.get()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // The server is still fully alive after all that churn.
        let last = RemoteClient::connect(server.local_addr(), space).unwrap();
        last.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn flooding_v2_peer_does_not_starve_its_siblings() {
        // Regression: the old pump read one connection until
        // WouldBlock, so a firehosing peer monopolized the demux
        // thread. The reactor caps bytes and frames per connection per
        // pass; a latency probe sharing the reactor with a flooder
        // must still see bounded round trips.
        let (server, space) = server(40);
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        // The flooder: a raw v2 socket blasting pipelined single-ID
        // leases, replies discarded by a second thread so the server
        // never has to apply backpressure.
        let mut flood = TcpStream::connect(addr).unwrap();
        flood.set_nodelay(true).unwrap();
        frame::write_frame(
            &mut flood,
            0,
            &FrameBody::Hello {
                version: frame::VERSION,
                space: space.size(),
            },
        )
        .unwrap();
        let hello = frame::read_frame(&mut flood).unwrap();
        assert!(matches!(hello.body, FrameBody::HelloOk { .. }));
        let flood_ctl = flood.try_clone().unwrap();
        let mut sink = flood.try_clone().unwrap();
        let drain_stop = Arc::clone(&stop);
        let drain = std::thread::spawn(move || {
            while !drain_stop.load(Ordering::SeqCst) && frame::read_frame(&mut sink).is_ok() {}
        });
        let write_stop = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            let mut corr = 1u64;
            while !write_stop.load(Ordering::SeqCst) {
                let mut batch = Vec::new();
                for _ in 0..64 {
                    batch.extend_from_slice(&frame::encode_frame(
                        corr,
                        &FrameBody::LeaseReq {
                            tenant: 0,
                            count: 1,
                        },
                    ));
                    corr += 1;
                }
                if flood.write_all(&batch).is_err() {
                    break;
                }
            }
        });
        // The probe: an ordinary v2 client on another tenant (another
        // pool worker too), timing full round trips under the flood.
        let probe = Client::connect(addr, space).unwrap();
        let mut worst = Duration::ZERO;
        for _ in 0..100 {
            let start = std::time::Instant::now();
            assert_eq!(probe.lease(97, 1).unwrap().granted, 1);
            worst = worst.max(start.elapsed());
        }
        stop.store(true, Ordering::SeqCst);
        let _ = flood_ctl.shutdown(std::net::Shutdown::Both);
        writer.join().unwrap();
        drain.join().unwrap();
        assert!(
            worst < Duration::from_millis(500),
            "probe starved behind the flooder: worst lease took {worst:?}"
        );
        let ctl = RemoteClient::connect(addr, space).unwrap();
        ctl.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn rotation_backend_serves_both_protocols() {
        // The portable fallback (and the `poll-fallback` build's only
        // backend) must carry real traffic, not just compile.
        let space = IdSpace::with_bits(40).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let options = ServerOptions {
            backend: NetBackend::Poll,
            ..ServerOptions::default()
        };
        let server = TcpServer::bind_with("127.0.0.1:0", config, options).unwrap();
        assert_eq!(server.net_backend(), "poll");
        let v2 = Client::connect(server.local_addr(), space).unwrap();
        assert_eq!(v2.lease(3, 100).unwrap().granted, 100);
        let mut v1 = RemoteClient::connect(server.local_addr(), space).unwrap();
        assert_eq!(v1.lease(4, 50).unwrap().granted, 50);
        drop(v2);
        let summary = v1.shutdown().unwrap();
        assert_eq!(summary.issued_ids, 150);
        server.join().unwrap();
    }

    #[test]
    fn auto_backend_resolves_to_the_compiled_poller() {
        let (server, space) = server(40);
        let expected = if NetBackend::epoll_compiled() {
            "epoll"
        } else {
            "poll"
        };
        assert_eq!(server.net_backend(), expected);
        let client = RemoteClient::connect(server.local_addr(), space).unwrap();
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn timeout_bounded_clients_work_against_the_reactor() {
        // `connect_with(.., Some(timeout))` bounds every reply read;
        // the reactor's queued replies must land well inside it on
        // both protocols.
        for proto in [ProtoVersion::V1, ProtoVersion::V2] {
            let (server, space) = server(40);
            let timeout = Some(Duration::from_secs(5));
            let mut client =
                DialedClient::connect_with(server.local_addr(), space, proto, timeout).unwrap();
            assert_eq!(client.lease(7, 32).unwrap().granted, 32, "{proto}");
            let summary = client.shutdown().unwrap();
            assert_eq!(summary.issued_ids, 32, "{proto}");
            server.join().unwrap();
        }
    }
}
