//! TCP front-end for the ID service, plus the matching clients.
//!
//! [`TcpServer`] speaks **both wire protocols** and negotiates per
//! connection on the first byte: v1 text lines (the `uuidp serve`
//! grammar, handled exactly as before — one blocking handler thread per
//! connection) and **protocol v2**, the `uuidp_client` binary framed
//! protocol, which is served without any per-connection thread at all:
//!
//! ```text
//!   accept ──► demux thread (nonblocking reads over every v2 conn)
//!                 │  sniff first byte: 0x00 ⇒ v2, else hand off to a
//!                 │  v1 line-protocol handler thread
//!                 │  complete frames, dispatched by kind:
//!                 ├── lease/reset ──► worker pool (tenant-keyed queues)
//!                 └── drain/summary/shutdown/halt ──► control thread
//!                        each reply frame carries its request's
//!                        correlation id back over the conn's writer
//! ```
//!
//! The v2 accept path closes the ROADMAP's thread-per-connection item:
//! however many v2 connections are open, the server runs one demux
//! thread plus a fixed pool of `v2_workers` execution threads. Requests
//! are routed to pool workers by `tenant % workers`, so each tenant's
//! requests stay FIFO end to end (the determinism the differential
//! tests pin), while different tenants' requests from one multiplexed
//! connection are served concurrently. Drain/summary/shutdown run on a
//! dedicated control thread that first barriers the pool — "everything
//! submitted before me" keeps its v1 meaning.
//!
//! Shutdown is graceful and client-initiated in either protocol, and
//! the numbers can never diverge: both the v1 `bye` line and the v2
//! summary frame are projected from the same [`ServiceReport`] by
//! [`wire_summary`]. [`TcpServer::halt`] remains the in-process crash
//! lever, and the v2 `halt` frame is its remote twin; both discard the
//! report and sever every connection mid-command. The durability
//! layer's `halt_after_persists` hook arrives here too: a lease reply
//! flagged `halted` makes the server die *instead of replying* —
//! a crash dropped exactly between the write-ahead persist and the
//! reply, which no external kill can aim that precisely.
//!
//! [`RemoteClient`] is the v1 client half: newline-framed commands out,
//! one reply line back per command. [`DialedClient`] wraps it together
//! with the v2 [`Client`](uuidp_client::Client) behind one protocol-
//! agnostic surface, so consumers (stress driver, fleet router, CLI)
//! select a protocol with a flag instead of a code path.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use uuidp_client::frame::{self, FrameBody};
use uuidp_client::{Client, ClientOptions, ProtoVersion};
use uuidp_core::clock;
use uuidp_core::id::IdSpace;
use uuidp_obs::{Registry, Stage, TraceRecorder};

use crate::protocol::{
    parse_lease_line, parse_summary, render_lease, render_summary, wire_summary, Command,
    WireLease, WireSummary,
};
use crate::service::{IdService, LeaseReply, ServiceConfig, ServiceReport};

/// Front-end options, beyond the service's own configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Accept v2 binary-frame connections (v1 text always works). Off,
    /// the listener is a legacy-only front-end: a v2 hello is answered
    /// with a fatal error frame.
    pub accept_v2: bool,
    /// Execution threads in the shared v2 worker pool. Requests are
    /// pinned to workers by `tenant % v2_workers`.
    pub v2_workers: usize,
    /// Serve metric scrapes (the v1 `metrics` command and the v2
    /// metrics frame). Off, a scrape gets a typed error reply and the
    /// connection stays up — the registry still records either way,
    /// this only gates the *export* surface.
    pub metrics: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            accept_v2: true,
            v2_workers: 4,
            metrics: true,
        }
    }
}

/// Shared state of a running [`TcpServer`].
struct ServerState {
    /// The service; taken (→ `None`) by whichever connection shuts down.
    service: RwLock<Option<IdService>>,
    /// Set before the accept loop is woken for the last time.
    stopping: AtomicBool,
    /// Write halves of every *live* connection, keyed by connection id
    /// so a finished handler can deregister its own entry (otherwise
    /// churning clients would leak one fd each until shutdown). Shutdown
    /// severs whatever is registered to unblock blocked readers.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Connection id source.
    next_conn: AtomicU64,
    /// The service's universe — validated against every v2 hello.
    space: IdSpace,
    /// The service's metric registry, kept alongside the `RwLock`ed
    /// service so scrapes never contend with the lease path (reading
    /// counters is lock-free; only snapshot assembly walks the map).
    registry: Arc<Registry>,
    /// The service's trace recorder, for the front-end's own lifecycle
    /// stamps (server-demux, reply-sent).
    trace: Arc<TraceRecorder>,
    /// Whether scrapes are served (see [`ServerOptions::metrics`]).
    metrics: bool,
}

impl ServerState {
    /// Severs every registered connection (shutdown-time unblocking).
    fn sever_all(&self) {
        for (_, conn) in self.conns.lock().expect("conns lock").drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Registers a connection's write half, returning its id — and
    /// closes the register/sever race: a shutdown that drained `conns`
    /// *before* this insert set `stopping` *before* draining, so the
    /// check below catches exactly the registrations the drain missed.
    /// Returns `None` (connection severed) when the server is stopping.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let conn_id = self.next_conn.fetch_add(1, Ordering::SeqCst);
        if let Ok(registered) = stream.try_clone() {
            self.conns
                .lock()
                .expect("conns lock")
                .insert(conn_id, registered);
        }
        if self.stopping.load(Ordering::SeqCst) {
            self.deregister(conn_id);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return None;
        }
        Some(conn_id)
    }

    fn deregister(&self, conn_id: u64) {
        self.conns.lock().expect("conns lock").remove(&conn_id);
    }
}

/// Kills the server from inside: stop accepting, tear the service down
/// **discarding its report**, sever every live connection mid-command,
/// and wake the accept loop. This is the shared crash fiction behind
/// [`TcpServer::halt`], the v2 `halt` frame, and the
/// `halt_after_persists` hook — clients see an abrupt EOF, and what
/// survives is only what the durability layer persisted write-ahead.
///
/// When the service has a durable state dir, the flight recorder dumps
/// its last events + a registry snapshot there first (`reason` names
/// the crash path, `focus_corr` the in-flight request if known), so a
/// post-mortem can see the causal timeline that led into the crash.
fn crash_server(
    state: &ServerState,
    local_addr: SocketAddr,
    reason: &str,
    focus_corr: Option<u64>,
) {
    state.stopping.store(true, Ordering::SeqCst);
    let service = state.service.write().expect("service lock").take();
    if let Some(service) = service {
        service.dump_flight(reason, focus_corr);
        drop(service.shutdown());
    }
    state.sever_all();
    let _ = TcpStream::connect(local_addr);
}

/// A running TCP front-end over one [`IdService`].
pub struct TcpServer {
    local_addr: SocketAddr,
    accept: JoinHandle<()>,
    demux: JoinHandle<()>,
    control: JoinHandle<()>,
    pool: Vec<JoinHandle<()>>,
    report_rx: Receiver<ServiceReport>,
    state: Arc<ServerState>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), boots
    /// the service, and starts accepting connections with default
    /// [`ServerOptions`] (both protocols, a small v2 pool).
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<TcpServer> {
        TcpServer::bind_with(addr, config, ServerOptions::default())
    }

    /// [`bind`](TcpServer::bind) with explicit front-end options.
    pub fn bind_with(
        addr: &str,
        config: ServiceConfig,
        options: ServerOptions,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let space = config.space;
        let service = IdService::start(config);
        let registry = service.registry();
        let trace = service.trace();
        let state = Arc::new(ServerState {
            service: RwLock::new(Some(service)),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            space,
            registry,
            trace,
            metrics: options.metrics,
        });
        let (report_tx, report_rx) = sync_channel::<ServiceReport>(1);

        // The shared v2 worker pool: tenant-keyed queues, fixed width.
        let workers = options.v2_workers.max(1);
        let mut pool_txs = Vec::with_capacity(workers);
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = sync_channel::<PoolJob>(1024);
            pool_txs.push(tx);
            let state = Arc::clone(&state);
            pool.push(std::thread::spawn(move || {
                pool_worker(state, rx, local_addr)
            }));
        }
        // The v2 control lane (drain / summary / shutdown / halt).
        let (ctrl_tx, ctrl_rx) = sync_channel::<CtrlJob>(64);
        let control = {
            let state = Arc::clone(&state);
            let pool_txs = pool_txs.clone();
            let report_tx = report_tx.clone();
            std::thread::spawn(move || {
                control_worker(state, ctrl_rx, pool_txs, report_tx, local_addr)
            })
        };
        // The demux: sniffs every new connection, owns all v2 reads.
        let (register_tx, register_rx) = channel::<TcpStream>();
        let demux = {
            let state = Arc::clone(&state);
            let report_tx = report_tx.clone();
            let accept_v2 = options.accept_v2;
            std::thread::spawn(move || {
                demux_loop(
                    state,
                    register_rx,
                    pool_txs,
                    ctrl_tx,
                    accept_v2,
                    report_tx,
                    local_addr,
                )
            })
        };
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // One reply per command either way: Nagle + delayed ACK
                // would add ~40ms to every round trip on loopback.
                let _ = stream.set_nodelay(true);
                // The demux reads everything nonblocking until a
                // connection proves to be v1 and is handed back to a
                // blocking handler thread.
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                if register_tx.send(stream).is_err() {
                    break; // demux is gone; the server is coming down
                }
            }
        });
        Ok(TcpServer {
            local_addr,
            accept,
            demux,
            control,
            pool,
            report_rx,
            state,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently registered (live) connections — departed clients are
    /// deregistered by their handler (v1) or the demux (v2), so this
    /// does not grow with connection churn.
    pub fn live_connections(&self) -> usize {
        self.state.conns.lock().expect("conns lock").len()
    }

    /// The service's metric registry — in-process drivers (stress,
    /// fleet, tests) read counters here without a wire scrape.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.state.registry)
    }

    /// The service's trace recorder — in-process drivers stamp
    /// client-side lifecycle stages (client-send, client-recv) into the
    /// same ring the server stamps, so assembled timelines span both
    /// halves of the exchange.
    pub fn trace(&self) -> Arc<TraceRecorder> {
        Arc::clone(&self.state.trace)
    }

    fn join_threads(self) -> Receiver<ServiceReport> {
        let _ = self.accept.join();
        let _ = self.demux.join();
        let _ = self.control.join();
        for handle in self.pool {
            let _ = handle.join();
        }
        self.report_rx
    }

    /// Blocks until a client issues `shutdown` (over either protocol),
    /// then returns the server-side [`ServiceReport`] (`None` only if
    /// the accept loop died without a shutdown, which a well-formed run
    /// never does).
    pub fn join(self) -> Option<ServiceReport> {
        self.join_threads().try_recv().ok()
    }

    /// Server-side stop, no client involved: severs every live
    /// connection mid-command, stops the accept loop, and tears the
    /// service down. Clients see an abrupt EOF, exactly as if the
    /// process died.
    ///
    /// This is the crash lever the fleet chaos harness pulls: callers
    /// that *discard* the returned report (and never checkpointed)
    /// keep only what the durability layer's write-ahead records
    /// captured — the fiction of a power cut, at the persistence
    /// boundary where it matters. Returns `None` if a client shutdown
    /// raced this call and won.
    pub fn halt(self) -> Option<ServiceReport> {
        self.state.stopping.store(true, Ordering::SeqCst);
        let service = self.state.service.write().expect("service lock").take();
        let report = service.map(|service| {
            // A halt is a staged crash: leave the post-mortem (last
            // trace events + registry snapshot) in the state dir, the
            // same evidence a real power cut would be diagnosed from.
            service.dump_flight("halt", None);
            service.shutdown()
        });
        self.state.sever_all();
        // Unblock the accept loop, then wait out every server thread.
        let _ = TcpStream::connect(self.local_addr);
        let report_rx = self.join_threads();
        report.or_else(|| report_rx.try_recv().ok())
    }
}

// ---------------------------------------------------------------------
// The v2 serving machinery: demux + pool + control.
// ---------------------------------------------------------------------

/// The shared half of one v2 connection: its registry id and the write
/// half every replying thread goes through. Frames are written whole
/// under the lock, so replies from different pool workers never
/// interleave mid-frame.
struct V2Conn {
    writer: Mutex<TcpStream>,
}

impl V2Conn {
    /// Writes one whole frame. The socket is nonblocking (O_NONBLOCK is
    /// a property of the file description the demux's read half shares,
    /// so the write half cannot be switched back), which means a full
    /// send buffer surfaces as `WouldBlock` mid-frame — and a torn
    /// frame would desynchronize the whole binary stream. So this loops
    /// until every byte is out, yielding (then briefly sleeping) while
    /// the peer drains; the per-connection writer lock makes the stall
    /// back-pressure exactly the senders targeting this connection.
    fn send(&self, corr: u64, body: &FrameBody) -> io::Result<()> {
        let bytes = frame::encode_frame(corr, body);
        let mut writer = self.writer.lock().expect("conn writer lock");
        let mut at = 0;
        let mut stalls = 0u32;
        while at < bytes.len() {
            match writer.write(&bytes[at..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    at += n;
                    stalls = 0;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    stalls = stalls.saturating_add(1);
                    if stalls < 64 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn send_error(&self, corr: u64, message: impl Into<String>) {
        let _ = self.send(
            corr,
            &FrameBody::Error {
                message: message.into(),
            },
        );
    }
}

/// Work routed to the tenant-keyed pool.
enum PoolJob {
    Lease {
        conn: Arc<V2Conn>,
        corr: u64,
        tenant: u64,
        count: u128,
    },
    Reset {
        conn: Arc<V2Conn>,
        corr: u64,
        tenant: u64,
    },
    /// Ack once every prior job on this worker is fully served.
    Barrier { done: SyncSender<()> },
}

/// Work routed to the control lane.
enum CtrlJob {
    Drain { conn: Arc<V2Conn>, corr: u64 },
    Summary { conn: Arc<V2Conn>, corr: u64 },
    Shutdown { conn: Arc<V2Conn>, corr: u64 },
    Halt,
}

/// Arcs that fit one v2 lease-reply frame: the fixed fields plus 32
/// bytes per arc must stay under [`frame::MAX_PAYLOAD`], or the encoder
/// would emit a frame the peer must reject as corrupt.
const MAX_REPLY_ARCS: usize = (frame::MAX_PAYLOAD as usize - 64) / 32;

fn lease_resp(reply: &LeaseReply) -> FrameBody {
    // A grant fragmented into more arcs than one frame can carry (only
    // the Random algorithm's point-per-ID leases get near this) must
    // become a *typed* error the client can read — never an over-cap
    // frame that kills the connection as a framing violation.
    if reply.arcs.len() > MAX_REPLY_ARCS {
        return FrameBody::Error {
            message: format!(
                "lease fragmented into {} arcs, more than one v2 frame carries \
                 (max {MAX_REPLY_ARCS}); request fewer IDs per lease",
                reply.arcs.len()
            ),
        };
    }
    FrameBody::LeaseResp {
        tenant: reply.tenant,
        granted: reply.granted,
        arcs: reply
            .arcs
            .iter()
            .map(|a| (a.start.value(), a.len))
            .collect(),
        error: reply.error.as_ref().map(|e| e.to_string()),
    }
}

/// One pool worker: executes tenant-keyed jobs against the shared
/// service, writing each reply frame straight to its connection.
fn pool_worker(state: Arc<ServerState>, rx: Receiver<PoolJob>, local_addr: SocketAddr) {
    while let Ok(job) = rx.recv() {
        match job {
            PoolJob::Lease {
                conn,
                corr,
                tenant,
                count,
            } => {
                let reply = state
                    .service
                    .read()
                    .expect("service lock")
                    .as_ref()
                    .map(|service| service.lease_traced(tenant, count, corr));
                match reply {
                    // The halt_after_persists hook fired: die between
                    // the write-ahead persist and the reply — and leave
                    // the flight dump focused on the lease that was cut
                    // off mid-exchange.
                    Some(reply) if reply.halted => {
                        crash_server(&state, local_addr, "halt-after-persists", Some(corr))
                    }
                    Some(reply) => {
                        let _ = conn.send(corr, &lease_resp(&reply));
                        state.trace.record(
                            corr,
                            tenant,
                            Stage::ReplySent,
                            "lease-resp",
                            clock::monotonic_ns(),
                        );
                    }
                    None => conn.send_error(corr, "shutting down"),
                }
            }
            PoolJob::Reset { conn, corr, tenant } => {
                let served = {
                    let service = state.service.read().expect("service lock");
                    service.as_ref().map(|s| s.reset_tenant(tenant)).is_some()
                };
                if served {
                    let _ = conn.send(corr, &FrameBody::ResetResp { tenant });
                } else {
                    conn.send_error(corr, "shutting down");
                }
            }
            PoolJob::Barrier { done } => {
                let _ = done.send(());
            }
        }
    }
}

/// Acks from every pool worker once all previously routed jobs are
/// fully served (each worker replies before taking its next job).
fn pool_barrier(pool_txs: &[SyncSender<PoolJob>]) {
    let barriers: Vec<Receiver<()>> = pool_txs
        .iter()
        .map(|tx| {
            let (done, rx) = sync_channel(1);
            // A closed queue means the pool is already gone (server
            // coming down); nothing left to wait for on that worker.
            let _ = tx.send(PoolJob::Barrier { done });
            rx
        })
        .collect();
    for rx in barriers {
        let _ = rx.recv();
    }
}

/// The control lane: pool-barriered drain/summary, graceful shutdown,
/// and the remote crash lever. One thread, so these serializing
/// operations cannot deadlock each other on the pool barrier.
fn control_worker(
    state: Arc<ServerState>,
    rx: Receiver<CtrlJob>,
    pool_txs: Vec<SyncSender<PoolJob>>,
    report_tx: SyncSender<ServiceReport>,
    local_addr: SocketAddr,
) {
    while let Ok(job) = rx.recv() {
        match job {
            CtrlJob::Drain { conn, corr } => {
                // "Everything submitted before me": queued pool jobs
                // first, then the service's own shard barrier.
                pool_barrier(&pool_txs);
                let drained = {
                    let service = state.service.read().expect("service lock");
                    service.as_ref().map(|s| s.drain()).is_some()
                };
                if drained {
                    let _ = conn.send(corr, &FrameBody::DrainResp);
                } else {
                    conn.send_error(corr, "shutting down");
                }
            }
            CtrlJob::Summary { conn, corr } => {
                pool_barrier(&pool_txs);
                let report = {
                    let service = state.service.read().expect("service lock");
                    service.as_ref().map(|s| s.summary())
                };
                match report {
                    Some(report) => {
                        let _ = conn.send(corr, &FrameBody::SummaryResp(wire_summary(&report)));
                    }
                    None => conn.send_error(corr, "shutting down"),
                }
            }
            CtrlJob::Shutdown { conn, corr } => {
                state.stopping.store(true, Ordering::SeqCst);
                // Serve what the pool already holds, then take the
                // service (the write lock waits out in-flight leases).
                pool_barrier(&pool_txs);
                let service = state.service.write().expect("service lock").take();
                match service {
                    Some(service) => {
                        let report = service.shutdown();
                        let _ = conn.send(corr, &FrameBody::SummaryResp(wire_summary(&report)));
                        let _ = report_tx.send(report);
                        // Unblock sibling connections and the accept loop.
                        state.sever_all();
                        let _ = TcpStream::connect(local_addr);
                        return;
                    }
                    None => conn.send_error(corr, "shutting down"),
                }
            }
            CtrlJob::Halt => {
                crash_server(&state, local_addr, "halt", None);
                return;
            }
        }
    }
}

/// One connection as the demux tracks it.
struct DemuxConn {
    conn_id: u64,
    stream: TcpStream,
    shared: Arc<V2Conn>,
    buf: Vec<u8>,
    /// First byte seen and judged to be v2.
    sniffed: bool,
    /// Handshake frame validated and answered.
    hello_done: bool,
}

/// What a pump pass decided about one connection.
enum ConnFate {
    Keep,
    /// Deregister and drop (EOF, error, or protocol violation).
    Remove,
    /// First byte says v1: hand the buffered bytes + socket to a
    /// blocking line-protocol handler thread.
    HandOffV1(Vec<u8>),
}

/// The v2 demux: every open v2 (or not-yet-sniffed) connection lives
/// here, read nonblocking in a rotation — no thread per connection.
/// Complete frames are dispatched to the pool/control lanes; v1
/// connections are detected on their first byte and handed off. The
/// loop spins with `yield` while traffic flows and backs off to short
/// sleeps when everything is quiet.
#[allow(clippy::too_many_arguments)]
fn demux_loop(
    state: Arc<ServerState>,
    register_rx: Receiver<TcpStream>,
    pool_txs: Vec<SyncSender<PoolJob>>,
    ctrl_tx: SyncSender<CtrlJob>,
    accept_v2: bool,
    report_tx: SyncSender<ServiceReport>,
    local_addr: SocketAddr,
) {
    let mut conns: Vec<DemuxConn> = Vec::new();
    let mut v1_handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut scratch = [0u8; 16384];
    let mut idle_passes = 0u32;
    while !state.stopping.load(Ordering::SeqCst) {
        let mut progress = false;
        // Adopt newly accepted connections.
        while let Ok(stream) = register_rx.try_recv() {
            progress = true;
            let Some(conn_id) = state.register(&stream) else {
                continue; // racing a shutdown; already severed
            };
            let Ok(writer) = stream.try_clone() else {
                state.deregister(conn_id);
                continue;
            };
            conns.push(DemuxConn {
                conn_id,
                stream,
                shared: Arc::new(V2Conn {
                    writer: Mutex::new(writer),
                }),
                buf: Vec::new(),
                sniffed: false,
                hello_done: false,
            });
        }
        // Pump every connection.
        let mut i = 0;
        while i < conns.len() {
            let (fate, moved) = pump_conn(
                &mut conns[i],
                &mut scratch,
                &state,
                &pool_txs,
                &ctrl_tx,
                accept_v2,
            );
            progress |= moved;
            match fate {
                ConnFate::Keep => i += 1,
                ConnFate::Remove => {
                    let conn = conns.swap_remove(i);
                    state.deregister(conn.conn_id);
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                    progress = true;
                }
                ConnFate::HandOffV1(prefix) => {
                    let conn = conns.swap_remove(i);
                    // Back to blocking: the v1 handler thread owns it now.
                    let _ = conn.stream.set_nonblocking(false);
                    let state = Arc::clone(&state);
                    let report_tx = report_tx.clone();
                    v1_handlers.push(std::thread::spawn(move || {
                        handle_v1_connection(
                            conn.stream,
                            conn.conn_id,
                            prefix,
                            state,
                            report_tx,
                            local_addr,
                        );
                    }));
                    progress = true;
                }
            }
        }
        if progress {
            idle_passes = 0;
        } else {
            // Hot traffic keeps the loop spinning (yield keeps the
            // single-core CI container fair); quiet periods back off to
            // sleeps so an idle server costs ~nothing.
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    // Server is coming down. Do NOT sever the sockets here: the demux
    // races the stop paths, and the shutdown requester's summary frame
    // may still be in flight from the control thread — an early
    // shutdown(2) would turn it into a broken pipe. Dropping our read
    // fds is safe (registry entries and reply handles keep each socket
    // alive); the final sever is sever_all's job, which every stop path
    // performs after the last reply is written.
    drop(conns);
    for handle in v1_handlers {
        let _ = handle.join();
    }
}

/// Reads whatever one connection has, sniffs/parses, dispatches. The
/// bool is "made progress" (bytes moved), for the demux's backoff.
fn pump_conn(
    conn: &mut DemuxConn,
    scratch: &mut [u8],
    state: &ServerState,
    pool_txs: &[SyncSender<PoolJob>],
    ctrl_tx: &SyncSender<CtrlJob>,
    accept_v2: bool,
) -> (ConnFate, bool) {
    let mut progress = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => return (ConnFate::Remove, true),
            Ok(n) => {
                progress = true;
                conn.buf.extend_from_slice(&scratch[..n]);
                if !conn.sniffed {
                    if conn.buf[0] != frame::MAGIC[0] {
                        // A text byte: this is a v1 client.
                        return (ConnFate::HandOffV1(std::mem::take(&mut conn.buf)), true);
                    }
                    conn.sniffed = true;
                    if !accept_v2 {
                        conn.shared
                            .send_error(0, "protocol v2 is disabled on this listener");
                        return (ConnFate::Remove, true);
                    }
                }
                // Drain complete frames off the buffer.
                loop {
                    match frame::decode_frame(&conn.buf) {
                        Ok(None) => break,
                        Ok(Some((f, used))) => {
                            conn.buf.drain(..used);
                            if !dispatch_frame(conn, f, state, pool_txs, ctrl_tx) {
                                return (ConnFate::Remove, true);
                            }
                        }
                        Err(e) => {
                            // Framing errors are connection-fatal: a
                            // binary stream cannot be resynchronized.
                            conn.shared.send_error(0, e.to_string());
                            return (ConnFate::Remove, true);
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (ConnFate::Keep, progress),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return (ConnFate::Remove, true),
        }
    }
}

/// Routes one decoded frame. `false` severs the connection.
fn dispatch_frame(
    conn: &mut DemuxConn,
    f: frame::Frame,
    state: &ServerState,
    pool_txs: &[SyncSender<PoolJob>],
    ctrl_tx: &SyncSender<CtrlJob>,
) -> bool {
    if !conn.hello_done {
        // Version negotiation: the first frame must be a hello naming a
        // version and universe this server serves.
        return match f.body {
            FrameBody::Hello { version, space } => {
                if version != frame::VERSION {
                    conn.shared.send_error(
                        0,
                        format!(
                            "unsupported protocol version {version} (this server speaks {})",
                            frame::VERSION
                        ),
                    );
                    false
                } else if space != state.space.size() {
                    conn.shared.send_error(
                        0,
                        format!(
                            "universe mismatch: server is {}, client asked for {space}",
                            state.space.size()
                        ),
                    );
                    false
                } else {
                    conn.hello_done = true;
                    conn.shared
                        .send(
                            0,
                            &FrameBody::HelloOk {
                                version: frame::VERSION,
                                space: state.space.size(),
                            },
                        )
                        .is_ok()
                }
            }
            other => {
                conn.shared
                    .send_error(0, format!("expected hello, got {} frame", other.name()));
                false
            }
        };
    }
    let corr = f.corr;
    match f.body {
        FrameBody::LeaseReq { tenant, count } => {
            state.trace.record(
                corr,
                tenant,
                Stage::ServerDemux,
                "lease-req",
                clock::monotonic_ns(),
            );
            let worker = (tenant % pool_txs.len() as u64) as usize;
            let _ = pool_txs[worker].send(PoolJob::Lease {
                conn: Arc::clone(&conn.shared),
                corr,
                tenant,
                count,
            });
            true
        }
        FrameBody::MetricsReq => {
            // Answered inline on the demux thread: a scrape reads the
            // registry lock-free and must never queue behind leases.
            if state.metrics {
                let text = state.registry.snapshot().render_prometheus();
                conn.shared
                    .send(corr, &FrameBody::MetricsResp { text })
                    .is_ok()
            } else {
                conn.shared
                    .send_error(corr, "metrics are disabled on this listener");
                true
            }
        }
        FrameBody::ResetReq { tenant } => {
            let worker = (tenant % pool_txs.len() as u64) as usize;
            let _ = pool_txs[worker].send(PoolJob::Reset {
                conn: Arc::clone(&conn.shared),
                corr,
                tenant,
            });
            true
        }
        FrameBody::DrainReq => {
            let _ = ctrl_tx.send(CtrlJob::Drain {
                conn: Arc::clone(&conn.shared),
                corr,
            });
            true
        }
        FrameBody::SummaryReq => {
            let _ = ctrl_tx.send(CtrlJob::Summary {
                conn: Arc::clone(&conn.shared),
                corr,
            });
            true
        }
        FrameBody::ShutdownReq => {
            let _ = ctrl_tx.send(CtrlJob::Shutdown {
                conn: Arc::clone(&conn.shared),
                corr,
            });
            true
        }
        FrameBody::HaltReq => {
            let _ = ctrl_tx.send(CtrlJob::Halt);
            true
        }
        other => {
            conn.shared.send_error(
                0,
                format!("unexpected {} frame from a client", other.name()),
            );
            false
        }
    }
}

// ---------------------------------------------------------------------
// The v1 line-protocol path (handed off by the demux after the sniff).
// ---------------------------------------------------------------------

/// One v1 connection: read command lines, reply per line, until quit,
/// shutdown, disconnect, or server stop. `prefix` is whatever the
/// demux read before deciding this was a text client.
fn handle_v1_connection(
    stream: TcpStream,
    conn_id: u64,
    prefix: Vec<u8>,
    state: Arc<ServerState>,
    report_tx: SyncSender<ServiceReport>,
    local_addr: SocketAddr,
) {
    let Ok(mut out) = stream.try_clone() else {
        state.deregister(conn_id);
        return;
    };
    let reader = BufReader::new(io::Cursor::new(prefix).chain(stream));
    run_connection(reader, &mut out, &state, &report_tx, local_addr);
    // Deregister so long-lived servers don't accumulate one dup'd fd
    // per departed client. (After a shutdown drain this is a no-op.)
    state.deregister(conn_id);
}

/// The per-connection v1 command loop (split out so the caller can pair
/// registration with guaranteed deregistration).
fn run_connection<R: BufRead>(
    reader: R,
    out: &mut TcpStream,
    state: &ServerState,
    report_tx: &SyncSender<ServiceReport>,
    local_addr: SocketAddr,
) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let reply = match Command::parse(&line) {
            Err(msg) => format!("error: {msg}"),
            Ok(None) => continue,
            Ok(Some(Command::Quit)) => break,
            Ok(Some(Command::Lease { tenant, count })) => {
                let reply = state
                    .service
                    .read()
                    .expect("service lock")
                    .as_ref()
                    .map(|service| service.lease(tenant, count));
                match reply {
                    // The halt_after_persists hook: die instead of
                    // replying (see the module docs).
                    Some(reply) if reply.halted => {
                        crash_server(state, local_addr, "halt-after-persists", None);
                        return;
                    }
                    Some(reply) => render_lease(&reply),
                    None => "error: shutting down".into(),
                }
            }
            Ok(Some(Command::Reset { tenant })) => {
                match state.service.read().expect("service lock").as_ref() {
                    Some(service) => {
                        service.reset_tenant(tenant);
                        format!("reset tenant={tenant}")
                    }
                    None => "error: shutting down".into(),
                }
            }
            Ok(Some(Command::Drain)) => {
                match state.service.read().expect("service lock").as_ref() {
                    Some(service) => {
                        service.drain();
                        "drained".into()
                    }
                    None => "error: shutting down".into(),
                }
            }
            Ok(Some(Command::Metrics)) => {
                if state.metrics {
                    // The one multi-line reply in the grammar: the
                    // exposition, then a `# EOF` sentinel line so a
                    // line-at-a-time client knows where it ends.
                    let text = state.registry.snapshot().render_prometheus();
                    format!("{text}# EOF")
                } else {
                    "error: metrics are disabled on this listener".into()
                }
            }
            Ok(Some(Command::Shutdown)) => {
                state.stopping.store(true, Ordering::SeqCst);
                // The write lock waits out every in-flight request.
                let service = state.service.write().expect("service lock").take();
                match service {
                    Some(service) => {
                        let report = service.shutdown();
                        let _ = writeln!(out, "{}", render_summary(&report));
                        let _ = report_tx.send(report);
                        // Unblock sibling connections and the accept loop.
                        state.sever_all();
                        let _ = TcpStream::connect(local_addr);
                        return;
                    }
                    None => "error: shutting down".into(),
                }
            }
        };
        if writeln!(out, "{reply}").is_err() {
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Clients.
// ---------------------------------------------------------------------

/// A blocking v1 line-protocol client for a [`TcpServer`] (or any
/// process speaking the `uuidp serve` grammar).
pub struct RemoteClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    space: IdSpace,
}

fn proto_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl RemoteClient {
    /// Connects to `addr`. `space` must match the server's universe —
    /// the wire carries arc start/len pairs, and the client rebuilds
    /// typed [`Arc`](uuidp_core::interval::Arc)s over this space.
    pub fn connect<A: ToSocketAddrs>(addr: A, space: IdSpace) -> io::Result<RemoteClient> {
        RemoteClient::connect_with(addr, space, None)
    }

    /// Like [`RemoteClient::connect`], but every reply read is bounded
    /// by `read_timeout` (`None` = block forever). A stalled or
    /// partitioned server then surfaces as a timed-out [`io::Error`]
    /// instead of hanging the caller; because v1 is strictly
    /// request/reply, a timed-out read leaves the request's fate
    /// unknown (lease-in-doubt) and the connection must be replaced.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        space: IdSpace,
        read_timeout: Option<Duration>,
    ) -> io::Result<RemoteClient> {
        let writer = TcpStream::connect(addr)?;
        // Command lines are tiny and latency-bound; never batch them
        // behind Nagle (pairs with the server-side set_nodelay).
        writer.set_nodelay(true)?;
        writer.set_read_timeout(read_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(RemoteClient {
            reader,
            writer,
            space,
        })
    }

    /// Sends one command line and reads the one reply line.
    fn roundtrip(&mut self, command: &str) -> io::Result<String> {
        writeln!(self.writer, "{command}")?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            // A bounded read that expired: the command was sent, its
            // reply never came — classify as lease-in-doubt so a chaos
            // driver knows not to blindly replay it.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(uuidp_client::broken(
                    "v1 reply read timed out",
                    uuidp_client::ErrorClass::LeaseInDoubt,
                ));
            }
            Err(e) => return Err(e),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(_) => {}
        }
        Ok(line.trim_end().to_string())
    }

    /// Leases `count` IDs for `tenant`.
    pub fn lease(&mut self, tenant: u64, count: u128) -> io::Result<WireLease> {
        let line = self.roundtrip(&format!("lease {tenant} {count}"))?;
        parse_lease_line(&line, self.space).map_err(proto_err)
    }

    /// Recycles `tenant`'s generator into a fresh epoch.
    pub fn reset(&mut self, tenant: u64) -> io::Result<()> {
        let line = self.roundtrip(&format!("reset {tenant}"))?;
        if line == format!("reset tenant={tenant}") {
            Ok(())
        } else {
            Err(proto_err(format!("unexpected reset reply: `{line}`")))
        }
    }

    /// Blocks until the server has processed every prior request.
    pub fn drain(&mut self) -> io::Result<()> {
        let line = self.roundtrip("drain")?;
        if line == "drained" {
            Ok(())
        } else {
            Err(proto_err(format!("unexpected drain reply: `{line}`")))
        }
    }

    /// Scrapes the server's metric registry: the v1 `metrics` command,
    /// whose reply is Prometheus text exposition terminated by a
    /// `# EOF` sentinel line (stripped from the returned text).
    pub fn metrics(&mut self) -> io::Result<String> {
        writeln!(self.writer, "metrics")?;
        let mut text = String::new();
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Err(e) => return Err(e),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-scrape",
                    ));
                }
                Ok(_) => {}
            }
            let trimmed = line.trim_end();
            if trimmed == "# EOF" {
                return Ok(text);
            }
            if text.is_empty() && trimmed.starts_with("error:") {
                return Err(proto_err(trimmed.to_string()));
            }
            text.push_str(trimmed);
            text.push('\n');
        }
    }

    /// Closes this connection; the server keeps running.
    pub fn quit(mut self) -> io::Result<()> {
        writeln!(self.writer, "quit")?;
        Ok(())
    }

    /// Stops the whole server and returns its parsed shutdown summary.
    pub fn shutdown(mut self) -> io::Result<WireSummary> {
        let line = self.roundtrip("shutdown")?;
        parse_summary(&line).map_err(proto_err)
    }
}

/// One client, either protocol: the v1 [`RemoteClient`] and the v2
/// multiplexing [`Client`] behind a protocol-agnostic surface, so
/// consumers select a wire protocol with a [`ProtoVersion`] flag. Both
/// arms return the same typed [`WireLease`] / [`WireSummary`].
pub enum DialedClient {
    /// The v1 text line protocol.
    V1(RemoteClient),
    /// The v2 binary framed protocol (multiplexing-capable).
    V2(Client),
}

impl DialedClient {
    /// Connects to `addr` speaking `proto`.
    pub fn connect(addr: SocketAddr, space: IdSpace, proto: ProtoVersion) -> io::Result<Self> {
        Ok(match proto {
            ProtoVersion::V1 => DialedClient::V1(RemoteClient::connect(addr, space)?),
            ProtoVersion::V2 => DialedClient::V2(Client::connect(addr, space)?),
        })
    }

    /// Connects to `addr` speaking `proto` with every blocking phase
    /// bounded by `timeout`: the dial, the v2 handshake, and each
    /// request's reply read (v1 maps the same bound onto its socket
    /// read timeout). `None` keeps the unbounded [`DialedClient::connect`]
    /// behavior. This is the dial used when a chaos proxy sits between
    /// the client and the server — nothing may hang forever.
    pub fn connect_with(
        addr: SocketAddr,
        space: IdSpace,
        proto: ProtoVersion,
        timeout: Option<Duration>,
    ) -> io::Result<Self> {
        Ok(match proto {
            ProtoVersion::V1 => DialedClient::V1(RemoteClient::connect_with(addr, space, timeout)?),
            ProtoVersion::V2 => {
                let options = ClientOptions {
                    connect_timeout: timeout,
                    handshake_timeout: timeout.or(ClientOptions::default().handshake_timeout),
                    request_timeout: timeout,
                };
                DialedClient::V2(Client::connect_with(addr, space, options)?)
            }
        })
    }

    /// Which protocol this client speaks.
    pub fn protocol(&self) -> ProtoVersion {
        match self {
            DialedClient::V1(_) => ProtoVersion::V1,
            DialedClient::V2(_) => ProtoVersion::V2,
        }
    }

    /// Leases `count` IDs for `tenant`.
    pub fn lease(&mut self, tenant: u64, count: u128) -> io::Result<WireLease> {
        match self {
            DialedClient::V1(c) => c.lease(tenant, count),
            DialedClient::V2(c) => c.lease(tenant, count),
        }
    }

    /// Recycles `tenant`'s generator into a fresh epoch.
    pub fn reset(&mut self, tenant: u64) -> io::Result<()> {
        match self {
            DialedClient::V1(c) => c.reset(tenant),
            DialedClient::V2(c) => c.reset(tenant),
        }
    }

    /// Blocks until the server has processed every prior request.
    pub fn drain(&mut self) -> io::Result<()> {
        match self {
            DialedClient::V1(c) => c.drain(),
            DialedClient::V2(c) => c.drain(),
        }
    }

    /// Scrapes the server's metric registry (Prometheus text
    /// exposition) over whichever protocol this client speaks.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self {
            DialedClient::V1(c) => c.metrics(),
            DialedClient::V2(c) => c.metrics(),
        }
    }

    /// Closes this connection; the server keeps running. (For a v2
    /// clone this drops one handle; the connection closes with the
    /// last.)
    pub fn quit(self) -> io::Result<()> {
        match self {
            DialedClient::V1(c) => c.quit(),
            DialedClient::V2(_) => Ok(()),
        }
    }

    /// Stops the whole server and returns its final summary.
    pub fn shutdown(self) -> io::Result<WireSummary> {
        match self {
            DialedClient::V1(c) => c.shutdown(),
            DialedClient::V2(c) => c.shutdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::AlgorithmKind;

    fn server(bits: u32) -> (TcpServer, IdSpace) {
        let space = IdSpace::with_bits(bits).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        (
            TcpServer::bind("127.0.0.1:0", config).expect("bind loopback"),
            space,
        )
    }

    #[test]
    fn lease_reset_drain_shutdown_over_loopback() {
        let (server, space) = server(40);
        let mut client = RemoteClient::connect(server.local_addr(), space).unwrap();
        let lease = client.lease(3, 100).unwrap();
        assert_eq!(lease.tenant, 3);
        assert_eq!(lease.granted, 100);
        assert_eq!(lease.arcs.iter().map(|a| a.len).sum::<u128>(), 100);
        assert!(lease.error.is_none());
        client.reset(3).unwrap();
        let again = client.lease(3, 50).unwrap();
        assert_eq!(again.granted, 50);
        client.drain().unwrap();
        let summary = client.shutdown().unwrap();
        assert_eq!(summary.issued_ids, 150);
        assert_eq!(summary.leases, 2);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.audit_threads, 1);
        // The server-side report agrees with what crossed the wire.
        let report = server.join().expect("server report");
        assert_eq!(report.issued_ids, 150);
        assert_eq!(report.leases, 2);
        assert_eq!(
            report.audit.counts.duplicate_ids, summary.duplicate_ids,
            "wire summary diverged from the server report"
        );
    }

    #[test]
    fn v2_client_speaks_the_whole_surface() {
        let (server, space) = server(40);
        let client = Client::connect(server.local_addr(), space).unwrap();
        let lease = client.lease(3, 100).unwrap();
        assert_eq!(lease.tenant, 3);
        assert_eq!(lease.granted, 100);
        assert_eq!(lease.arcs.iter().map(|a| a.len).sum::<u128>(), 100);
        client.reset(3).unwrap();
        assert_eq!(client.lease(3, 50).unwrap().granted, 50);
        client.drain().unwrap();
        // The live summary sees everything served so far…
        let live = client.summary().unwrap();
        assert_eq!(live.issued_ids, 150);
        assert_eq!(live.leases, 2);
        assert_eq!(
            live.recorded_ids, 150,
            "drained service must have a caught-up audit"
        );
        // …and the shutdown summary is the same story, finalized.
        let summary = client.shutdown().unwrap();
        assert_eq!(summary.issued_ids, 150);
        assert_eq!(summary.errors, 0);
        let report = server.join().expect("server report");
        assert_eq!(report.issued_ids, 150);
    }

    #[test]
    fn v2_multiplexes_interleaved_tenants_over_one_connection() {
        let (server, space) = server(44);
        let addr = server.local_addr();
        let client = Client::connect(addr, space).unwrap();
        assert_eq!(server.live_connections(), 1);
        let workers: Vec<_> = (0..6u64)
            .map(|tenant| {
                let client = client.clone();
                std::thread::spawn(move || {
                    let mut total = 0u128;
                    for round in 0..20u128 {
                        total += client.lease(tenant, 16 + round).unwrap().granted;
                    }
                    total
                })
            })
            .collect();
        let issued: u128 = workers.into_iter().map(|h| h.join().unwrap()).sum();
        // Still exactly one connection carried all six tenants.
        assert_eq!(server.live_connections(), 1, "multiplexing leaked conns");
        client.drain().unwrap();
        let summary = client.shutdown().unwrap();
        assert_eq!(summary.issued_ids, issued);
        assert_eq!(summary.leases, 120);
        assert_eq!(summary.duplicate_ids, 0, "independent tenants collided");
        assert!(server.join().is_some());
    }

    #[test]
    fn mixed_v1_and_v2_clients_share_one_server() {
        // The negotiation acceptance scenario: a v1 text client and a
        // v2 binary client served by the same TcpServer, their traffic
        // audited into one consistent total.
        let (server, space) = server(44);
        let addr = server.local_addr();
        let mut v1 = RemoteClient::connect(addr, space).unwrap();
        let v2 = Client::connect(addr, space).unwrap();
        let mut issued = 0u128;
        for round in 0..10u128 {
            issued += v1.lease(0, 10 + round).unwrap().granted;
            issued += v2.lease(1, 20 + round).unwrap().granted;
        }
        // Both protocols see the same live totals.
        v2.drain().unwrap();
        let live = v2.summary().unwrap();
        assert_eq!(live.issued_ids, issued);
        assert_eq!(live.leases, 20);
        assert_eq!(live.recorded_ids, issued);
        // A v1 shutdown finalizes for everyone.
        let summary = v1.shutdown().unwrap();
        assert_eq!(summary.issued_ids, issued);
        assert_eq!(summary.duplicate_ids, 0);
        let report = server.join().expect("server report");
        assert_eq!(report.issued_ids, issued);
    }

    #[test]
    fn v1_read_timeout_turns_a_stalled_server_into_a_typed_error() {
        // A listener that accepts and then never says anything — the
        // pathological peer a partition window produces.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let space = IdSpace::with_bits(40).unwrap();
        let mut client =
            RemoteClient::connect_with(addr, space, Some(Duration::from_millis(50))).unwrap();
        let err = client.lease(0, 10).unwrap_err();
        let broken = uuidp_client::broken_connection(&err).expect("typed broken-connection error");
        assert_eq!(broken.class, uuidp_client::ErrorClass::LeaseInDoubt);
        drop(hold.join().unwrap());
    }

    #[test]
    fn v2_handshake_rejects_universe_mismatch_with_a_typed_error() {
        let (server, _space) = server(40);
        let wrong = IdSpace::with_bits(20).unwrap();
        let err = Client::connect(server.local_addr(), wrong).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("universe mismatch"), "got: {err}");
        assert!(server.halt().is_some());
    }

    #[test]
    fn v2_can_be_disabled_leaving_a_legacy_listener() {
        let space = IdSpace::with_bits(40).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let options = ServerOptions {
            accept_v2: false,
            v2_workers: 2,
            ..ServerOptions::default()
        };
        let server = TcpServer::bind_with("127.0.0.1:0", config, options).unwrap();
        let err = Client::connect(server.local_addr(), space).unwrap_err();
        assert!(err.to_string().contains("disabled"), "got: {err}");
        // v1 still works fine.
        let mut v1 = RemoteClient::connect(server.local_addr(), space).unwrap();
        assert_eq!(v1.lease(0, 7).unwrap().granted, 7);
        v1.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn concurrent_connections_share_the_service() {
        let (server, space) = server(44);
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u64)
            .map(|tenant| {
                std::thread::spawn(move || {
                    let mut client = RemoteClient::connect(addr, space).unwrap();
                    let mut total = 0u128;
                    for round in 0..10u128 {
                        total += client.lease(tenant, 32 + round).unwrap().granted;
                    }
                    client.quit().unwrap();
                    total
                })
            })
            .collect();
        let issued: u128 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut closer = RemoteClient::connect(addr, space).unwrap();
        closer.drain().unwrap();
        let summary = closer.shutdown().unwrap();
        assert_eq!(summary.issued_ids, issued);
        assert_eq!(summary.leases, 40);
        assert_eq!(summary.duplicate_ids, 0, "independent tenants collided");
        assert!(server.join().is_some());
    }

    #[test]
    fn malformed_lines_get_error_replies_and_keep_the_connection() {
        let (server, space) = server(32);
        let mut client = RemoteClient::connect(server.local_addr(), space).unwrap();
        let reply = client.roundtrip("utter gibberish here").unwrap();
        assert!(reply.starts_with("error:"), "got `{reply}`");
        let reply = client.roundtrip("reset nope").unwrap();
        assert!(reply.starts_with("error:"), "got `{reply}`");
        // Still serviceable afterwards.
        assert_eq!(client.lease(0, 5).unwrap().granted, 5);
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn corrupt_v2_frames_sever_the_connection_not_the_server() {
        let (server, space) = server(32);
        let addr = server.local_addr();
        // A raw socket that leads with the v2 magic then turns to soup.
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut garbage = frame::MAGIC.to_vec();
        garbage.extend_from_slice(&[0xFF; 64]);
        raw.write_all(&garbage).unwrap();
        let mut reply = Vec::new();
        let _ = raw.read_to_end(&mut reply); // server severs after the error frame
                                             // The server is still healthy for well-formed clients.
        let client = Client::connect(addr, space).unwrap();
        assert_eq!(client.lease(0, 5).unwrap().granted, 5);
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn departed_connections_are_deregistered() {
        // Churning clients must not accumulate registered fds: after
        // every client quits, the live-connection registry drains back
        // to zero (v1 handlers and the v2 demux both deregister).
        let (server, space) = server(32);
        let addr = server.local_addr();
        for tenant in 0..5u64 {
            let mut client = RemoteClient::connect(addr, space).unwrap();
            assert_eq!(client.lease(tenant, 8).unwrap().granted, 8);
            client.quit().unwrap();
        }
        for tenant in 0..5u64 {
            let client = Client::connect(addr, space).unwrap();
            assert_eq!(client.lease(tenant, 8).unwrap().granted, 8);
            drop(client); // EOF: the demux reaps it
        }
        // Handlers deregister asynchronously after the quit/EOF.
        for _ in 0..200 {
            if server.live_connections() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.live_connections(), 0, "fd registry leaked");
        let closer = RemoteClient::connect(addr, space).unwrap();
        assert_eq!(closer.shutdown().unwrap().issued_ids, 80);
        server.join().unwrap();
    }

    #[test]
    fn halt_stops_the_server_without_a_client() {
        let (server, space) = server(36);
        let addr = server.local_addr();
        let mut client = RemoteClient::connect(addr, space).unwrap();
        client.lease(0, 25).unwrap();
        // The crash lever: connected clients see EOF, not a summary.
        let report = server.halt().expect("halt yields the report");
        assert_eq!(report.issued_ids, 25);
        let err = client.lease(0, 1).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ),
            "halted server should sever the client, got {err:?}"
        );
        // The port is free again: a new server can bind-and-halt cleanly.
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let again = TcpServer::bind(&addr.to_string(), config).expect("rebind after halt");
        assert!(again.halt().is_some());
    }

    #[test]
    fn remote_halt_is_the_crash_lever_over_the_wire() {
        let (server, space) = server(36);
        let addr = server.local_addr();
        let client = Client::connect(addr, space).unwrap();
        assert_eq!(client.lease(0, 25).unwrap().granted, 25);
        let watcher = Client::connect(addr, space).unwrap();
        client.halt().unwrap();
        // Siblings are severed, no summary anywhere, and join() has no
        // report to hand back — exactly like an in-process halt.
        let err = watcher.lease(0, 1).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ),
            "remote halt should sever siblings, got {err:?}"
        );
        assert!(server.join().is_none(), "halt must not produce a report");
    }

    #[test]
    fn sibling_connections_are_unblocked_by_shutdown() {
        let (server, space) = server(36);
        let addr = server.local_addr();
        let idle = RemoteClient::connect(addr, space).unwrap();
        let idle_v2 = Client::connect(addr, space).unwrap();
        let mut active = RemoteClient::connect(addr, space).unwrap();
        active.lease(0, 10).unwrap();
        active.shutdown().unwrap();
        // The idle connections were severed server-side; the server
        // joins without waiting on them.
        let report = server.join().expect("report despite idle siblings");
        assert_eq!(report.issued_ids, 10);
        drop(idle);
        drop(idle_v2);
    }

    #[test]
    fn oversized_lease_replies_become_typed_errors_not_corrupt_frames() {
        let space = IdSpace::with_bits(64).unwrap();
        let arc = uuidp_core::interval::Arc::new(space, uuidp_core::id::Id(0), 1);
        let huge = LeaseReply {
            tenant: 1,
            arcs: vec![arc; MAX_REPLY_ARCS + 1],
            granted: (MAX_REPLY_ARCS + 1) as u128,
            error: None,
            halted: false,
        };
        match lease_resp(&huge) {
            FrameBody::Error { message } => assert!(message.contains("arcs"), "{message}"),
            other => panic!("expected an error frame, got {}", other.name()),
        }
        // A heavily fragmented but frame-sized reply still encodes to a
        // decodable frame.
        let ok = LeaseReply {
            tenant: 1,
            arcs: vec![arc; 10_000],
            granted: 10_000,
            error: None,
            halted: false,
        };
        let bytes = frame::encode_frame(3, &lease_resp(&ok));
        assert!(frame::decode_frame(&bytes).unwrap().is_some());
    }

    #[test]
    fn point_fragmented_random_leases_cross_the_v2_wire() {
        // The Random algorithm leases one arc per ID — the worst-case
        // reply shape for the framed protocol.
        let space = IdSpace::with_bits(24).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Random, space);
        let server = TcpServer::bind("127.0.0.1:0", config).unwrap();
        let client = Client::connect(server.local_addr(), space).unwrap();
        let lease = client.lease(0, 3000).unwrap();
        assert_eq!(lease.granted, 3000);
        assert!(
            lease.arcs.len() >= 2900,
            "random leases should fragment per ID, got {} arcs",
            lease.arcs.len()
        );
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn metrics_scrape_works_over_both_protocols() {
        for proto in [ProtoVersion::V1, ProtoVersion::V2] {
            let (server, space) = server(40);
            let mut client = DialedClient::connect(server.local_addr(), space, proto).unwrap();
            assert_eq!(client.lease(2, 64).unwrap().granted, 64, "{proto}");
            let text = client.metrics().unwrap();
            let families = uuidp_obs::parse_exposition(&text);
            assert_eq!(
                families.get("uuidp_ids_issued_total"),
                Some(&64.0),
                "{proto}: {text}"
            );
            assert_eq!(families.get("uuidp_leases_total"), Some(&1.0), "{proto}");
            assert!(
                families.contains_key("uuidp_lease_latency_ns_count"),
                "{proto}: histogram family missing from scrape:\n{text}"
            );
            // Scrapes are monotone: more work, bigger counters.
            assert_eq!(client.lease(2, 36).unwrap().granted, 36, "{proto}");
            let again = uuidp_obs::parse_exposition(&client.metrics().unwrap());
            assert_eq!(again.get("uuidp_ids_issued_total"), Some(&100.0), "{proto}");
            client.shutdown().unwrap();
            server.join().unwrap();
        }
    }

    #[test]
    fn disabled_metrics_surface_reports_typed_errors_on_both_protocols() {
        let space = IdSpace::with_bits(40).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let options = ServerOptions {
            metrics: false,
            ..ServerOptions::default()
        };
        let server = TcpServer::bind_with("127.0.0.1:0", config, options).unwrap();
        let addr = server.local_addr();
        let mut v1 = RemoteClient::connect(addr, space).unwrap();
        let err = v1.metrics().unwrap_err();
        assert!(err.to_string().contains("disabled"), "got: {err}");
        let v2 = Client::connect(addr, space).unwrap();
        let err = v2.metrics().unwrap_err();
        assert!(err.to_string().contains("disabled"), "got: {err}");
        // Both connections survived the refusal.
        assert_eq!(v1.lease(0, 5).unwrap().granted, 5);
        assert_eq!(v2.lease(1, 5).unwrap().granted, 5);
        v1.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn dialed_client_serves_both_protocols_identically() {
        for proto in [ProtoVersion::V1, ProtoVersion::V2] {
            let (server, space) = server(40);
            let mut client = DialedClient::connect(server.local_addr(), space, proto).unwrap();
            assert_eq!(client.protocol(), proto);
            let lease = client.lease(5, 64).unwrap();
            assert_eq!(lease.granted, 64, "{proto}");
            client.reset(5).unwrap();
            client.drain().unwrap();
            let summary = client.shutdown().unwrap();
            assert_eq!(summary.issued_ids, 64, "{proto}");
            assert_eq!(summary.leases, 1, "{proto}");
            server.join().unwrap();
        }
    }
}
