//! The `uuidp` service line protocol: one command per line in, one
//! reply line per command out, UTF-8, newline-framed. The same grammar
//! is spoken on stdin by `uuidp serve` and over TCP by the
//! [`net`](crate::net) front-end, so everything here is pure
//! parse/render code shared by both sides of the wire.
//!
//! ## Commands
//!
//! | Line | Meaning | Reply |
//! |------|---------|-------|
//! | `<tenant> <count>` or `lease <tenant> <count>` | lease `count` IDs for `tenant` | `lease tenant=T granted=G arcs=S+L,S+L[ error=E]` |
//! | `reset <tenant>` | recycle the tenant's generator into a new epoch | `reset tenant=T` |
//! | `drain` | block until all prior requests are processed | `drained` |
//! | `metrics` | scrape the registry (Prometheus text exposition) | multi-line exposition, terminated by `# EOF` |
//! | `quit` / `exit` | close this connection (EOF works too) | — |
//! | `shutdown` | stop the whole service, report totals | `bye issued=… dup=…` (see [`render_summary`]) |
//!
//! Malformed lines get `error: <message>` and the connection stays up.
//! Lease arcs are rendered `start+len` in emission order, comma-joined
//! (empty after `arcs=` when nothing was granted).

use std::fmt::Write as _;

use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::Arc;

use crate::service::{LeaseReply, ServiceReport};

/// A parsed protocol command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Lease `count` IDs for `tenant`.
    Lease {
        /// Requesting tenant.
        tenant: u64,
        /// IDs requested.
        count: u128,
    },
    /// Recycle `tenant`'s generator into a fresh epoch.
    Reset {
        /// Tenant to recycle.
        tenant: u64,
    },
    /// Block until every previously submitted request is processed.
    Drain,
    /// Scrape the metric registry: the reply is a multi-line
    /// Prometheus-style text exposition terminated by a `# EOF` line
    /// (the only multi-line reply in the v1 grammar, so the sentinel
    /// is what lets a line-at-a-time client find the end).
    Metrics,
    /// Close this connection; the service keeps running.
    Quit,
    /// Stop the whole service and reply with the shutdown summary.
    Shutdown,
}

impl Command {
    /// Parses one protocol line. `Ok(None)` is a blank line (no reply
    /// expected); `Err` carries the message for an `error:` reply.
    pub fn parse(line: &str) -> Result<Option<Command>, String> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            [] => Ok(None),
            ["quit" | "exit"] => Ok(Some(Command::Quit)),
            ["shutdown"] => Ok(Some(Command::Shutdown)),
            ["drain"] => Ok(Some(Command::Drain)),
            ["metrics"] => Ok(Some(Command::Metrics)),
            ["reset", tenant] => match tenant.parse::<u64>() {
                Ok(tenant) => Ok(Some(Command::Reset { tenant })),
                Err(_) => Err(format!("bad tenant `{tenant}`")),
            },
            ["lease", tenant, count] | [tenant, count] => {
                match (tenant.parse::<u64>(), count.parse::<u128>()) {
                    (Ok(tenant), Ok(count)) => Ok(Some(Command::Lease { tenant, count })),
                    _ => Err("expected `<tenant> <count>`".into()),
                }
            }
            _ => Err(
                "expected `[lease] <tenant> <count>` | `reset <tenant>` | `drain` | `metrics` | `quit` | `shutdown`"
                    .into(),
            ),
        }
    }
}

/// Renders the reply line for a served lease.
pub fn render_lease(reply: &LeaseReply) -> String {
    let mut out = format!(
        "lease tenant={} granted={} arcs=",
        reply.tenant, reply.granted
    );
    for (i, a) in reply.arcs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}+{}", a.start.value(), a.len);
    }
    if let Some(e) = &reply.error {
        let _ = write!(out, " error={e}");
    }
    out
}

/// A lease reply as reconstructed on the client side of the wire — the
/// same typed [`uuidp_client::Lease`] the v2 binary client returns, so
/// consumers are protocol-agnostic. The server's typed `GeneratorError`
/// travels as its display text either way.
pub type WireLease = uuidp_client::Lease;

/// Parses a [`render_lease`] line back into its parts.
pub fn parse_lease_line(line: &str, space: IdSpace) -> Result<WireLease, String> {
    let rest = line
        .strip_prefix("lease ")
        .ok_or_else(|| format!("not a lease reply: `{line}`"))?;
    let (fields, error) = match rest.split_once(" error=") {
        Some((f, e)) => (f, Some(e.to_string())),
        None => (rest, None),
    };
    let mut tenant = None;
    let mut granted = None;
    let mut arcs = Vec::new();
    for field in fields.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("bad field `{field}`"))?;
        match key {
            "tenant" => tenant = Some(value.parse().map_err(|_| "bad tenant".to_string())?),
            "granted" => granted = Some(value.parse().map_err(|_| "bad granted".to_string())?),
            "arcs" => {
                for part in value.split(',').filter(|p| !p.is_empty()) {
                    let (start, len) = part
                        .split_once('+')
                        .ok_or_else(|| format!("bad arc `{part}`"))?;
                    let start: u128 = start.parse().map_err(|_| "bad arc start".to_string())?;
                    let len: u128 = len.parse().map_err(|_| "bad arc len".to_string())?;
                    // Validate before constructing: `Arc::new` asserts on
                    // these, and a garbled reply (or a client whose
                    // `space` mismatches the server's) must surface as an
                    // error, not a panic.
                    if start >= space.size() || len < 1 || len > space.size() {
                        return Err(format!("arc `{part}` does not fit universe {space}"));
                    }
                    arcs.push(Arc::new(space, Id(start), len));
                }
            }
            other => return Err(format!("unknown lease field `{other}`")),
        }
    }
    Ok(WireLease {
        tenant: tenant.ok_or("missing tenant")?,
        granted: granted.ok_or("missing granted")?,
        arcs,
        error,
    })
}

/// A service summary as it crosses the wire: the aggregate totals of a
/// [`ServiceReport`] — the same typed [`uuidp_client::Summary`] the v2
/// binary client returns. Per-thread audit detail stays server-side;
/// the wire carries the merged view (which is why an [`AuditReport`]
/// rebuilt from this has an empty `per_thread`).
///
/// [`AuditReport`]: crate::service::AuditReport
pub type WireSummary = uuidp_client::Summary;

/// Projects a [`ServiceReport`] onto its wire summary — the one place
/// the numbers are chosen, so the v1 `bye` line and the v2 summary
/// frame can never disagree about the same shutdown.
pub fn wire_summary(report: &ServiceReport) -> WireSummary {
    WireSummary {
        issued_ids: report.issued_ids,
        leases: report.leases,
        errors: report.errors,
        p50_ns: report.latency.quantile_ns(0.50),
        p99_ns: report.latency.quantile_ns(0.99),
        p999_ns: report.latency.quantile_ns(0.999),
        mean_ns: report.latency.mean_ns(),
        duplicate_ids: report.audit.counts.duplicate_ids,
        flagged_records: report.audit.counts.flagged_records,
        recorded_ids: report.audit.counts.recorded_ids,
        recorded_arcs: report.audit.counts.recorded_arcs,
        records: report.audit.records,
        max_lag_ns: report.audit.max_lag.as_nanos(),
        mean_lag_ns: report.audit.mean_lag_ns,
        audit_threads: report.audit.per_thread.len(),
    }
}

/// Renders the one-line `bye …` shutdown summary.
pub fn render_summary(report: &ServiceReport) -> String {
    let s = wire_summary(report);
    format!(
        "bye issued={} leases={} errors={} p50_ns={:.1} p99_ns={:.1} p999_ns={:.1} \
         mean_ns={:.1} dup={} flagged={} rec_ids={} rec_arcs={} records={} max_lag_ns={} \
         mean_lag_ns={:.1} audit_threads={}",
        s.issued_ids,
        s.leases,
        s.errors,
        s.p50_ns,
        s.p99_ns,
        s.p999_ns,
        s.mean_ns,
        s.duplicate_ids,
        s.flagged_records,
        s.recorded_ids,
        s.recorded_arcs,
        s.records,
        s.max_lag_ns,
        s.mean_lag_ns,
        s.audit_threads,
    )
}

/// Parses a [`render_summary`] line.
pub fn parse_summary(line: &str) -> Result<WireSummary, String> {
    let rest = line
        .strip_prefix("bye ")
        .ok_or_else(|| format!("not a shutdown summary: `{line}`"))?;
    let mut summary = WireSummary {
        issued_ids: 0,
        leases: 0,
        errors: 0,
        p50_ns: 0.0,
        p99_ns: 0.0,
        p999_ns: 0.0,
        mean_ns: 0.0,
        duplicate_ids: 0,
        flagged_records: 0,
        recorded_ids: 0,
        recorded_arcs: 0,
        records: 0,
        max_lag_ns: 0,
        mean_lag_ns: 0.0,
        audit_threads: 0,
    };
    let mut seen = 0u32;
    for field in rest.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("bad field `{field}`"))?;
        let bad = |what: &str| format!("bad {what} `{value}`");
        seen += 1;
        match key {
            "issued" => summary.issued_ids = value.parse().map_err(|_| bad(key))?,
            "leases" => summary.leases = value.parse().map_err(|_| bad(key))?,
            "errors" => summary.errors = value.parse().map_err(|_| bad(key))?,
            "p50_ns" => summary.p50_ns = value.parse().map_err(|_| bad(key))?,
            "p99_ns" => summary.p99_ns = value.parse().map_err(|_| bad(key))?,
            "p999_ns" => summary.p999_ns = value.parse().map_err(|_| bad(key))?,
            "mean_ns" => summary.mean_ns = value.parse().map_err(|_| bad(key))?,
            "dup" => summary.duplicate_ids = value.parse().map_err(|_| bad(key))?,
            "flagged" => summary.flagged_records = value.parse().map_err(|_| bad(key))?,
            "rec_ids" => summary.recorded_ids = value.parse().map_err(|_| bad(key))?,
            "rec_arcs" => summary.recorded_arcs = value.parse().map_err(|_| bad(key))?,
            "records" => summary.records = value.parse().map_err(|_| bad(key))?,
            "max_lag_ns" => summary.max_lag_ns = value.parse().map_err(|_| bad(key))?,
            "mean_lag_ns" => summary.mean_lag_ns = value.parse().map_err(|_| bad(key))?,
            "audit_threads" => summary.audit_threads = value.parse().map_err(|_| bad(key))?,
            other => return Err(format!("unknown summary field `{other}`")),
        }
    }
    if seen < 15 {
        return Err(format!("summary has {seen} of 15 fields: `{line}`"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LatencyHistogram;
    use crate::service::AuditReport;
    use std::time::Duration;
    use uuidp_sim::audit::AuditCounts;

    fn space() -> IdSpace {
        IdSpace::with_bits(32).unwrap()
    }

    #[test]
    fn commands_parse_the_whole_grammar() {
        assert_eq!(Command::parse("  ").unwrap(), None);
        assert_eq!(
            Command::parse("7 100").unwrap(),
            Some(Command::Lease {
                tenant: 7,
                count: 100
            })
        );
        assert_eq!(
            Command::parse("lease 7 100").unwrap(),
            Some(Command::Lease {
                tenant: 7,
                count: 100
            })
        );
        assert_eq!(
            Command::parse("reset 3").unwrap(),
            Some(Command::Reset { tenant: 3 })
        );
        assert_eq!(Command::parse("drain").unwrap(), Some(Command::Drain));
        assert_eq!(Command::parse("metrics").unwrap(), Some(Command::Metrics));
        assert_eq!(Command::parse("quit").unwrap(), Some(Command::Quit));
        assert_eq!(Command::parse("exit").unwrap(), Some(Command::Quit));
        assert_eq!(Command::parse("shutdown").unwrap(), Some(Command::Shutdown));
        assert!(Command::parse("reset x").is_err());
        assert!(Command::parse("a b").is_err());
        assert!(Command::parse("one two three four").is_err());
    }

    #[test]
    fn lease_lines_round_trip() {
        let s = space();
        let reply = LeaseReply {
            tenant: 9,
            arcs: vec![Arc::new(s, Id(100), 50), Arc::new(s, Id(4000), 7)],
            granted: 57,
            error: None,
            halted: false,
        };
        let line = render_lease(&reply);
        let wire = parse_lease_line(&line, s).unwrap();
        assert_eq!(wire.tenant, 9);
        assert_eq!(wire.granted, 57);
        assert_eq!(wire.arcs, reply.arcs);
        assert_eq!(wire.error, None);
    }

    #[test]
    fn lease_lines_carry_errors_and_empty_arcs() {
        let s = space();
        let reply = LeaseReply {
            tenant: 1,
            arcs: vec![],
            granted: 0,
            error: Some(uuidp_core::traits::GeneratorError::Exhausted { generated: 16 }),
            halted: false,
        };
        let line = render_lease(&reply);
        let wire = parse_lease_line(&line, s).unwrap();
        assert_eq!(wire.granted, 0);
        assert!(wire.arcs.is_empty());
        assert!(wire.error.is_some(), "error lost: {line}");
    }

    #[test]
    fn garbled_arcs_error_instead_of_panicking() {
        let s = IdSpace::with_bits(16).unwrap(); // m = 65536
        for bad in [
            "lease tenant=1 granted=5 arcs=0+0",      // zero length
            "lease tenant=1 granted=5 arcs=70000+5",  // start outside m
            "lease tenant=1 granted=5 arcs=0+100000", // len exceeds m
        ] {
            let err = parse_lease_line(bad, s).unwrap_err();
            assert!(err.contains("does not fit"), "{bad}: {err}");
        }
    }

    #[test]
    fn summaries_round_trip() {
        let mut latency = LatencyHistogram::new();
        latency.record_ns(1000);
        latency.record_ns(3000);
        let report = ServiceReport {
            issued_ids: 12345,
            leases: 67,
            errors: 1,
            latency,
            audit: AuditReport {
                counts: AuditCounts {
                    duplicate_ids: 11,
                    flagged_records: 2,
                    recorded_ids: 12345,
                    recorded_arcs: 80,
                },
                max_lag: Duration::from_nanos(5555),
                mean_lag_ns: 1234.5,
                records: 70,
                per_thread: vec![],
            },
            uptime: Duration::from_secs(1),
        };
        let line = render_summary(&report);
        let wire = parse_summary(&line).unwrap();
        assert_eq!(wire.issued_ids, 12345);
        assert_eq!(wire.leases, 67);
        assert_eq!(wire.errors, 1);
        assert_eq!(wire.duplicate_ids, 11);
        assert_eq!(wire.recorded_arcs, 80);
        assert_eq!(wire.max_lag_ns, 5555);
        assert!((wire.mean_lag_ns - 1234.5).abs() < 0.1);
        assert!(wire.p99_ns >= wire.p50_ns);
        assert!(parse_summary("bye issued=1").is_err(), "truncated summary");
        assert!(parse_summary("nope").is_err());
    }
}
