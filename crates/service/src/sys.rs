//! Raw Linux syscall surface for the readiness-driven reactor.
//!
//! The build environment has no crate registry, so the usual `mio` /
//! `libc` route is closed — instead this module declares the handful of
//! symbols the reactor needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, plus `setrlimit` for the bench's fd
//! budget) directly against the C library that `std` already links.
//! Everything is wrapped in owned-fd types so a leaked or double-closed
//! descriptor is unrepresentable, and every fallible call reports
//! through `io::Error::last_os_error()` like `std` itself would.
//!
//! The whole module is compiled only on Linux without the
//! `poll-fallback` feature; every consumer goes through
//! [`crate::reactor`], which falls back to a portable poll rotation
//! when this module is absent.

use std::ffi::{c_int, c_uint};
use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// One `struct epoll_event`. Packed on x86 (only) to match the kernel
/// ABI — on every other architecture the natural `repr(C)` layout is
/// the ABI.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// The token registered with the fd (we store connection ids).
    pub data: u64,
}

/// Readiness: there is data to read (or an EOF to observe).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the send buffer has room again.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance (level-triggered use only).
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` under `token`, read interest always, write
    /// interest when `writable`.
    pub fn add(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest(writable), token)
    }

    /// Re-arms `fd`'s interest set (used to toggle write readiness).
    pub fn modify(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest(writable), token)
    }

    /// Removes `fd` from the interest set.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL on every kernel ≥2.6.9,
        // but a null pointer is rejected by some older ABIs — pass a
        // dummy.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events`; `timeout_ms < 0` blocks
    /// forever. Returns the number of events filled. `EINTR` retries.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

fn interest(writable: bool) -> u32 {
    let mut events = EPOLLIN | EPOLLRDHUP;
    if writable {
        events |= EPOLLOUT;
    }
    events
}

/// An owned eventfd used to wake a blocked `epoll_wait` from another
/// thread (the reactor registers it like any other readable fd).
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// A nonblocking close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Adds 1 to the counter, making the fd readable. Best-effort: a
    /// full counter (already signalled 2^64−2 times) still wakes.
    pub fn signal(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.fd.as_raw_fd(), one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Resets the counter to 0 (consumes the pending wakeups).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), 8) };
    }
}

/// Raises `RLIMIT_NOFILE`'s soft limit toward `target` (capped at the
/// hard limit, which root may also raise). Returns the resulting soft
/// limit. The 10k-connection bench needs ~3 fds per connection in one
/// process; everything else in the repo fits any default limit.
pub fn raise_nofile(target: u64) -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= target {
        return Ok(lim.rlim_cur);
    }
    if lim.rlim_max < target {
        // Root can lift the hard limit too; a non-root process keeps
        // whatever ceiling it was given.
        let lifted = Rlimit {
            rlim_cur: target,
            rlim_max: target,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &lifted) } == 0 {
            return Ok(target);
        }
    }
    let raised = Rlimit {
        rlim_cur: target.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &raised) })?;
    Ok(raised.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn eventfd_wakes_a_blocked_wait() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw(), u64::MAX, false).unwrap();
        // Not yet signalled: a zero-timeout wait sees nothing.
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        efd.signal();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, u64::MAX);
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drain must reset");
    }

    #[test]
    fn socket_readiness_is_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), 7, false).unwrap();
        tx.write_all(b"ping").unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);
        // Level-triggered: unread data keeps reporting readiness.
        let n = ep.wait(&mut events, 0).unwrap();
        assert_eq!(n, 1, "level-triggered readiness must persist");
        ep.del(rx.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn raise_nofile_is_monotone() {
        // Whatever the starting limits, asking for a modest target must
        // succeed and never lower the soft limit.
        let before = raise_nofile(0).unwrap();
        let after = raise_nofile(before).unwrap();
        assert!(after >= before);
    }
}
