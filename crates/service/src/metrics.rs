//! Cheap fixed-footprint latency accounting for the issuing hot path.
//!
//! A [`LatencyHistogram`] is 64 power-of-two buckets of nanosecond
//! costs: recording is a `leading_zeros` and an increment (no allocation,
//! no locking — each worker owns one and they are merged at shutdown),
//! and quantiles are read back with sub-bucket linear interpolation,
//! which is plenty of resolution for p50/p99 reporting where the answer
//! spans decades, not percent.

use std::time::Duration;

/// Power-of-two-bucketed nanosecond histogram.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples with `floor(log2(ns)) == i` (bucket 0
    /// also holds `ns == 0`).
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = (63u32.saturating_sub(ns.leading_zeros())) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one sampled [`Duration`].
    pub fn record(&mut self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds `other` into `self` (shutdown-time aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean cost in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in nanoseconds, linearly
    /// interpolated within the containing power-of-two bucket. Returns 0
    /// when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = if i >= 63 {
                    self.max_ns as f64
                } else {
                    (1u128 << (i + 1)) as f64
                };
                let into = (rank - seen as f64) / c as f64;
                return lo + (hi - lo) * into;
            }
            seen += c;
        }
        self.max_ns as f64
    }
}

/// Per-fault-class outcome counters for a chaos-exposed driver: every
/// failed attempt is classified by what it implies about server-side
/// effects (see `uuidp_client::ErrorClass`) and every recovery action
/// is counted, so the report can say not just *how many* requests
/// suffered but *how* they suffered and what it cost to absorb them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Attempts that failed before the request could have been
    /// processed (refused dials, failed handshakes, torn writes).
    pub retry_safe: u64,
    /// Attempts whose reply was lost after the request may have been
    /// processed — each one is a potential leaked lease.
    pub lease_in_doubt: u64,
    /// Protocol-level failures where retrying the same bytes is
    /// pointless.
    pub fatal: u64,
    /// Retries actually performed (every one a recovered attempt).
    pub retries: u64,
    /// Reconnections performed (connection replaced mid-run).
    pub reconnects: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub exhausted: u64,
}

impl FaultCounters {
    /// Classifies `err` and bumps the matching class counter.
    pub fn observe(&mut self, err: &std::io::Error) {
        match uuidp_client::classify(err) {
            uuidp_client::ErrorClass::RetrySafe => self.retry_safe += 1,
            uuidp_client::ErrorClass::LeaseInDoubt => self.lease_in_doubt += 1,
            uuidp_client::ErrorClass::Fatal => self.fatal += 1,
        }
    }

    /// Total failed attempts across all classes.
    pub fn failed_attempts(&self) -> u64 {
        self.retry_safe + self.lease_in_doubt + self.fatal
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.retry_safe += other.retry_safe;
        self.lease_in_doubt += other.lease_in_doubt;
        self.fatal += other.fatal;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        self.exhausted += other.exhausted;
    }

    /// Renders the SLO / error-budget section shared by the stress and
    /// fleet reports: availability against a 99.9% success objective,
    /// with the per-fault-class breakdown underneath.
    ///
    /// `requests` is the number of *logical* requests the driver
    /// submitted; a request that succeeded on retry still counts as
    /// served — that is the whole point of graceful degradation.
    pub fn render_slo(&self, requests: u64) -> String {
        use std::fmt::Write as _;
        let served = requests.saturating_sub(self.exhausted);
        let success_pm = if requests == 0 {
            1000.0
        } else {
            served as f64 / requests as f64 * 1000.0
        };
        // The 99.9% objective expressed as an error budget of failed
        // requests; consumed = abandoned requests against it.
        let budget = requests as f64 * 0.001;
        let consumed = if budget == 0.0 {
            0.0
        } else {
            self.exhausted as f64 / budget * 100.0
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  slo:         {served}/{requests} served ({:.2}‰), error budget (99.9%) {consumed:.0}% consumed",
            success_pm
        );
        let _ = writeln!(
            out,
            "  fault-class: retry-safe {} | lease-in-doubt {} | fatal {}",
            self.retry_safe, self.lease_in_doubt, self.fatal
        );
        let _ = write!(
            out,
            "  recovery:    {} retries, {} reconnects, {} abandoned",
            self.retries, self.reconnects, self.exhausted
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5);
        assert!((128.0..=512.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 65_536.0, "p99 = {p99}");
        assert!(h.mean_ns() > 0.0);
        assert_eq!(h.max_ns(), 100_000);
    }

    #[test]
    fn fault_counters_classify_and_merge() {
        let mut c = FaultCounters::default();
        c.observe(&std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "refused",
        ));
        c.observe(&uuidp_client::broken(
            "reply lost",
            uuidp_client::ErrorClass::LeaseInDoubt,
        ));
        c.observe(&std::io::Error::new(std::io::ErrorKind::InvalidData, "bad"));
        assert_eq!(c.retry_safe, 1);
        assert_eq!(c.lease_in_doubt, 1);
        assert_eq!(c.fatal, 1);
        assert_eq!(c.failed_attempts(), 3);
        let mut d = FaultCounters {
            retries: 5,
            exhausted: 1,
            ..FaultCounters::default()
        };
        d.merge(&c);
        assert_eq!(d.failed_attempts(), 3);
        assert_eq!(d.retries, 5);
        let slo = d.render_slo(1000);
        assert!(slo.contains("999/1000"), "{slo}");
        assert!(slo.contains("lease-in-doubt 1"), "{slo}");
        assert!(slo.contains("5 retries"), "{slo}");
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_ns(10);
        b.record_ns(1000);
        b.record_ns(0); // bucket 0 edge case
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 1000);
    }
}
