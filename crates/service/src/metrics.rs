//! Cheap fixed-footprint latency accounting for the issuing hot path.
//!
//! A [`LatencyHistogram`] is 64 power-of-two buckets of nanosecond
//! costs: recording is a `leading_zeros` and an increment (no allocation,
//! no locking — each worker owns one and they are merged at shutdown),
//! and quantiles are read back with sub-bucket linear interpolation,
//! which is plenty of resolution for p50/p99 reporting where the answer
//! spans decades, not percent.
//!
//! The histogram itself now lives in [`uuidp_obs`] (as
//! [`uuidp_obs::Histogram`], with an atomic sibling for shared
//! recording) so the whole stack shares one streaming implementation;
//! this module re-exports it under its historical service-side name and
//! keeps the driver-facing [`FaultCounters`] / SLO rendering.

/// Power-of-two-bucketed nanosecond histogram — the shared streaming
/// implementation from the observability core, re-exported under its
/// historical service name.
pub use uuidp_obs::Histogram as LatencyHistogram;

/// Per-fault-class outcome counters for a chaos-exposed driver: every
/// failed attempt is classified by what it implies about server-side
/// effects (see `uuidp_client::ErrorClass`) and every recovery action
/// is counted, so the report can say not just *how many* requests
/// suffered but *how* they suffered and what it cost to absorb them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Attempts that failed before the request could have been
    /// processed (refused dials, failed handshakes, torn writes).
    pub retry_safe: u64,
    /// Attempts whose reply was lost after the request may have been
    /// processed — each one is a potential leaked lease.
    pub lease_in_doubt: u64,
    /// Protocol-level failures where retrying the same bytes is
    /// pointless.
    pub fatal: u64,
    /// Retries actually performed (every one a recovered attempt).
    pub retries: u64,
    /// Reconnections performed (connection replaced mid-run).
    pub reconnects: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub exhausted: u64,
}

impl FaultCounters {
    /// Classifies `err` and bumps the matching class counter.
    pub fn observe(&mut self, err: &std::io::Error) {
        match uuidp_client::classify(err) {
            uuidp_client::ErrorClass::RetrySafe => self.retry_safe += 1,
            uuidp_client::ErrorClass::LeaseInDoubt => self.lease_in_doubt += 1,
            uuidp_client::ErrorClass::Fatal => self.fatal += 1,
        }
    }

    /// Total failed attempts across all classes.
    pub fn failed_attempts(&self) -> u64 {
        self.retry_safe + self.lease_in_doubt + self.fatal
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.retry_safe += other.retry_safe;
        self.lease_in_doubt += other.lease_in_doubt;
        self.fatal += other.fatal;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        self.exhausted += other.exhausted;
    }

    /// Renders the SLO / error-budget section shared by the stress and
    /// fleet reports: availability against a 99.9% success objective,
    /// with the per-fault-class breakdown underneath.
    ///
    /// `requests` is the number of *logical* requests the driver
    /// submitted; a request that succeeded on retry still counts as
    /// served — that is the whole point of graceful degradation.
    pub fn render_slo(&self, requests: u64) -> String {
        use std::fmt::Write as _;
        let served = requests.saturating_sub(self.exhausted);
        let success_pm = if requests == 0 {
            1000.0
        } else {
            served as f64 / requests as f64 * 1000.0
        };
        // The 99.9% objective expressed as an error budget of failed
        // requests; consumed = abandoned requests against it.
        let budget = requests as f64 * 0.001;
        let consumed = if budget == 0.0 {
            0.0
        } else {
            self.exhausted as f64 / budget * 100.0
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  slo:         {served}/{requests} served ({:.2}‰), error budget (99.9%) {consumed:.0}% consumed",
            success_pm
        );
        let _ = writeln!(
            out,
            "  fault-class: retry-safe {} | lease-in-doubt {} | fatal {}",
            self.retry_safe, self.lease_in_doubt, self.fatal
        );
        let _ = write!(
            out,
            "  recovery:    {} retries, {} reconnects, {} abandoned",
            self.retries, self.reconnects, self.exhausted
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5);
        assert!((128.0..=512.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 65_536.0, "p99 = {p99}");
        assert!(h.mean_ns() > 0.0);
        assert_eq!(h.max_ns(), 100_000);
    }

    #[test]
    fn fault_counters_classify_and_merge() {
        let mut c = FaultCounters::default();
        c.observe(&std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "refused",
        ));
        c.observe(&uuidp_client::broken(
            "reply lost",
            uuidp_client::ErrorClass::LeaseInDoubt,
        ));
        c.observe(&std::io::Error::new(std::io::ErrorKind::InvalidData, "bad"));
        assert_eq!(c.retry_safe, 1);
        assert_eq!(c.lease_in_doubt, 1);
        assert_eq!(c.fatal, 1);
        assert_eq!(c.failed_attempts(), 3);
        let mut d = FaultCounters {
            retries: 5,
            exhausted: 1,
            ..FaultCounters::default()
        };
        d.merge(&c);
        assert_eq!(d.failed_attempts(), 3);
        assert_eq!(d.retries, 5);
        let slo = d.render_slo(1000);
        assert!(slo.contains("999/1000"), "{slo}");
        assert!(slo.contains("lease-in-doubt 1"), "{slo}");
        assert!(slo.contains("5 retries"), "{slo}");
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_ns(10);
        b.record_ns(1000);
        b.record_ns(0); // bucket 0 edge case
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 1000);
    }

    #[test]
    fn empty_window_percentiles_are_finite_zeros() {
        // A chaos-heavy run can end with zero recorded samples; every
        // derived number must stay finite (no NaN in reports).
        let h = LatencyHistogram::new();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile_ns(q), 0.0, "q={q}");
        }
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn single_sample_windows_never_produce_nan() {
        let mut h = LatencyHistogram::new();
        h.record_ns(4096);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let v = h.quantile_ns(q);
            assert!(v.is_finite(), "q={q} -> {v}");
            assert!((4096.0..=8192.0).contains(&v), "q={q} -> {v}");
        }
        assert!((h.mean_ns() - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn slo_rendering_survives_zero_request_windows() {
        // `requests == 0` (every connect refused before a single
        // logical request) must not divide by zero.
        let c = FaultCounters {
            retry_safe: 5,
            exhausted: 0,
            ..FaultCounters::default()
        };
        let slo = c.render_slo(0);
        assert!(slo.contains("0/0 served"), "{slo}");
        assert!(!slo.contains("NaN") && !slo.contains("inf"), "{slo}");
        // And an all-abandoned window stays finite too.
        let c = FaultCounters {
            exhausted: 3,
            ..FaultCounters::default()
        };
        let slo = c.render_slo(3);
        assert!(slo.contains("0/3 served"), "{slo}");
        assert!(!slo.contains("NaN") && !slo.contains("inf"), "{slo}");
    }
}
