//! # uuidp-adversary — demand profiles and adversaries for the UUIDP game
//!
//! The paper evaluates ID-generation algorithms against two adversary
//! classes:
//!
//! * **oblivious** — the demand profile `D = (d₁, …, dₙ)` is fixed before
//!   the game ([`oblivious::Oblivious`], built from a
//!   [`profile::DemandProfile`]);
//! * **adaptive** — the adversary watches every produced ID and decides the
//!   next request on the fly ([`adaptive::AdaptiveAdversary`]).
//!
//! Concrete adaptive strategies:
//!
//! | Strategy | Target | Paper source |
//! |----------|--------|--------------|
//! | [`nearest_pair::NearestPair`] | Cluster | Lemma 7 (`Ω(n²d/m)`) |
//! | [`run_hunter::RunHunter`] | Cluster★ / run-structured | Theorem 8's threat model |
//! | [`flooder::BalancedFlood`], [`flooder::SkewedFlood`] | volume baselines | Corollary 5, §3.4 |
//! | [`semi_adaptive::FollowSequence`] | Bins(k), Bins★ | Theorem 11 (`fol(S)`) |
//!
//! Profile machinery ([`profile`]) covers the families the theorems
//! quantify over: `D1(n, d)`, `D∞(n, h)`, uniform profiles, the rounding
//! `D⁻` with rank distributions (Section 7.2), ε-goodness (Lemma 18), and
//! the hard distribution `Φ` (Theorem 10).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod flooder;
pub mod nearest_pair;
pub mod oblivious;
pub mod profile;
pub mod run_hunter;
pub mod semi_adaptive;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::adaptive::{Action, AdaptiveAdversary, AdversarySpec, GameView};
    pub use crate::flooder::{BalancedFlood, SkewedFlood};
    pub use crate::nearest_pair::NearestPair;
    pub use crate::oblivious::{Oblivious, RequestOrder};
    pub use crate::profile::{power_law, sample_composition, DemandProfile, PhiDistribution};
    pub use crate::run_hunter::RunHunter;
    pub use crate::semi_adaptive::{FollowSequence, Step};
}
