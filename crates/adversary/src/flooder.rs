//! Flooding adversaries: simple request-volume attacks.
//!
//! These strategies ignore the produced IDs except to stop when a
//! collision appears (stop-on-collision is what separates them from plain
//! oblivious profiles in the competitive analysis — see Theorem 11's
//! semi-adaptive reduction). They serve as baselines in the adaptive
//! experiments:
//!
//! * [`BalancedFlood`] — spread `d` requests over `n` instances evenly;
//!   realizes the uniform profile, the worst case for Cluster obliviously.
//! * [`SkewedFlood`] — activate `n` instances, then pour the rest of the
//!   budget into one of them; realizes `(d−n+1, 1, …, 1)`, the profile on
//!   which Cluster's competitive ratio degenerates.

use crate::adaptive::{Action, AdaptiveAdversary, AdversarySpec, GameView};

/// Round-robin flood of `d` requests across `n` instances.
#[derive(Debug, Clone)]
pub struct BalancedFlood {
    n: usize,
    d: u128,
    stop_on_collision: bool,
}

impl BalancedFlood {
    /// A flood of `d ≥ n` total requests over `n ≥ 2` instances that stops
    /// as soon as a collision occurs.
    pub fn new(n: usize, d: u128) -> Self {
        assert!(n >= 2 && d >= n as u128);
        BalancedFlood {
            n,
            d,
            stop_on_collision: true,
        }
    }

    /// Same flood, but plays out the full budget regardless of collisions
    /// (useful when measuring worst-case rather than competitive metrics).
    pub fn ignoring_collisions(n: usize, d: u128) -> Self {
        assert!(n >= 2 && d >= n as u128);
        BalancedFlood {
            n,
            d,
            stop_on_collision: false,
        }
    }
}

impl AdversarySpec for BalancedFlood {
    fn name(&self) -> String {
        format!("balanced-flood(n={}, d={})", self.n, self.d)
    }

    fn spawn(&self, _seed: u64) -> Box<dyn AdaptiveAdversary> {
        Box::new(BalancedFloodRun {
            n: self.n,
            budget: self.d,
            stop_on_collision: self.stop_on_collision,
            cursor: 0,
        })
    }
}

struct BalancedFloodRun {
    n: usize,
    budget: u128,
    stop_on_collision: bool,
    cursor: usize,
}

impl AdaptiveAdversary for BalancedFloodRun {
    fn reset(&mut self, _seed: u64) {
        self.cursor = 0;
    }

    fn next_action(&mut self, view: &GameView<'_>) -> Action {
        if (self.stop_on_collision && view.collision) || view.total_requests >= self.budget {
            return Action::Stop;
        }
        if view.n() < self.n {
            return Action::Activate;
        }
        let i = self.cursor % self.n;
        self.cursor += 1;
        Action::Request(i)
    }
}

/// Activate `n` instances, then pour the remaining budget into instance 0.
#[derive(Debug, Clone)]
pub struct SkewedFlood {
    n: usize,
    d: u128,
}

impl SkewedFlood {
    /// A skewed flood with `n ≥ 2` instances and total budget `d ≥ n`.
    pub fn new(n: usize, d: u128) -> Self {
        assert!(n >= 2 && d >= n as u128);
        SkewedFlood { n, d }
    }
}

impl AdversarySpec for SkewedFlood {
    fn name(&self) -> String {
        format!("skewed-flood(n={}, d={})", self.n, self.d)
    }

    fn spawn(&self, _seed: u64) -> Box<dyn AdaptiveAdversary> {
        Box::new(SkewedFloodRun {
            n: self.n,
            budget: self.d,
        })
    }
}

struct SkewedFloodRun {
    n: usize,
    budget: u128,
}

impl AdaptiveAdversary for SkewedFloodRun {
    fn reset(&mut self, _seed: u64) {
        // Stateless between games: the strategy reads only the view.
    }

    fn next_action(&mut self, view: &GameView<'_>) -> Action {
        if view.collision || view.total_requests >= self.budget {
            return Action::Stop;
        }
        if view.n() < self.n {
            return Action::Activate;
        }
        Action::Request(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::id::{Id, IdSpace};

    fn drive(adv: &mut dyn AdaptiveAdversary, collide_at: Option<u128>) -> Vec<u128> {
        let space = IdSpace::new(1 << 20).unwrap();
        let mut histories: Vec<Vec<Id>> = Vec::new();
        let mut total = 0u128;
        loop {
            let collision = collide_at.is_some_and(|c| total >= c);
            let view = GameView {
                space,
                histories: &histories,
                collision,
                total_requests: total,
            };
            match adv.next_action(&view) {
                Action::Activate => histories.push(vec![Id(total)]),
                Action::Request(i) => histories[i].push(Id(total)),
                Action::Stop => break,
            }
            total += 1;
            assert!(total < 1 << 16, "runaway adversary");
        }
        histories.iter().map(|h| h.len() as u128).collect()
    }

    #[test]
    fn balanced_flood_realizes_uniform_profile() {
        let spec = BalancedFlood::new(4, 20);
        let profile = drive(spec.spawn(0).as_mut(), None);
        assert_eq!(profile, vec![5, 5, 5, 5]);
    }

    #[test]
    fn balanced_flood_uneven_budget() {
        let spec = BalancedFlood::new(3, 10);
        let profile = drive(spec.spawn(0).as_mut(), None);
        assert_eq!(profile, vec![4, 3, 3]);
    }

    #[test]
    fn balanced_flood_stops_on_collision() {
        let spec = BalancedFlood::new(3, 1000);
        let profile = drive(spec.spawn(0).as_mut(), Some(10));
        let total: u128 = profile.iter().sum();
        assert_eq!(total, 10, "must stop at the collision");
    }

    #[test]
    fn ignoring_collisions_plays_out_budget() {
        let spec = BalancedFlood::ignoring_collisions(2, 12);
        let profile = drive(spec.spawn(0).as_mut(), Some(4));
        assert_eq!(profile.iter().sum::<u128>(), 12);
    }

    #[test]
    fn skewed_flood_realizes_skewed_profile() {
        let spec = SkewedFlood::new(4, 20);
        let profile = drive(spec.spawn(0).as_mut(), None);
        assert_eq!(profile, vec![17, 1, 1, 1]);
    }
}
