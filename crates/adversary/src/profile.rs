//! Demand profiles and the profile families used throughout the paper.
//!
//! A demand profile `D = (d₁, …, dₙ)` says how many IDs the adversary
//! requests from each of `n` instances. The paper's analyses quantify over
//! structured families:
//!
//! * `D1(n, d)` — profiles with `n` entries summing to `d` (L1 ball);
//! * `D∞(n, h)` — profiles with at most `n` entries, each at most `h`;
//! * uniform profiles `(h, …, h)` — where Bins(h) is optimal (Lemma 16);
//! * the rounding `D⁻` and rank distributions of Section 7.2;
//! * ε-good/ε-bad profiles of Section 5.2 (Lemma 18);
//! * the hard distribution `Φ` over `(2^i, 2^j)` of Theorem 10.

use uuidp_core::id::IdSpace;
use uuidp_core::rng::{uniform_below, Xoshiro256pp};

/// A demand profile `(d₁, …, dₙ)`: entry `i` is the number of IDs requested
/// from instance `i`. Entries are positive (instances that receive no
/// request simply don't appear, as in the paper's model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemandProfile {
    demands: Vec<u128>,
}

impl DemandProfile {
    /// Builds a profile from per-instance demands.
    ///
    /// # Panics
    ///
    /// Panics if any entry is zero.
    pub fn new(demands: Vec<u128>) -> Self {
        assert!(
            demands.iter().all(|&d| d > 0),
            "demand profile entries must be positive"
        );
        DemandProfile { demands }
    }

    /// The uniform profile `(h, …, h)` with `n` entries.
    pub fn uniform(n: usize, h: u128) -> Self {
        assert!(h > 0);
        DemandProfile {
            demands: vec![h; n],
        }
    }

    /// The two-instance profile `(i, j)` from the competitive-analysis
    /// lower bounds.
    pub fn pair(i: u128, j: u128) -> Self {
        DemandProfile::new(vec![i, j])
    }

    /// The maximally skewed profile `(d − 1, 1)` from Section 3.4.
    pub fn skewed_pair(d: u128) -> Self {
        assert!(d >= 2);
        DemandProfile::new(vec![d - 1, 1])
    }

    /// Number of instances `n`.
    pub fn n(&self) -> usize {
        self.demands.len()
    }

    /// The entries.
    pub fn demands(&self) -> &[u128] {
        &self.demands
    }

    /// Demand of instance `i`.
    pub fn demand(&self, i: usize) -> u128 {
        self.demands[i]
    }

    /// `‖D‖₁` — total demand `d`.
    pub fn l1(&self) -> u128 {
        self.demands.iter().sum()
    }

    /// `‖D‖₂²` — sum of squared demands. Saturates at `u128::MAX`, which
    /// only matters for profiles no simulation could run anyway.
    pub fn l2_squared(&self) -> u128 {
        self.demands
            .iter()
            .fold(0u128, |acc, &d| acc.saturating_add(d.saturating_mul(d)))
    }

    /// `‖D‖∞` — maximum per-instance demand `h`.
    pub fn linf(&self) -> u128 {
        self.demands.iter().copied().max().unwrap_or(0)
    }

    /// Whether the profile is *trivial* (fewer than two instances), in
    /// which case collisions are impossible.
    pub fn is_trivial(&self) -> bool {
        self.demands.len() < 2
    }

    /// Membership in `D1(n, d)`.
    pub fn in_l1_family(&self, n: usize, d: u128) -> bool {
        self.n() == n && self.l1() == d
    }

    /// Membership in `D∞(n, h)` (at most `n` instances, each demand ≤ `h`).
    pub fn in_linf_family(&self, n: usize, h: u128) -> bool {
        self.n() <= n && self.linf() <= h
    }

    /// The paper's rounding `D⁻` (Section 7.2): round every entry down to a
    /// power of two; then, if there is a unique largest entry, reduce it to
    /// the second-largest entry.
    ///
    /// Example from the paper: `D = (9, 5, 4, 42) → D⁻ = (8, 4, 4, 8)`.
    pub fn rounded(&self) -> DemandProfile {
        let mut rounded: Vec<u128> = self.demands.iter().map(|&d| prev_power_of_two(d)).collect();
        if rounded.len() >= 2 {
            let mut sorted = rounded.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let (largest, second) = (sorted[0], sorted[1]);
            if largest > second {
                // Unique largest entry: the heavy instance is clipped.
                for r in rounded.iter_mut() {
                    if *r == largest {
                        *r = second;
                        break;
                    }
                }
            }
        }
        DemandProfile { demands: rounded }
    }

    /// The *rank distribution* `(s₁, …, s_k)` of a rounded profile: `sᵢ` is
    /// the number of times `2^(i−1)` occurs, and `2^(k−1)` is the largest
    /// entry. Entries must be powers of two (call [`rounded`](Self::rounded)
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if any entry is not a power of two.
    pub fn rank_distribution(&self) -> Vec<u128> {
        let k = self
            .demands
            .iter()
            .map(|&d| {
                assert!(
                    d.is_power_of_two(),
                    "rank distribution needs a rounded profile"
                );
                d.trailing_zeros() as usize + 1
            })
            .max()
            .unwrap_or(0);
        let mut s = vec![0u128; k];
        for &d in &self.demands {
            s[d.trailing_zeros() as usize] += 1;
        }
        s
    }

    /// Whether the profile is ε-good (Section 5.2): at least `εn` entries
    /// exceed `εd/n`.
    pub fn is_epsilon_good(&self, epsilon: f64) -> bool {
        assert!((0.0..=1.0).contains(&epsilon));
        let n = self.n() as f64;
        let d = self.l1() as f64;
        let threshold = epsilon * d / n;
        let large = self
            .demands
            .iter()
            .filter(|&&di| di as f64 > threshold)
            .count() as f64;
        large >= epsilon * n
    }
}

/// Largest power of two ≤ `d` (`d ≥ 1`).
pub fn prev_power_of_two(d: u128) -> u128 {
    assert!(d >= 1);
    1u128 << (127 - d.leading_zeros())
}

/// Samples a uniformly random *composition* of `d` into `n` positive parts
/// — i.e. a uniform element of `D1(n, d)`.
///
/// Uses the stars-and-bars bijection: choose `n − 1` distinct cut points
/// from `{1, …, d − 1}` and take consecutive differences. Rejection-samples
/// the cut set, which is fast while `n ≪ d` (the regime of every experiment
/// here; for `n` close to `d` the profile is essentially all-ones anyway).
pub fn sample_composition(rng: &mut Xoshiro256pp, n: usize, d: u128) -> DemandProfile {
    assert!(n >= 1);
    assert!(d >= n as u128, "need d >= n for positive parts");
    if n == 1 {
        return DemandProfile::new(vec![d]);
    }
    let mut cuts: Vec<u128> = Vec::with_capacity(n - 1);
    let mut seen = std::collections::HashSet::with_capacity(n - 1);
    while cuts.len() < n - 1 {
        let c = 1 + uniform_below(rng, d - 1);
        if seen.insert(c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    let mut demands = Vec::with_capacity(n);
    let mut prev = 0u128;
    for &c in &cuts {
        demands.push(c - prev);
        prev = c;
    }
    demands.push(d - prev);
    DemandProfile::new(demands)
}

/// A power-law (Zipf-like) profile: demands proportional to `i^(−alpha)`,
/// scaled so the total is approximately `d`, every entry at least 1.
///
/// Models the skewed load the competitive analysis targets: a few hot
/// instances and a long tail of cold ones.
pub fn power_law(n: usize, d: u128, alpha: f64) -> DemandProfile {
    assert!(n >= 1 && d >= n as u128);
    assert!(alpha >= 0.0);
    let weights: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut demands: Vec<u128> = weights
        .iter()
        .map(|w| (((w / total) * d as f64).floor() as u128).max(1))
        .collect();
    // Fix up rounding drift on the largest entry, keeping entries positive.
    let sum: u128 = demands.iter().sum();
    if sum < d {
        demands[0] += d - sum;
    } else {
        let mut excess = sum - d;
        for entry in demands.iter_mut() {
            let cut = excess.min(entry.saturating_sub(1));
            *entry -= cut;
            excess -= cut;
            if excess == 0 {
                break;
            }
        }
    }
    DemandProfile::new(demands)
}

/// The hard distribution `Φ` of Theorem 10 over profiles `(2^i, 2^j)`,
/// `0 ≤ i, j ≤ k = ⌊½ log₂ m⌋`, with `Pr[(2^i, 2^j)] ∝ 2^(−max(i,j))`.
///
/// Every algorithm satisfies `E_Φ[p_A(D)] = Ω(log²m / m)` (Lemma 25),
/// while `E_Φ[p*(D)] = O(log m / m)` — which forces the `Ω(log m)`
/// competitive-ratio lower bound.
#[derive(Debug, Clone)]
pub struct PhiDistribution {
    k: u32,
    /// Cumulative weights for sampling, aligned with `support`.
    cumulative: Vec<f64>,
    support: Vec<(u32, u32)>,
    total_weight: f64,
}

impl PhiDistribution {
    /// Φ for the universe `space`.
    pub fn new(space: IdSpace) -> Self {
        let k = space.log2_floor() / 2;
        let mut support = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0.0f64;
        for i in 0..=k {
            for j in 0..=k {
                let w = 2f64.powi(-(i.max(j) as i32));
                acc += w;
                support.push((i, j));
                cumulative.push(acc);
            }
        }
        PhiDistribution {
            k,
            cumulative,
            support,
            total_weight: acc,
        }
    }

    /// The exponent cap `k = ⌊½ log₂ m⌋`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The support with normalized probabilities, for exact expectations.
    pub fn enumerate(&self) -> impl Iterator<Item = (DemandProfile, f64)> + '_ {
        self.support.iter().enumerate().map(|(idx, &(i, j))| {
            let prev = if idx == 0 {
                0.0
            } else {
                self.cumulative[idx - 1]
            };
            let p = (self.cumulative[idx] - prev) / self.total_weight;
            (DemandProfile::pair(1 << i, 1 << j), p)
        })
    }

    /// Samples a profile from Φ.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> DemandProfile {
        let u = (uniform_below(rng, 1 << 53) as f64 / (1u64 << 53) as f64) * self.total_weight;
        let idx = self.cumulative.partition_point(|&c| c < u);
        let (i, j) = self.support[idx.min(self.support.len() - 1)];
        DemandProfile::pair(1 << i, 1 << j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let p = DemandProfile::new(vec![3, 4, 5]);
        assert_eq!(p.n(), 3);
        assert_eq!(p.l1(), 12);
        assert_eq!(p.l2_squared(), 9 + 16 + 25);
        assert_eq!(p.linf(), 5);
        assert!(!p.is_trivial());
        assert!(DemandProfile::new(vec![7]).is_trivial());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_entries_rejected() {
        DemandProfile::new(vec![1, 0, 2]);
    }

    #[test]
    fn family_membership() {
        let p = DemandProfile::new(vec![2, 2, 4]);
        assert!(p.in_l1_family(3, 8));
        assert!(!p.in_l1_family(3, 9));
        assert!(p.in_linf_family(3, 4));
        assert!(p.in_linf_family(5, 10));
        assert!(!p.in_linf_family(3, 3));
    }

    #[test]
    fn paper_rounding_example() {
        // The paper: D = (9, 5, 4, 42) → D⁻ = (8, 4, 4, 8).
        let p = DemandProfile::new(vec![9, 5, 4, 42]);
        assert_eq!(p.rounded().demands(), &[8, 4, 4, 8]);
    }

    #[test]
    fn rounding_without_unique_max_keeps_powers() {
        let p = DemandProfile::new(vec![8, 8, 3]);
        assert_eq!(p.rounded().demands(), &[8, 8, 2]);
    }

    #[test]
    fn rounding_is_idempotent() {
        for demands in [vec![9u128, 5, 4, 42], vec![1, 1], vec![100, 2, 77]] {
            let once = DemandProfile::new(demands).rounded();
            assert_eq!(once.rounded(), once);
        }
    }

    #[test]
    fn rank_distribution_counts_powers() {
        // (8, 4, 4, 8): s = [0, 0, 2, 2] (1s, 2s, 4s, 8s).
        let p = DemandProfile::new(vec![8, 4, 4, 8]);
        assert_eq!(p.rank_distribution(), vec![0, 0, 2, 2]);
        let q = DemandProfile::new(vec![1, 1, 2]);
        assert_eq!(q.rank_distribution(), vec![2, 1]);
    }

    #[test]
    fn epsilon_goodness() {
        // Uniform profile: every entry equals d/n, so all exceed εd/n.
        let p = DemandProfile::uniform(10, 100);
        assert!(p.is_epsilon_good(0.5));
        // Extreme skew: only 1 of 10 entries above the threshold.
        let q = DemandProfile::new(vec![991, 1, 1, 1, 1, 1, 1, 1, 1, 1]);
        assert!(!q.is_epsilon_good(0.5));
    }

    #[test]
    fn composition_is_valid_and_covers_extremes() {
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..200 {
            let p = sample_composition(&mut rng, 5, 50);
            assert!(p.in_l1_family(5, 50));
            assert!(p.demands().iter().all(|&x| x >= 1));
        }
        // n == d forces the all-ones profile.
        let p = sample_composition(&mut rng, 7, 7);
        assert_eq!(p.demands(), &[1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn composition_is_uniform_for_tiny_case() {
        // D1(2, 4) = {(1,3), (2,2), (3,1)}: each should appear 1/3 of the time.
        let mut rng = Xoshiro256pp::new(2);
        let mut counts = std::collections::HashMap::new();
        let trials = 60_000;
        for _ in 0..trials {
            let p = sample_composition(&mut rng, 2, 4);
            *counts.entry(p.demands().to_vec()).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 3);
        for (profile, c) in counts {
            let dev = (c as f64 - trials as f64 / 3.0).abs() / (trials as f64 / 3.0);
            assert!(dev < 0.05, "{profile:?}: dev {dev:.3}");
        }
    }

    #[test]
    fn power_law_totals_and_skew() {
        let p = power_law(10, 1000, 1.0);
        assert_eq!(p.l1(), 1000);
        assert!(p.demand(0) > p.demand(9), "head must be heavier than tail");
        let flat = power_law(10, 1000, 0.0);
        assert!(flat.demand(0) <= 101, "alpha = 0 should be near-uniform");
    }

    #[test]
    fn phi_support_and_probabilities() {
        let space = IdSpace::new(1 << 16).unwrap();
        let phi = PhiDistribution::new(space);
        assert_eq!(phi.k(), 8);
        let entries: Vec<_> = phi.enumerate().collect();
        assert_eq!(entries.len(), 81);
        let total: f64 = entries.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Pr[(1,1)] ∝ 2^0 = 1 is the single most likely profile.
        let p11 = entries
            .iter()
            .find(|(d, _)| d.demands() == [1, 1])
            .unwrap()
            .1;
        for (d, p) in &entries {
            assert!(
                p11 >= *p - 1e-12,
                "{:?} more likely than (1,1)",
                d.demands()
            );
        }
    }

    #[test]
    fn phi_sampling_matches_enumeration() {
        let space = IdSpace::new(1 << 8).unwrap();
        let phi = PhiDistribution::new(space);
        let mut rng = Xoshiro256pp::new(3);
        let mut counts = std::collections::HashMap::new();
        let trials = 100_000;
        for _ in 0..trials {
            let d = phi.sample(&mut rng);
            *counts.entry(d.demands().to_vec()).or_insert(0u64) += 1;
        }
        for (d, p) in phi.enumerate() {
            let observed = *counts.get(d.demands()).unwrap_or(&0) as f64 / trials as f64;
            assert!(
                (observed - p).abs() < 0.01 + 0.2 * p,
                "{:?}: observed {observed:.4}, expected {p:.4}",
                d.demands()
            );
        }
    }

    #[test]
    fn prev_power_of_two_values() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(42), 32);
        assert_eq!(prev_power_of_two(64), 64);
        assert_eq!(prev_power_of_two(u128::MAX), 1 << 127);
    }
}
