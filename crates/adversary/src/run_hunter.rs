//! RunHunter: a retargeting attacker for run-structured algorithms.
//!
//! The Lemma 7 adversary commits to one target after the probe phase.
//! Against Cluster★ that is too rigid: the pumped instance's run ends
//! (runs double, but the *current* run may be short) and the instance
//! teleports to a fresh uniform location, stranding the attack.
//!
//! RunHunter generalizes the attack: at every step it assumes each
//! instance will continue sequentially from its last emitted ID (true
//! within a run for Cluster and Cluster★), finds the instance whose
//! *predicted next ID* is closest — walking forward — to any ID already
//! emitted by a different instance, and pumps it. When the pumped instance
//! jumps (emission ≠ prediction, i.e. a new run opened), the gap landscape
//! changed and the next step simply re-evaluates.
//!
//! Against Cluster, RunHunter is at least as strong as Lemma 7's adversary
//! (it makes the same initial choice and never needs to retarget). Against
//! Cluster★ it is the natural adaptive threat model that Theorem 8's
//! `O((nd/m)·log(1 + d/n))` upper bound must (and does) withstand —
//! experiment E8 measures exactly this.

use std::collections::BTreeMap;

use crate::adaptive::{Action, AdaptiveAdversary, AdversarySpec, GameView};

/// Configuration: probe `n` instances, then greedily hunt with budget `d`.
#[derive(Debug, Clone)]
pub struct RunHunter {
    n: usize,
    d: u128,
}

impl RunHunter {
    /// An attack with `n ≥ 2` probes and total budget `d ≥ n`.
    pub fn new(n: usize, d: u128) -> Self {
        assert!(n >= 2, "need at least two instances to collide");
        assert!(d >= n as u128, "budget must cover the probe phase");
        RunHunter { n, d }
    }
}

impl AdversarySpec for RunHunter {
    fn name(&self) -> String {
        format!("run-hunter(n={}, d={})", self.n, self.d)
    }

    fn spawn(&self, _seed: u64) -> Box<dyn AdaptiveAdversary> {
        Box::new(RunHunterRun {
            n: self.n,
            budget: self.d,
            emitted: BTreeMap::new(),
            indexed_upto: Vec::new(),
        })
    }
}

struct RunHunterRun {
    n: usize,
    budget: u128,
    /// All emitted IDs → owning instance, for nearest-ahead queries.
    emitted: BTreeMap<u128, usize>,
    /// How many IDs per instance are already in `emitted`.
    indexed_upto: Vec<usize>,
}

impl RunHunterRun {
    /// Folds newly emitted IDs into the index.
    fn refresh(&mut self, view: &GameView<'_>) {
        self.indexed_upto.resize(view.n(), 0);
        for (i, history) in view.histories.iter().enumerate() {
            for id in &history[self.indexed_upto[i]..] {
                self.emitted.insert(id.value(), i);
            }
            self.indexed_upto[i] = history.len();
        }
    }

    /// Forward distance from `from` to the nearest ID emitted by an
    /// instance other than `owner`, wrapping around the cycle.
    fn nearest_foreign_ahead(&self, from: u128, owner: usize, m: u128) -> Option<u128> {
        // Scan forward from `from`; the index is small (adaptive games are
        // materialized), and typically the first few keys suffice.
        let ahead = self
            .emitted
            .range(from..)
            .find(|(_, &o)| o != owner)
            .map(|(&v, _)| v - from);
        if let Some(gap) = ahead {
            return Some(gap);
        }
        // Wrap around.
        self.emitted
            .iter()
            .find(|(_, &o)| o != owner)
            .map(|(&v, _)| m - from + v)
    }
}

impl AdaptiveAdversary for RunHunterRun {
    fn reset(&mut self, _seed: u64) {
        self.emitted.clear();
        self.indexed_upto.clear();
    }

    fn next_action(&mut self, view: &GameView<'_>) -> Action {
        if view.collision {
            return Action::Stop;
        }
        if view.total_requests >= self.budget {
            return Action::Stop;
        }
        if view.n() < self.n {
            return Action::Activate;
        }
        self.refresh(view);
        let m = view.space.size();
        let mut best: Option<(u128, usize)> = None;
        for i in 0..view.n() {
            let last = match view.last_id(i) {
                Some(id) => id,
                None => continue,
            };
            // Predicted next emission if instance i stays in its run.
            let pred = view.space.next(last).value();
            if let Some(gap) = self.nearest_foreign_ahead(pred, i, m) {
                if best.is_none_or(|(g, _)| gap < g) {
                    best = Some((gap, i));
                }
            }
        }
        match best {
            Some((_, i)) => Action::Request(i),
            None => Action::Stop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::id::{Id, IdSpace};

    fn view_of(histories: &[Vec<Id>], space: IdSpace, collision: bool) -> GameView<'_> {
        GameView {
            space,
            histories,
            collision,
            total_requests: histories.iter().map(|h| h.len() as u128).sum(),
        }
    }

    #[test]
    fn pumps_the_instance_with_smallest_forward_gap() {
        let space = IdSpace::new(1000).unwrap();
        let spec = RunHunter::new(3, 100);
        let mut adv = spec.spawn(0);
        let mut histories: Vec<Vec<Id>> = Vec::new();
        for start in [100u128, 110, 500] {
            let view = view_of(&histories, space, false);
            assert_eq!(adv.next_action(&view), Action::Activate);
            histories.push(vec![Id(start)]);
        }
        // Instance 0 predicts 101; nearest foreign ahead is 110 (gap 9).
        // Instance 1 predicts 111; nearest foreign is 500 (gap 389).
        // Instance 2 predicts 501; nearest foreign is 100 (gap 599).
        let view = view_of(&histories, space, false);
        assert_eq!(adv.next_action(&view), Action::Request(0));
    }

    #[test]
    fn retargets_after_a_jump() {
        let space = IdSpace::new(1000).unwrap();
        let spec = RunHunter::new(2, 100);
        let mut adv = spec.spawn(0);
        let mut histories: Vec<Vec<Id>> = Vec::new();
        for start in [100u128, 105] {
            let view = view_of(&histories, space, false);
            adv.next_action(&view);
            histories.push(vec![Id(start)]);
        }
        let view = view_of(&histories, space, false);
        assert_eq!(adv.next_action(&view), Action::Request(0));
        // Instance 0 jumps to 900 (its run ended): instance 1's gap to the
        // cluster at 100..=105 region... instance 1 predicts 106, nearest
        // foreign ahead is 900 (gap 794); instance 0 predicts 901, nearest
        // foreign wrapping is 105 (gap 204). Target switches to 0 still.
        histories[0].push(Id(900));
        let view = view_of(&histories, space, false);
        assert_eq!(adv.next_action(&view), Action::Request(0));
        // Now instance 0 walks to 903; bring instance 1 close behind it:
        histories[0].push(Id(901));
        histories[0].push(Id(902));
        // Re-evaluate: instance 1 predicts 106 → nearest foreign 900? gap
        // 794. Instance 0 predicts 903 → nearest foreign wraps to 105, gap
        // 202. Still instance 0.
        let view = view_of(&histories, space, false);
        assert_eq!(adv.next_action(&view), Action::Request(0));
    }

    #[test]
    fn stops_on_collision_and_budget() {
        let space = IdSpace::new(100).unwrap();
        let spec = RunHunter::new(2, 2);
        let mut adv = spec.spawn(0);
        let histories = vec![vec![Id(1)], vec![Id(2)]];
        let view = view_of(&histories, space, true);
        assert_eq!(adv.next_action(&view), Action::Stop);
        let view = view_of(&histories, space, false);
        // Budget of 2 is already spent by the probes.
        assert_eq!(adv.next_action(&view), Action::Stop);
    }

    #[test]
    fn reset_drops_the_emitted_index() {
        let space = IdSpace::new(1000).unwrap();
        let spec = RunHunter::new(2, 50);
        let mut adv = spec.spawn(0);
        let histories = vec![vec![Id(10)], vec![Id(20)]];
        let view = view_of(&histories, space, false);
        // Index the transcript, then recycle.
        assert!(matches!(adv.next_action(&view), Action::Request(_)));
        adv.reset(1);
        // A fresh game: the recycled hunter must re-probe from scratch and
        // must not remember the stale transcript's IDs.
        let empty: Vec<Vec<Id>> = Vec::new();
        let view = view_of(&empty, space, false);
        assert_eq!(adv.next_action(&view), Action::Activate);
        let histories = vec![vec![Id(500)], vec![Id(503)]];
        let view = view_of(&histories, space, false);
        // Only the new transcript's IDs matter: 0 predicts 501 → gap 2.
        assert_eq!(adv.next_action(&view), Action::Request(0));
    }
}
