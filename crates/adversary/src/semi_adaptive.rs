//! Semi-adaptive adversaries `fol(S)` (Section 9).
//!
//! A *demand sequence* `S = (D₀, D₁, …, D_k)` starts from the empty
//! profile and grows by one request at a time. The semi-adaptive adversary
//! `fol(S)` follows `S` as long as no collision has occurred, and stops as
//! soon as one does (for downward-closed profile families the paper's
//! footnote 6 notes stopping immediately is exactly the right move — all
//! the families used in our experiments are downward closed).
//!
//! Theorem 11's reduction shows these are essentially the *strongest*
//! adaptive adversaries against bin-symmetric algorithms (Bins(k), Bins★):
//! since every game state with the same profile and no collision is
//! equivalent under bin relabeling, the only useful adaptive signal is the
//! collision flag itself — hence adaptivity buys at most a factor 4 in the
//! competitive ratio. Experiment E11 measures this.

use crate::adaptive::{Action, AdaptiveAdversary, AdversarySpec, GameView};
use crate::profile::DemandProfile;

/// One growth step of a demand sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Append a 1 to the profile (activate a dormant instance).
    Activate,
    /// Increment entry `i` of the profile.
    Increment(usize),
}

/// The semi-adaptive adversary `fol(S)`: follow a fixed demand sequence,
/// stop on the first collision.
#[derive(Debug, Clone)]
pub struct FollowSequence {
    steps: Vec<Step>,
    label: String,
}

impl FollowSequence {
    /// `fol(S)` for an explicit step sequence.
    ///
    /// # Panics
    ///
    /// Panics if a step increments an instance that has not been activated
    /// by an earlier step.
    pub fn new(steps: Vec<Step>) -> Self {
        let mut n = 0usize;
        for (at, s) in steps.iter().enumerate() {
            match s {
                Step::Activate => n += 1,
                Step::Increment(i) => {
                    assert!(*i < n, "step {at} increments unactivated instance {i}");
                }
            }
        }
        FollowSequence {
            label: format!("fol(|S|={})", steps.len()),
            steps,
        }
    }

    /// The demand sequence that grows to `profile`, filling instance 0
    /// first, then instance 1, and so on (the canonical sequential growth).
    pub fn growing_to(profile: &DemandProfile) -> Self {
        let mut steps = Vec::new();
        for (i, &d) in profile.demands().iter().enumerate() {
            steps.push(Step::Activate);
            for _ in 1..d {
                steps.push(Step::Increment(i));
            }
        }
        let mut s = FollowSequence::new(steps);
        s.label = format!("fol(seq → n={}, d={})", profile.n(), profile.l1());
        s
    }

    /// The demand sequence that grows to `profile` breadth-first: activate
    /// all instances, then add one request per pass. This is the sequence
    /// whose prefixes stay closest to uniform.
    pub fn growing_breadth_first(profile: &DemandProfile) -> Self {
        let mut steps: Vec<Step> = (0..profile.n()).map(|_| Step::Activate).collect();
        let max_d = profile.linf();
        for level in 1..max_d {
            for (i, &d) in profile.demands().iter().enumerate() {
                if d > level {
                    steps.push(Step::Increment(i));
                }
            }
        }
        let mut s = FollowSequence::new(steps);
        s.label = format!("fol(bfs → n={}, d={})", profile.n(), profile.l1());
        s
    }

    /// Number of steps in `S`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl AdversarySpec for FollowSequence {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn spawn(&self, _seed: u64) -> Box<dyn AdaptiveAdversary> {
        Box::new(FollowRun {
            steps: self.steps.clone(),
            cursor: 0,
        })
    }
}

struct FollowRun {
    steps: Vec<Step>,
    cursor: usize,
}

impl AdaptiveAdversary for FollowRun {
    fn reset(&mut self, _seed: u64) {
        self.cursor = 0;
    }

    fn next_action(&mut self, view: &GameView<'_>) -> Action {
        if view.collision {
            return Action::Stop;
        }
        match self.steps.get(self.cursor) {
            None => Action::Stop,
            Some(step) => {
                self.cursor += 1;
                match step {
                    Step::Activate => Action::Activate,
                    Step::Increment(i) => Action::Request(*i),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::id::{Id, IdSpace};

    fn drive(adv: &mut dyn AdaptiveAdversary, collide_at: Option<u128>) -> Vec<u128> {
        let space = IdSpace::new(1 << 16).unwrap();
        let mut histories: Vec<Vec<Id>> = Vec::new();
        let mut total = 0u128;
        loop {
            let view = GameView {
                space,
                histories: &histories,
                collision: collide_at.is_some_and(|c| total >= c),
                total_requests: total,
            };
            match adv.next_action(&view) {
                Action::Activate => histories.push(vec![Id(total)]),
                Action::Request(i) => histories[i].push(Id(total)),
                Action::Stop => break,
            }
            total += 1;
        }
        histories.iter().map(|h| h.len() as u128).collect()
    }

    #[test]
    fn sequential_growth_realizes_profile() {
        let p = DemandProfile::new(vec![3, 2, 1]);
        let spec = FollowSequence::growing_to(&p);
        assert_eq!(spec.len(), 6);
        assert_eq!(drive(spec.spawn(0).as_mut(), None), p.demands());
    }

    #[test]
    fn breadth_first_growth_realizes_profile() {
        let p = DemandProfile::new(vec![3, 1, 2]);
        let spec = FollowSequence::growing_breadth_first(&p);
        assert_eq!(drive(spec.spawn(0).as_mut(), None), p.demands());
    }

    #[test]
    fn stops_at_first_collision() {
        let p = DemandProfile::new(vec![10, 10]);
        let spec = FollowSequence::growing_to(&p);
        let realized = drive(spec.spawn(0).as_mut(), Some(5));
        assert_eq!(realized.iter().sum::<u128>(), 5);
    }

    #[test]
    #[should_panic(expected = "unactivated")]
    fn invalid_sequences_rejected() {
        FollowSequence::new(vec![Step::Activate, Step::Increment(1)]);
    }

    #[test]
    fn breadth_first_prefixes_stay_balanced() {
        let p = DemandProfile::new(vec![4, 4]);
        let spec = FollowSequence::growing_breadth_first(&p);
        // After the first four steps, demands are (2, 2) — never (3, 1).
        let mut adv = spec.spawn(0);
        let space = IdSpace::new(1 << 10).unwrap();
        let mut histories: Vec<Vec<Id>> = Vec::new();
        for t in 0..4u128 {
            let view = GameView {
                space,
                histories: &histories,
                collision: false,
                total_requests: t,
            };
            match adv.next_action(&view) {
                Action::Activate => histories.push(vec![Id(t)]),
                Action::Request(i) => histories[i].push(Id(t)),
                Action::Stop => panic!("premature stop"),
            }
        }
        let demands: Vec<usize> = histories.iter().map(|h| h.len()).collect();
        assert_eq!(demands, vec![2, 2]);
    }
}
