//! Oblivious adversaries: a demand profile fixed before the game begins.
//!
//! The oblivious setting is a special case of the adaptive game where the
//! adversary ignores the produced IDs. The *order* in which a fixed
//! profile's requests are interleaved cannot affect the collision
//! probability (instances are independent and memoryless of each other),
//! but the engine still needs an order to run the game — and exposing
//! several orders lets tests verify the order-invariance that the model
//! promises.

use uuidp_core::rng::{uniform_below, Xoshiro256pp};

use crate::adaptive::{Action, AdaptiveAdversary, AdversarySpec, GameView};
use crate::profile::DemandProfile;

/// How a fixed profile's requests are interleaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestOrder {
    /// All of instance 0's requests, then all of instance 1's, ….
    #[default]
    Sequential,
    /// One request per instance per pass, skipping satisfied instances.
    RoundRobin,
    /// Each step picks uniformly among all outstanding requests.
    RandomInterleave,
}

/// An oblivious adversary: a fixed [`DemandProfile`] plus an interleaving.
#[derive(Debug, Clone)]
pub struct Oblivious {
    profile: DemandProfile,
    order: RequestOrder,
}

impl Oblivious {
    /// The adversary that requests exactly `profile`, sequentially.
    pub fn new(profile: DemandProfile) -> Self {
        Oblivious {
            profile,
            order: RequestOrder::Sequential,
        }
    }

    /// The adversary that requests exactly `profile` in `order`.
    pub fn with_order(profile: DemandProfile, order: RequestOrder) -> Self {
        Oblivious { profile, order }
    }

    /// The profile this adversary will realize.
    pub fn profile(&self) -> &DemandProfile {
        &self.profile
    }
}

impl AdversarySpec for Oblivious {
    fn name(&self) -> String {
        format!(
            "oblivious({:?}, n={}, d={})",
            self.order,
            self.profile.n(),
            self.profile.l1()
        )
    }

    fn spawn(&self, seed: u64) -> Box<dyn AdaptiveAdversary> {
        Box::new(ObliviousRun {
            targets: self.profile.demands().to_vec(),
            issued: vec![0; self.profile.n()],
            order: self.order,
            rng: Xoshiro256pp::new(seed),
            cursor: 0,
        })
    }
}

struct ObliviousRun {
    targets: Vec<u128>,
    issued: Vec<u128>,
    order: RequestOrder,
    rng: Xoshiro256pp,
    /// Round-robin cursor / sequential cursor.
    cursor: usize,
}

impl ObliviousRun {
    fn remaining_total(&self) -> u128 {
        self.targets
            .iter()
            .zip(&self.issued)
            .map(|(t, i)| t - i)
            .sum()
    }

    fn emit_for(&mut self, i: usize, view: &GameView<'_>) -> Action {
        self.issued[i] += 1;
        if i >= view.n() {
            debug_assert_eq!(i, view.n(), "activation must be in index order");
            Action::Activate
        } else {
            Action::Request(i)
        }
    }
}

impl AdaptiveAdversary for ObliviousRun {
    fn reset(&mut self, seed: u64) {
        self.issued.iter_mut().for_each(|i| *i = 0);
        self.rng = Xoshiro256pp::new(seed);
        self.cursor = 0;
    }

    fn next_action(&mut self, view: &GameView<'_>) -> Action {
        // Oblivious: never look at the produced IDs or the collision flag.
        if self.remaining_total() == 0 {
            return Action::Stop;
        }
        match self.order {
            RequestOrder::Sequential => {
                while self.cursor < self.targets.len()
                    && self.issued[self.cursor] >= self.targets[self.cursor]
                {
                    self.cursor += 1;
                }
                let i = self.cursor;
                self.emit_for(i, view)
            }
            RequestOrder::RoundRobin => {
                // Activation must happen in index order, so the first pass
                // touches 0, 1, 2, … naturally.
                loop {
                    let i = self.cursor % self.targets.len();
                    self.cursor += 1;
                    if self.issued[i] < self.targets[i] {
                        return self.emit_for(i, view);
                    }
                }
            }
            RequestOrder::RandomInterleave => {
                // Activation-order constraint: an instance may only receive
                // its first request after all lower-indexed instances have
                // been activated. Pick uniformly among *eligible*
                // outstanding requests (instances beyond the activation
                // frontier contribute their demand to the frontier
                // instance's activation being chosen first, which keeps the
                // realized profile exact while staying well-defined).
                let activated = view.n();
                let eligible_upper = (activated + 1).min(self.targets.len());
                let pool: u128 = self.targets[..eligible_upper]
                    .iter()
                    .zip(&self.issued[..eligible_upper])
                    .map(|(t, i)| t - i)
                    .sum();
                debug_assert!(pool > 0, "outstanding requests exist");
                let mut r = uniform_below(&mut self.rng, pool);
                for i in 0..eligible_upper {
                    let rem = self.targets[i] - self.issued[i];
                    if r < rem {
                        return self.emit_for(i, view);
                    }
                    r -= rem;
                }
                unreachable!("random interleave index out of range")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::id::{Id, IdSpace};

    /// Drives an adversary through a fake game, recording how many requests
    /// each instance receives; returns the realized profile.
    fn realize(spec: &Oblivious, seed: u64) -> Vec<u128> {
        let mut adv = spec.spawn(seed);
        let space = IdSpace::new(1 << 20).unwrap();
        let mut histories: Vec<Vec<Id>> = Vec::new();
        let mut total = 0u128;
        loop {
            let view = GameView {
                space,
                histories: &histories,
                collision: false,
                total_requests: total,
            };
            match adv.next_action(&view) {
                Action::Activate => {
                    histories.push(vec![Id(total)]);
                }
                Action::Request(i) => {
                    histories[i].push(Id(total));
                }
                Action::Stop => break,
            }
            total += 1;
            assert!(total < 1 << 20, "runaway adversary");
        }
        histories.iter().map(|h| h.len() as u128).collect()
    }

    #[test]
    fn sequential_realizes_exact_profile() {
        let p = DemandProfile::new(vec![3, 1, 4]);
        let spec = Oblivious::with_order(p.clone(), RequestOrder::Sequential);
        assert_eq!(realize(&spec, 1), p.demands());
    }

    #[test]
    fn round_robin_realizes_exact_profile() {
        let p = DemandProfile::new(vec![5, 2, 2, 1]);
        let spec = Oblivious::with_order(p.clone(), RequestOrder::RoundRobin);
        assert_eq!(realize(&spec, 2), p.demands());
    }

    #[test]
    fn random_interleave_realizes_exact_profile() {
        let p = DemandProfile::new(vec![2, 7, 1, 3]);
        let spec = Oblivious::with_order(p.clone(), RequestOrder::RandomInterleave);
        for seed in 0..20 {
            assert_eq!(realize(&spec, seed), p.demands());
        }
    }

    #[test]
    fn names_mention_shape() {
        let p = DemandProfile::new(vec![2, 2]);
        let spec = Oblivious::new(p);
        assert!(spec.name().contains("n=2"));
        assert!(spec.name().contains("d=4"));
    }

    #[test]
    fn reset_is_observationally_a_fresh_spawn() {
        // RandomInterleave is the seed-sensitive order: the action stream
        // of a recycled strategy after reset(seed) must equal a fresh
        // spawn(seed)'s, step for step.
        let p = DemandProfile::new(vec![2, 7, 1, 3]);
        let spec = Oblivious::with_order(p, RequestOrder::RandomInterleave);
        let space = IdSpace::new(1 << 20).unwrap();
        let mut recycled = spec.spawn(0);
        for seed in [1u64, 7, 42, 0xDEAD] {
            recycled.reset(seed);
            let mut fresh = spec.spawn(seed);
            let mut histories: Vec<Vec<Id>> = Vec::new();
            let mut total = 0u128;
            loop {
                let view = GameView {
                    space,
                    histories: &histories,
                    collision: false,
                    total_requests: total,
                };
                let a = recycled.next_action(&view);
                let b = fresh.next_action(&view);
                assert_eq!(a, b, "seed {seed}: recycled diverged at step {total}");
                match a {
                    Action::Activate => histories.push(vec![Id(total)]),
                    Action::Request(i) => histories[i].push(Id(total)),
                    Action::Stop => break,
                }
                total += 1;
            }
        }
    }
}
