//! The adaptive-adversary interface (Section 2 of the paper).
//!
//! An adaptive adversary builds the demand profile on the fly. When the
//! current profile is `D = (d₁, …, dᵢ)` it may:
//!
//! * **activate** a dormant instance (append a 1 to `D`),
//! * **request** another ID from an existing instance (increment `dⱼ`), or
//! * **stop** the game.
//!
//! Crucially it observes every ID produced so far, and it knows the
//! algorithm it is playing against — the structs implementing this trait
//! are each tailored to defeat a specific algorithm.

use uuidp_core::id::{Id, IdSpace};

/// One move of the adaptive adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Activate a dormant instance and request its first ID. The new
    /// instance receives the next index (`= number of instances so far`).
    Activate,
    /// Request another ID from instance `i` (0-based).
    Request(usize),
    /// End the game with the current demand profile.
    Stop,
}

/// What the adversary sees before each move: the full transcript.
#[derive(Debug)]
pub struct GameView<'a> {
    /// The universe being played over.
    pub space: IdSpace,
    /// Per-instance emitted IDs, in emission order. `histories.len()` is
    /// the number of activated instances; `histories[i].len()` is `dᵢ`.
    pub histories: &'a [Vec<Id>],
    /// Whether a collision has occurred (the adversary has already won).
    pub collision: bool,
    /// Total IDs requested so far (`‖D‖₁`).
    pub total_requests: u128,
}

impl GameView<'_> {
    /// Number of activated instances.
    pub fn n(&self) -> usize {
        self.histories.len()
    }

    /// The first ID instance `i` produced, if activated.
    pub fn first_id(&self, i: usize) -> Option<Id> {
        self.histories.get(i).and_then(|h| h.first().copied())
    }

    /// The most recent ID instance `i` produced, if activated.
    pub fn last_id(&self, i: usize) -> Option<Id> {
        self.histories.get(i).and_then(|h| h.last().copied())
    }
}

/// A live adversary: a stateful strategy for one game.
pub trait AdaptiveAdversary: Send {
    /// Chooses the next move given the transcript so far.
    ///
    /// The engine calls this repeatedly; returning [`Action::Stop`] (or an
    /// invalid move, e.g. `Request` on a non-existent instance) ends the
    /// game. A well-formed adversary should stop promptly once
    /// `view.collision` is true — the game is already won and further
    /// requests only dilute the competitive denominator.
    fn next_action(&mut self, view: &GameView<'_>) -> Action;

    /// Returns the strategy to its freshly-spawned state under a new
    /// seed, reusing allocations (history indexes, issued-count vectors)
    /// instead of dropping them.
    ///
    /// Mirror of [`IdGenerator::reset`]: observationally identical to
    /// `spec.spawn(seed)` — the action stream against any transcript must
    /// be exactly that of a fresh strategy spawned with `seed`. This is
    /// what lets the Monte-Carlo adaptive engine recycle one boxed
    /// strategy per worker across millions of trials instead of re-boxing
    /// via [`AdversarySpec::spawn`] each time.
    ///
    /// [`IdGenerator::reset`]: uuidp_core::traits::IdGenerator::reset
    fn reset(&mut self, seed: u64);
}

/// A named, reusable adversary configuration that spawns fresh strategies
/// per Monte-Carlo trial (mirror of `uuidp_core::traits::Algorithm`).
pub trait AdversarySpec: Send + Sync {
    /// Short, stable, human-readable name.
    fn name(&self) -> String;

    /// Spawns a fresh strategy. `seed` drives any internal randomization.
    fn spawn(&self, seed: u64) -> Box<dyn AdaptiveAdversary>;
}

impl std::fmt::Debug for dyn AdversarySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AdversarySpec({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_accessors() {
        let space = IdSpace::new(100).unwrap();
        let histories = vec![vec![Id(5), Id(6)], vec![Id(80)]];
        let view = GameView {
            space,
            histories: &histories,
            collision: false,
            total_requests: 3,
        };
        assert_eq!(view.n(), 2);
        assert_eq!(view.first_id(0), Some(Id(5)));
        assert_eq!(view.last_id(0), Some(Id(6)));
        assert_eq!(view.first_id(1), Some(Id(80)));
        assert_eq!(view.first_id(2), None);
    }
}
