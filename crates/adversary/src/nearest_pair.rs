//! The Lemma 7 adversary: defeats Cluster by a factor of `n`.
//!
//! > *Consider an adversary Z that behaves as follows:
//! > 1. Request an ID from each of the `n` instances.
//! > 2. Pick the two closest IDs; say they were produced by instances `i`
//! >    and `j`. Without loss of generality, assume instance `i` produced
//! >    the smaller ID of the two.
//! > 3. Request `d − n` IDs from instance `i`.*
//!
//! Against Cluster this forces `p = Ω(min(1, n²d/m))` — a factor `n` worse
//! than the oblivious bound `Θ(nd/m)` — because among `n` uniform starting
//! points, the closest pair is at distance about `m/n²`, and pumping the
//! trailing instance marches straight into the leading one.
//!
//! "Smaller" means *behind on the cycle*: we pump the instance from which
//! the forward (increasing, wrapping) walk reaches the other starting
//! point soonest.

use uuidp_core::id::Id;

use crate::adaptive::{Action, AdaptiveAdversary, AdversarySpec, GameView};

/// Configuration for the Lemma 7 attack: probe `n` instances, then pump
/// the trailing instance of the closest pair with the remaining budget.
#[derive(Debug, Clone)]
pub struct NearestPair {
    n: usize,
    d: u128,
}

impl NearestPair {
    /// An attack with `n ≥ 2` probes and total budget `d ≥ n`.
    pub fn new(n: usize, d: u128) -> Self {
        assert!(n >= 2, "need at least two instances to collide");
        assert!(d >= n as u128, "budget must cover the probe phase");
        NearestPair { n, d }
    }
}

impl AdversarySpec for NearestPair {
    fn name(&self) -> String {
        format!("nearest-pair(n={}, d={})", self.n, self.d)
    }

    fn spawn(&self, _seed: u64) -> Box<dyn AdaptiveAdversary> {
        Box::new(NearestPairRun {
            n: self.n,
            budget: self.d,
            target: None,
        })
    }
}

struct NearestPairRun {
    n: usize,
    budget: u128,
    target: Option<usize>,
}

impl AdaptiveAdversary for NearestPairRun {
    fn reset(&mut self, _seed: u64) {
        self.target = None;
    }

    fn next_action(&mut self, view: &GameView<'_>) -> Action {
        if view.collision {
            return Action::Stop;
        }
        if view.total_requests >= self.budget {
            return Action::Stop;
        }
        // Phase 1: activate all n instances.
        if view.n() < self.n {
            return Action::Activate;
        }
        // Phase 2: lock onto the trailing instance of the closest pair.
        let target = *self.target.get_or_insert_with(|| {
            let firsts: Vec<Id> = (0..self.n)
                .map(|i| view.first_id(i).expect("probed instance"))
                .collect();
            let mut best = (u128::MAX, 0usize);
            for i in 0..self.n {
                for j in 0..self.n {
                    if i == j {
                        continue;
                    }
                    // Forward distance: how far instance i must march to
                    // reach instance j's starting ID.
                    let gap = view.space.forward_distance(firsts[i], firsts[j]);
                    if gap < best.0 {
                        best = (gap, i);
                    }
                }
            }
            best.1
        });
        Action::Request(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::id::IdSpace;

    fn view_of(histories: &[Vec<Id>], space: IdSpace, collision: bool) -> GameView<'_> {
        GameView {
            space,
            histories,
            collision,
            total_requests: histories.iter().map(|h| h.len() as u128).sum(),
        }
    }

    #[test]
    fn activates_then_pumps_trailing_instance_of_closest_pair() {
        let space = IdSpace::new(100).unwrap();
        let spec = NearestPair::new(3, 20);
        let mut adv = spec.spawn(0);

        let mut histories: Vec<Vec<Id>> = Vec::new();
        // Probe phase: three activations.
        for start in [10u128, 90, 13] {
            let view = view_of(&histories, space, false);
            assert_eq!(adv.next_action(&view), Action::Activate);
            histories.push(vec![Id(start)]);
        }
        // Closest forward pair: 10 → 13 (gap 3, instance 0 trails).
        let view = view_of(&histories, space, false);
        assert_eq!(adv.next_action(&view), Action::Request(0));
        // Keeps pumping the same target.
        histories[0].push(Id(11));
        let view = view_of(&histories, space, false);
        assert_eq!(adv.next_action(&view), Action::Request(0));
    }

    #[test]
    fn wrapping_gap_is_considered() {
        let space = IdSpace::new(100).unwrap();
        let spec = NearestPair::new(2, 10);
        let mut adv = spec.spawn(0);
        let mut histories: Vec<Vec<Id>> = Vec::new();
        for start in [98u128, 1] {
            let view = view_of(&histories, space, false);
            assert_eq!(adv.next_action(&view), Action::Activate);
            histories.push(vec![Id(start)]);
        }
        // 98 → 1 wraps with gap 3; 1 → 98 has gap 97. Pump instance 0.
        let view = view_of(&histories, space, false);
        assert_eq!(adv.next_action(&view), Action::Request(0));
    }

    #[test]
    fn stops_on_collision_and_on_budget() {
        let space = IdSpace::new(100).unwrap();
        let spec = NearestPair::new(2, 3);
        let mut adv = spec.spawn(0);
        let histories = vec![vec![Id(1)], vec![Id(50)]];
        let view = view_of(&histories, space, true);
        assert_eq!(adv.next_action(&view), Action::Stop);

        // Fresh run: budget 3 allows only one post-probe request.
        let mut adv = spec.spawn(0);
        let mut histories: Vec<Vec<Id>> = Vec::new();
        for start in [1u128, 50] {
            let view = view_of(&histories, space, false);
            adv.next_action(&view);
            histories.push(vec![Id(start)]);
        }
        let view = view_of(&histories, space, false);
        assert!(matches!(adv.next_action(&view), Action::Request(_)));
        histories[0].push(Id(2));
        let view = view_of(&histories, space, false);
        assert_eq!(adv.next_action(&view), Action::Stop);
    }
}
