//! # uuidp-bench — the reproduction harness
//!
//! One module per paper result (see DESIGN.md's experiment index E1–E13,
//! plus ablations E14 and the collision-time extension E15).
//! Each module exposes `run(&Ctx) -> ExperimentReport`: it executes the
//! sweep, prints the paper-shaped rows next to the theory prediction, and
//! records pass/fail *shape checks* (slopes, bounded ratios, orderings).
//!
//! The `repro` binary drives them: `repro all`, `repro e5`, `repro --quick
//! all`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod perf;

pub use experiments::{Ctx, ExperimentReport};
