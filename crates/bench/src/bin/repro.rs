//! `repro` — regenerates every table/figure-equivalent result of the paper.
//!
//! ```text
//! repro all               # run E1–E15 at full fidelity
//! repro e5 e9             # run a subset
//! repro --quick all       # ~10× fewer trials (CI smoke)
//! repro --seed 7 e2       # change the master seed
//! repro --list            # list experiments
//! repro bench-json [PATH] # measure hot paths, write JSON (default
//!                         # BENCH_PR<N>.json) for the perf trajectory
//! ```
//!
//! Output is Markdown: one section per experiment with its tables and
//! shape checks. Exit code 1 if any shape check fails.

use std::process::ExitCode;

use uuidp_bench::experiments::{registry, Ctx};
use uuidp_bench::perf;

/// The stacked-PR index stamped into bench JSON artifacts.
const PR_NUMBER: u32 = 9;

fn run_bench_json(path: &str) -> ExitCode {
    eprintln!("measuring hot paths (optimized vs reference baselines)...");
    let results = perf::run_all();
    for r in &results {
        println!(
            "{:<44} new {:>10.1} {:<9} baseline {:>10.1} {:<9} speedup {:>6.2}x",
            r.name,
            r.new_cost,
            r.unit,
            r.baseline_cost,
            r.unit,
            r.speedup()
        );
    }
    let json = perf::to_json(PR_NUMBER, &results);
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut seed = Ctx::default().seed;
    let mut selected: Vec<String> = Vec::new();
    let mut list_only = false;

    let mut args = std::env::args().skip(1).peekable();
    // Hidden helper mode for the reactor idle bench: hold N idle v2
    // connections in THIS process (its own fd budget — setrlimit is
    // often denied in containers) until the parent closes our stdin.
    if args.peek().map(String::as_str) == Some("hold-conns") {
        args.next();
        let addr = args
            .next()
            .unwrap_or_else(|| usage("hold-conns needs ADDR N"));
        let n = args
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage("hold-conns needs a numeric N"));
        return perf::hold_conns_main(&addr, n);
    }
    if args.peek().map(String::as_str) == Some("bench-json") {
        args.next();
        let path = args
            .next()
            .unwrap_or_else(|| format!("BENCH_PR{PR_NUMBER}.json"));
        return run_bench_json(&path);
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--list" | "-l" => list_only = true,
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                seed = v.parse().unwrap_or_else(|_| usage("--seed needs a u64"));
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => selected.push(other.to_ascii_lowercase()),
        }
    }

    let experiments = registry();
    if list_only {
        println!("available experiments:");
        for (id, _) in &experiments {
            println!("  {id}");
        }
        return ExitCode::SUCCESS;
    }
    if selected.is_empty() {
        usage("no experiments selected (try `repro all`)");
    }
    let run_all = selected.iter().any(|s| s == "all");
    let ctx = Ctx { quick, seed };

    println!("# Optimal Uncoordinated Unique IDs — reproduction run");
    println!();
    println!(
        "mode: {}, master seed: {seed}",
        if quick { "quick" } else { "full" }
    );
    println!();

    let mut failures = 0usize;
    let mut ran = 0usize;
    for (id, runner) in &experiments {
        if !run_all && !selected.iter().any(|s| s == id) {
            continue;
        }
        ran += 1;
        let start = std::time::Instant::now();
        let report = runner(&ctx);
        let elapsed = start.elapsed();
        print!("{}", report.markdown());
        println!("_({id} completed in {elapsed:.2?})_");
        println!();
        if !report.passed() {
            failures += 1;
            eprintln!("{id}: SHAPE CHECK FAILED");
        }
    }

    if ran == 0 {
        usage("no experiment matched the selection");
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed their shape checks");
        ExitCode::FAILURE
    } else {
        println!("all {ran} experiment(s) passed their shape checks");
        ExitCode::SUCCESS
    }
}

fn print_usage() {
    println!(
        "usage: repro [--quick] [--seed N] [--list] <all | e1 e2 ... e15>\n\
         \x20      repro bench-json [PATH]\n\
         Regenerates the paper's results; see DESIGN.md for the experiment index.\n\
         bench-json measures the simulation hot paths against reference\n\
         baselines and writes the JSON perf record (default BENCH_PR<N>.json\n\
         for this tree's PR number)."
    );
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_usage();
    std::process::exit(2)
}
