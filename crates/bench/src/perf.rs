//! Hot-path performance evidence: `repro bench-json`.
//!
//! Measures the PR's optimized hot paths against *reference baselines*
//! that replicate the previous implementation shape (per-ID interval
//! insertion, gap-list allocation per placement, the O(points ×
//! footprints) detector loop, spawn-per-trial Monte-Carlo), and writes
//! the numbers to a JSON file so the perf trajectory of the repository
//! is recorded commit over commit.
//!
//! The baselines run on top of today's `IntervalSet`, which is itself
//! faster than the seed's (in-place segment extension); reported
//! speedups are therefore conservative lower bounds on the true change.

use std::fmt::Write as _;
use std::time::Instant;

use uuidp_adversary::profile::DemandProfile;
use uuidp_core::algorithms::{AlgorithmKind, ClusterStar};
use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::{Arc, IntervalSet};
use uuidp_core::rng::{uniform_below, SeedTree, Xoshiro256pp};
use uuidp_core::traits::{Algorithm, Footprint};
use uuidp_service::service::ServiceConfig;
use uuidp_service::stress::{run_stress, StressConfig};
use uuidp_sim::collision::{footprints_collide, CollisionScratch};
use uuidp_sim::game::run_oblivious_symbolic;
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};

/// One measured comparison.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Benchmark name.
    pub name: String,
    /// Unit of the two timings.
    pub unit: &'static str,
    /// Optimized-path cost.
    pub new_cost: f64,
    /// Reference-baseline cost.
    pub baseline_cost: f64,
}

impl PerfResult {
    /// baseline / new.
    pub fn speedup(&self) -> f64 {
        self.baseline_cost / self.new_cost
    }
}

/// Median-of-samples wall-clock cost of `f`, in nanoseconds per call.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    // Warm-up + calibration.
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < 50 {
        f();
        calls += 1;
    }
    let per_call = start.elapsed().as_secs_f64() / calls.max(1) as f64;
    let batch = ((0.05 / per_call.max(1e-9)) as u64).clamp(1, 1 << 22);
    let mut samples = Vec::with_capacity(9);
    for _ in 0..9 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    samples[samples.len() / 2] * 1e9
}

// ---------------------------------------------------------------------
// Baseline 1: the previous Cluster★ emission shape — every next_id pays
// an interval-set point insertion, every placement allocates two gap
// lists.
// ---------------------------------------------------------------------

/// Gap-list-allocating placement draw (the shape this PR removed from
/// `IntervalSet::sample_fitting_start`): computes the gap vector twice.
fn sample_fitting_start_alloc(set: &IntervalSet, rng: &mut Xoshiro256pp, len: u128) -> Option<Id> {
    let total: u128 = set
        .gaps()
        .iter()
        .filter(|g| g.len >= len)
        .map(|g| g.len - len + 1)
        .sum();
    if set.segment_count() == 0 {
        return Some(Id(uniform_below(rng, set.space().size())));
    }
    if total == 0 {
        return None;
    }
    let mut r = uniform_below(rng, total);
    for gap in set.gaps() {
        if gap.len < len {
            continue;
        }
        let starts = gap.len - len + 1;
        if r < starts {
            return Some(set.space().add(gap.start, r));
        }
        r -= starts;
    }
    unreachable!("sample index exceeded counted fitting starts");
}

/// The previous Cluster★ generator shape: eager per-ID footprint
/// insertion plus allocating placement draws.
struct EagerClusterStar {
    space: IdSpace,
    rng: Xoshiro256pp,
    reserved: IntervalSet,
    emitted: IntervalSet,
    current: Option<(Arc, u128)>,
    next_len: u128,
}

impl EagerClusterStar {
    fn new(space: IdSpace, seed: u64) -> Self {
        EagerClusterStar {
            space,
            rng: Xoshiro256pp::new(seed),
            reserved: IntervalSet::new(space),
            emitted: IntervalSet::new(space),
            current: None,
            next_len: 1,
        }
    }

    fn next_id(&mut self) -> Id {
        let (run, used) = match self.current {
            Some((run, used)) if used < run.len => (run, used),
            _ => {
                let len = self.next_len;
                let start = sample_fitting_start_alloc(&self.reserved, &mut self.rng, len)
                    .expect("baseline bench stays within capacity");
                let run = Arc::new(self.space, start, len);
                self.reserved.insert(run);
                self.next_len = len * 2;
                self.current = Some((run, 0));
                (run, 0)
            }
        };
        let id = run.nth(self.space, used);
        self.current = Some((run, used + 1));
        self.emitted.insert_point(id);
        id
    }
}

/// Cluster★ `next_id` throughput: lazy-footprint generator vs the eager
/// per-ID-insertion baseline. Cost unit: ns per generated ID.
pub fn bench_cluster_star_next_id() -> PerfResult {
    let space = IdSpace::with_bits(64).unwrap();
    let batch = 4096u32;
    let alg = ClusterStar::new(space);
    let mut gen = alg.spawn(42);
    let mut seed = 0u64;
    let new_cost = time_ns(|| {
        seed += 1;
        gen.reset(seed);
        for _ in 0..batch {
            std::hint::black_box(gen.next_id().unwrap());
        }
    }) / batch as f64;
    let baseline_cost = time_ns(|| {
        seed += 1;
        let mut gen = EagerClusterStar::new(space, seed);
        for _ in 0..batch {
            std::hint::black_box(gen.next_id());
        }
    }) / batch as f64;
    PerfResult {
        name: "cluster_star_next_id".into(),
        unit: "ns/id",
        new_cost,
        baseline_cost,
    }
}

/// Fragmented `sample_fitting_start`: the zero-allocation gap cursor vs
/// the double gap-list allocation. Cost unit: ns per draw.
pub fn bench_sample_fitting_start() -> PerfResult {
    let space = IdSpace::with_bits(64).unwrap();
    let mut set = IntervalSet::new(space);
    let mut rng = Xoshiro256pp::new(2);
    for _ in 0..256 {
        if let Some(start) = set.sample_fitting_start(&mut rng, 1 << 16) {
            set.insert(Arc::new(space, start, 1 << 16));
        }
    }
    let mut rng_new = Xoshiro256pp::new(3);
    let new_cost = time_ns(|| {
        std::hint::black_box(set.sample_fitting_start(&mut rng_new, 1 << 12));
    });
    let mut rng_old = Xoshiro256pp::new(3);
    let baseline_cost = time_ns(|| {
        std::hint::black_box(sample_fitting_start_alloc(&set, &mut rng_old, 1 << 12));
    });
    PerfResult {
        name: "sample_fitting_start_fragmented_256_runs".into(),
        unit: "ns/draw",
        new_cost,
        baseline_cost,
    }
}

// ---------------------------------------------------------------------
// Baseline 2: the previous footprints_collide phase 2 — every point
// scanned against every footprint.
// ---------------------------------------------------------------------

fn footprints_collide_naive(footprints: &[Footprint<'_>]) -> bool {
    use std::collections::HashMap;
    let mut segments: Vec<(u128, u128, usize)> = Vec::new();
    for (owner, fp) in footprints.iter().enumerate() {
        if let Footprint::Arcs(set) = fp {
            segments.extend(set.segments().map(|(lo, hi)| (lo, hi, owner)));
        }
    }
    segments.sort_unstable_by_key(|&(lo, _, _)| lo);
    let mut run_hi = 0u128;
    let mut run_owner = usize::MAX;
    for &(lo, hi, owner) in &segments {
        if lo < run_hi {
            if owner != run_owner {
                return true;
            }
            run_hi = run_hi.max(hi);
        } else {
            run_hi = hi;
            run_owner = owner;
        }
    }
    // The removed O(points × footprints) nested loop, SipHash point map.
    let mut seen_points: HashMap<u128, usize> = HashMap::new();
    for (owner, fp) in footprints.iter().enumerate() {
        if let Footprint::Points(points) = fp {
            for id in *points {
                match seen_points.entry(id.value()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != owner {
                            return true;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(owner);
                    }
                }
                for (other, ofp) in footprints.iter().enumerate() {
                    if other == owner {
                        continue;
                    }
                    if let Footprint::Arcs(set) = ofp {
                        if set.contains(*id) {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// The shared k-way workload: 16 disjoint arc footprints of 64 segments
/// (2¹² IDs each) plus 2 point footprints of 4096 IDs, all pairwise
/// disjoint. Used by both `bench_footprints_collide_kway` and the
/// criterion `collision_detection` suite so the committed JSON numbers
/// and the interactive bench always measure the same workload.
pub fn kway_fixture() -> (Vec<IntervalSet>, Vec<Vec<Id>>) {
    let space = IdSpace::with_bits(64).unwrap();
    let mut rng = Xoshiro256pp::new(5);
    let mut arc_sets = Vec::new();
    let mut occupied = IntervalSet::new(space);
    for _ in 0..16 {
        let mut set = IntervalSet::new(space);
        for _ in 0..64 {
            let start = occupied
                .sample_fitting_start(&mut rng, 1 << 12)
                .expect("space is sparse");
            let arc = Arc::new(space, start, 1 << 12);
            occupied.insert(arc);
            set.insert(arc);
        }
        arc_sets.push(set);
    }
    let mut point_sets = Vec::new();
    for _ in 0..2 {
        let mut pts = Vec::with_capacity(4096);
        for _ in 0..4096 {
            let start = occupied
                .sample_fitting_start(&mut rng, 1)
                .expect("space is sparse");
            occupied.insert(Arc::new(space, start, 1));
            pts.push(start);
        }
        point_sets.push(pts);
    }
    (arc_sets, point_sets)
}

/// Borrows a [`kway_fixture`] as the footprint slice detectors take.
pub fn kway_footprints<'a>(
    arc_sets: &'a [IntervalSet],
    point_sets: &'a [Vec<Id>],
) -> Vec<Footprint<'a>> {
    arc_sets
        .iter()
        .map(Footprint::Arcs)
        .chain(point_sets.iter().map(|p| Footprint::Points(p)))
        .collect()
}

/// K-way collision detection over mixed arc + point footprints: sorted
/// binary-search phase 2 vs the nested loop. Cost unit: ns per
/// detection pass.
pub fn bench_footprints_collide_kway() -> PerfResult {
    let (arc_sets, point_sets) = kway_fixture();
    let footprints = kway_footprints(&arc_sets, &point_sets);
    let mut scratch = CollisionScratch::new();
    let new_cost = time_ns(|| {
        std::hint::black_box(uuidp_sim::collision::footprints_collide_with(
            &mut scratch,
            &footprints,
        ));
    });
    let baseline_cost = time_ns(|| {
        std::hint::black_box(footprints_collide_naive(&footprints));
    });
    let _ = footprints_collide(&footprints); // sanity: API parity
    PerfResult {
        name: "footprints_collide_16_arcs_2x4096_points".into(),
        unit: "ns/pass",
        new_cost,
        baseline_cost,
    }
}

/// End-to-end `estimate_oblivious`: the scratch-reusing work-stealing
/// engine vs spawn-per-trial. Single-threaded so the comparison isolates
/// per-trial overhead. Cost unit: µs per trial.
pub fn bench_estimate_oblivious() -> PerfResult {
    let space = IdSpace::with_bits(40).unwrap();
    let alg = ClusterStar::new(space);
    let profile = DemandProfile::uniform(16, 1 << 10);
    let trials = 512u64;
    let mut cfg = TrialConfig::new(trials, 42);
    cfg.threads = 1;
    let new_cost = time_ns(|| {
        std::hint::black_box(estimate_oblivious(&alg, &profile, cfg));
    }) / (trials as f64 * 1e3);
    let baseline_cost = time_ns(|| {
        // The previous engine shape: fresh boxed generators and detector
        // state every trial.
        let root = SeedTree::new(42);
        let mut collisions = 0u64;
        for t in 0..trials {
            let tree = root.trial(t);
            collisions += run_oblivious_symbolic(&alg, &profile, &tree).collided as u64;
        }
        std::hint::black_box(collisions);
    }) / (trials as f64 * 1e3);
    PerfResult {
        name: "estimate_oblivious_cluster_star_16x1024".into(),
        unit: "us/trial",
        new_cost,
        baseline_cost,
    }
}

// ---------------------------------------------------------------------
// Baseline 3 (PR 2): scalar service issuing — the same sharded service,
// but every ID is its own request/lease/audit-record, which is what an
// ID-per-call front-end over `next_id` costs end to end.
// ---------------------------------------------------------------------

/// End-to-end ns/ID of the issuing service under a uniform mix:
/// `requests` leases of `count` IDs over 8 tenants, 2 shards, audit tap
/// enabled. Median of three runs.
fn service_ns_per_id(kind: AlgorithmKind, requests: u64, count: u128) -> f64 {
    let space = IdSpace::with_bits(48).unwrap();
    let mut samples: Vec<f64> = (0..3)
        .map(|i| {
            let mut service = ServiceConfig::new(kind.clone(), space);
            service.shards = 2;
            service.master_seed = 0xBE7C + i;
            let cfg = StressConfig::new(service, 8, requests, count);
            let report = run_stress(cfg);
            report.elapsed.as_nanos() as f64 / report.issued_ids as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    samples[samples.len() / 2]
}

/// The tentpole's end-to-end claim: batch-leased service issuance
/// (1024-ID leases) vs the scalar-issue baseline (1-ID leases) for the
/// same algorithm, both with the online audit tap enabled. ≤ 1000 ns/ID
/// is the "1M IDs/s sustained" acceptance line. Cost unit: ns per
/// issued ID.
pub fn bench_service_issue(kind: AlgorithmKind, label: &str) -> PerfResult {
    // ~1M IDs through the batched path; the scalar baseline pays a full
    // request round-trip per ID, so it measures a smaller volume.
    let new_cost = service_ns_per_id(kind.clone(), 1024, 1024);
    let baseline_cost = service_ns_per_id(kind, 32_768, 1);
    PerfResult {
        name: format!("service_issue_{label}_2shards_audited"),
        unit: "ns/id",
        new_cost,
        baseline_cost,
    }
}

// ---------------------------------------------------------------------
// Baseline 4 (PR 3): the single-thread audit pipeline — same service,
// same striped audit, but every stripe owned by one consumer thread.
// ---------------------------------------------------------------------

/// Full-lifecycle (start → issue → drain → shutdown) ns/ID of an
/// audit-bound service. Random-algorithm leases fragment into per-ID
/// arcs, so the audit does `O(count)` interval work per lease while the
/// producers stay cheap — the pipeline, not the generators, is the
/// bottleneck by construction. Unlike the issue benches this measures
/// through `shutdown()`, because the audit tail after the worker drain
/// is exactly the cost a wider pipeline is supposed to absorb.
fn audited_wall_ns_per_id(audit_threads: usize) -> f64 {
    let space = IdSpace::with_bits(30).unwrap();
    let requests = 2048u64;
    let count = 32u128;
    let mut samples: Vec<f64> = (0..3)
        .map(|i| {
            let mut cfg = uuidp_service::service::ServiceConfig::new(AlgorithmKind::Random, space);
            cfg.shards = 2;
            cfg.audit_stripes = 64;
            cfg.audit_threads = audit_threads;
            cfg.master_seed = 0xA0D17 + i;
            let start = Instant::now();
            let service = uuidp_service::service::IdService::start(cfg);
            for r in 0..requests {
                service.issue(r % 32, count);
            }
            service.drain();
            let report = service.shutdown();
            start.elapsed().as_nanos() as f64 / report.issued_ids as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    samples[samples.len() / 2]
}

/// The PR 3 pipeline guardrail: the 4-thread stripe-routed audit vs the
/// single consumer that owned every stripe before, on an audit-bound
/// (point-lease) workload. On multi-core hosts the fan-out divides the
/// audit's interval work; on a single-core runner (like the container
/// this JSON is recorded on) the honest expectation is ~1.0× — the
/// number then pins that per-stripe routing and the extra channels cost
/// nothing over the old single tap. Cost unit: ns per issued ID, full
/// service lifecycle.
pub fn bench_audit_pipeline() -> PerfResult {
    PerfResult {
        name: "service_audit_pipeline_random_point_leases".into(),
        unit: "ns/id",
        new_cost: audited_wall_ns_per_id(4),
        baseline_cost: audited_wall_ns_per_id(1),
    }
}

// ---------------------------------------------------------------------
// Baseline 5 (PR 4): connection churn and single-node fleets — what the
// persistent-connection client pool and the multi-node harness replace.
// ---------------------------------------------------------------------

/// Remote lease round-trip cost: one persistent connection reused for
/// every request vs the connect-per-request client shape (dial, lease,
/// hang up — the churn the ROADMAP's thread-per-connection item is
/// about, since every throwaway connection also costs the server a
/// handler thread). Cost unit: ns per leased round trip.
pub fn bench_remote_connection_reuse() -> PerfResult {
    use uuidp_service::net::{RemoteClient, TcpServer};
    let space = IdSpace::with_bits(48).unwrap();
    let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
    let server = TcpServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let mut tenant = 0u64;
    let mut client = RemoteClient::connect(addr, space).expect("persistent client");
    let new_cost = time_ns(|| {
        tenant = (tenant + 1) % 64;
        let lease = client.lease(tenant, 32).expect("persistent lease");
        std::hint::black_box(lease.granted);
    });
    let baseline_cost = time_ns(|| {
        tenant = (tenant + 1) % 64;
        let mut throwaway = RemoteClient::connect(addr, space).expect("throwaway client");
        let lease = throwaway.lease(tenant, 32).expect("throwaway lease");
        std::hint::black_box(lease.granted);
        let _ = throwaway.quit();
    });
    let _ = client.shutdown();
    let _ = server.join();
    PerfResult {
        name: "remote_lease_persistent_vs_connect_per_request".into(),
        unit: "ns/lease",
        new_cost,
        baseline_cost,
    }
}

/// Full-lifecycle fleet issuance (launch → route over TCP with durable
/// write-ahead state → graceful shutdown), ns per issued ID. Median of
/// three runs.
fn fleet_ns_per_id(nodes: usize) -> f64 {
    use uuidp_fleet::run::{run_fleet, FleetConfig};
    let space = IdSpace::with_bits(48).unwrap();
    let mut samples: Vec<f64> = (0..3)
        .map(|i| {
            let mut service = ServiceConfig::new(AlgorithmKind::Cluster, space);
            service.master_seed = 0xF1EE7 + i;
            let dir = std::env::temp_dir().join(format!(
                "uuidp-bench-fleet-{}-{nodes}-{i}",
                std::process::id()
            ));
            let mut cfg = FleetConfig::new(service, nodes, &dir);
            cfg.tenants = 6;
            cfg.requests = 1200;
            cfg.count = 256;
            cfg.reservation = 4096;
            let start = Instant::now();
            let report = run_fleet(cfg).expect("bench fleet run");
            let ns = start.elapsed().as_nanos() as f64 / report.issued_ids as f64;
            let _ = std::fs::remove_dir_all(&dir);
            ns
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    samples[samples.len() / 2]
}

/// The fleet end-to-end entry: 3 durable nodes behind the global-audit
/// router vs the same workload on a 1-node fleet. On multi-core hosts
/// the node fan-out parallelizes issuance; on a single-core runner the
/// honest expectation is ~1× — the number then pins that the router,
/// the per-node TCP hops, and the write-ahead persistence cost nothing
/// over a single node. Cost unit: ns per issued ID, full lifecycle.
pub fn bench_fleet_issue() -> PerfResult {
    PerfResult {
        name: "fleet_issue_3nodes_vs_1node_tcp_durable".into(),
        unit: "ns/id",
        new_cost: fleet_ns_per_id(3),
        baseline_cost: fleet_ns_per_id(1),
    }
}

// ---------------------------------------------------------------------
// Baseline 6 (PR 5): the v1 text wire — per-line parsing and one
// connection per concurrent client — vs protocol v2's binary frames
// and multiplexing.
// ---------------------------------------------------------------------

/// Pure codec cost: encoding + decoding one lease reply as a v2 binary
/// frame vs rendering + parsing the equivalent v1 text line. Same lease
/// shape (4 arcs) on both sides; no sockets, so this isolates exactly
/// what the wire format change buys per message. Cost unit: ns per
/// reply encode+decode.
pub fn bench_frame_codec_vs_text() -> PerfResult {
    use uuidp_client::frame::{decode_frame, encode_frame, FrameBody};
    use uuidp_service::protocol::{parse_lease_line, render_lease};
    use uuidp_service::service::LeaseReply;
    let space = IdSpace::with_bits(64).unwrap();
    let arcs: Vec<Arc> = (0..4u128)
        .map(|i| Arc::new(space, Id(i * (1 << 40) + 12345), 1 << 16))
        .collect();
    let reply = LeaseReply {
        tenant: 42,
        granted: 4 << 16,
        arcs: arcs.clone(),
        error: None,
        halted: false,
    };
    let body = FrameBody::LeaseResp {
        tenant: 42,
        granted: 4 << 16,
        arcs: arcs.iter().map(|a| (a.start.value(), a.len)).collect(),
        error: None,
    };
    let new_cost = time_ns(|| {
        let bytes = encode_frame(7, &body);
        std::hint::black_box(decode_frame(&bytes).unwrap().unwrap());
    });
    let baseline_cost = time_ns(|| {
        let line = render_lease(&reply);
        std::hint::black_box(parse_lease_line(&line, space).unwrap());
    });
    PerfResult {
        name: "wire_codec_v2_frame_vs_v1_text_4arc_lease".into(),
        unit: "ns/reply",
        new_cost,
        baseline_cost,
    }
}

/// End-to-end lease round trip over loopback: a persistent v2 binary
/// client vs a persistent v1 text client against the same negotiating
/// server. Cost unit: ns per leased round trip.
pub fn bench_remote_roundtrip_v2_vs_v1() -> PerfResult {
    use uuidp_client::Client;
    use uuidp_service::net::{RemoteClient, TcpServer};
    let space = IdSpace::with_bits(48).unwrap();
    let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
    let server = TcpServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let mut tenant = 0u64;
    let v2 = Client::connect(addr, space).expect("v2 client");
    let new_cost = time_ns(|| {
        tenant = (tenant + 1) % 64;
        std::hint::black_box(v2.lease(tenant, 32).expect("v2 lease").granted);
    });
    let mut v1 = RemoteClient::connect(addr, space).expect("v1 client");
    let baseline_cost = time_ns(|| {
        tenant = (tenant + 1) % 64;
        std::hint::black_box(v1.lease(tenant, 32).expect("v1 lease").granted);
    });
    let _ = v2.shutdown();
    let _ = v1.quit();
    let _ = server.join();
    PerfResult {
        name: "remote_lease_roundtrip_v2_frames_vs_v1_text".into(),
        unit: "ns/lease",
        new_cost,
        baseline_cost,
    }
}

/// Full-lifecycle remote stress ns/ID for one pooled client shape.
fn pooled_stress_ns_per_id(protocol: uuidp_client::ProtoVersion, workers: usize) -> f64 {
    let space = IdSpace::with_bits(48).unwrap();
    let mut samples: Vec<f64> = (0..3)
        .map(|i| {
            let mut service = ServiceConfig::new(AlgorithmKind::Cluster, space);
            service.master_seed = 0x9E7 + i;
            let mut cfg = StressConfig::new(service, 8, 2048, 128);
            cfg.remote_workers = workers;
            cfg.protocol = protocol;
            let report =
                uuidp_service::stress::run_stress_remote(cfg).expect("bench remote stress");
            report.elapsed.as_nanos() as f64 / report.issued_ids as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    samples[samples.len() / 2]
}

/// The multiplexing headline: the same 4-worker pooled stress run over
/// **one multiplexed v2 connection** vs **four v1 connections** — equal
/// client parallelism and throughput shape, 4× fewer sockets (and,
/// server-side, zero per-connection threads vs four). Cost unit: ns per
/// issued ID, full lifecycle; connection counts are in the name.
pub fn bench_multiplexed_vs_pooled_connections() -> PerfResult {
    PerfResult {
        name: "stress_4workers_v2_mux_1conn_vs_v1_pool_4conns".into(),
        unit: "ns/id",
        new_cost: pooled_stress_ns_per_id(uuidp_client::ProtoVersion::V2, 4),
        baseline_cost: pooled_stress_ns_per_id(uuidp_client::ProtoVersion::V1, 4),
    }
}

// ---------------------------------------------------------------------
// Baseline 7 (PR 6): the adversarial network layer — what a fault-free
// chaos proxy costs on the hot path, and what a fixed fault mix does to
// the tail.
// ---------------------------------------------------------------------

/// Proxy passthrough overhead: v2 lease round trips through a
/// `ChaosProxy` configured with the `none` spec (pure byte forwarding,
/// no faults, no shaping) vs the same client dialing the server
/// directly. The delta is the price of having the chaos layer in the
/// path at all — two extra socket hops and the proxy's copy loop.
/// Cost unit: ns per leased round trip.
pub fn bench_chaos_proxy_passthrough() -> PerfResult {
    use uuidp_client::Client;
    use uuidp_netchaos::{ChaosProxy, ChaosSpec};
    use uuidp_service::net::TcpServer;
    let space = IdSpace::with_bits(48).unwrap();
    let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
    let server = TcpServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let proxy = ChaosProxy::launch(addr, ChaosSpec::none(), 0).expect("launch proxy");
    let mut tenant = 0u64;
    let proxied = Client::connect(proxy.addr(), space).expect("proxied client");
    let new_cost = time_ns(|| {
        tenant = (tenant + 1) % 64;
        std::hint::black_box(proxied.lease(tenant, 32).expect("proxied lease").granted);
    });
    drop(proxied);
    let direct = Client::connect(addr, space).expect("direct client");
    let baseline_cost = time_ns(|| {
        tenant = (tenant + 1) % 64;
        std::hint::black_box(direct.lease(tenant, 32).expect("direct lease").granted);
    });
    let _ = direct.shutdown();
    proxy.shutdown();
    let _ = server.join();
    PerfResult {
        name: "remote_lease_v2_through_passthrough_proxy_vs_direct".into(),
        unit: "ns/lease",
        new_cost,
        baseline_cost,
    }
}

/// Full-lifecycle remote stress p99.9 tail, microseconds, for one
/// chaos shape (median of three runs).
fn stress_tail_p999_us(chaos: Option<uuidp_netchaos::ChaosSpec>) -> f64 {
    let space = IdSpace::with_bits(48).unwrap();
    let mut samples: Vec<f64> = (0..3)
        .map(|i| {
            let mut service = ServiceConfig::new(AlgorithmKind::Cluster, space);
            service.master_seed = 0xC405 + i;
            let mut cfg = StressConfig::new(service, 8, 1024, 128);
            cfg.remote_workers = 3;
            cfg.protocol = uuidp_client::ProtoVersion::V2;
            cfg.chaos = chaos;
            cfg.chaos_seed = 0xC405;
            let report = uuidp_service::stress::run_stress_remote(cfg).expect("bench chaos stress");
            report.p999_us
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    samples[samples.len() / 2]
}

/// Tail latency under a fixed fault mix: the p99.9 issue tail of a
/// 3-worker v2 stress run through the `small` chaos preset (seed
/// 0xC405 — partitions, stream cuts, frame corruption, injected
/// latency) vs the identical run on a clean network. The "speedup"
/// reads as the tail *amplification* the retry/backoff path absorbs
/// while the audit stays duplicate-free; well under 1.0× is the honest
/// expectation. Cost unit: µs at p99.9, full lifecycle.
pub fn bench_chaos_tail_latency() -> PerfResult {
    PerfResult {
        name: "stress_v2_p999_tail_chaos_small_vs_clean".into(),
        unit: "us/p999",
        new_cost: stress_tail_p999_us(Some(uuidp_netchaos::ChaosSpec::small())),
        baseline_cost: stress_tail_p999_us(None),
    }
}

// ---------------------------------------------------------------------
// Baseline 8 (PR 7): the observability layer — what a hot metric
// registry plus corr-id trace stamping costs on the batched issuance
// path, against the same service with tracing switched off.
// ---------------------------------------------------------------------

/// Batched-issuance ns/ID with the trace recorder either live
/// (`obs_trace: true`, the default — every lease stamps worker-persist
/// and worker-emit spans into the ring buffer) or idle (`obs_trace:
/// false` — the recorder is a no-op, the metric registry still counts).
/// Median of three runs.
fn service_ns_per_id_obs(obs_trace: bool, seed_salt: u64) -> f64 {
    let space = IdSpace::with_bits(48).unwrap();
    let mut service = ServiceConfig::new(AlgorithmKind::Cluster, space);
    service.shards = 2;
    service.master_seed = 0x0B5 + seed_salt;
    service.obs_trace = obs_trace;
    let cfg = StressConfig::new(service, 8, 2048, 1024);
    let report = run_stress(cfg);
    report.elapsed.as_nanos() as f64 / report.issued_ids as f64
}

/// The PR 7 overhead guardrail: batched issuance with the registry hot
/// and the trace recorder armed vs the identical run with tracing
/// idle. The acceptance line is ≤ 5% overhead (speedup ≥ 0.95×). The
/// registry's relaxed counters and streaming histograms are in the
/// path on both sides; an armed recorder on this path stamps only
/// span-joinable and milestone events (wire corrs, persists,
/// duplicates), so batched corr-0 issuance stays off the ring by
/// design — the delta pins that arming tracing is free for in-process
/// load, and the remote round-trip benches price the per-request wire
/// stamps. The PR 6 comparison lives across JSON artifacts:
/// `service_issue_cluster`'s `new` in BENCH_PR6.json vs BENCH_PR7.json
/// is the registry's own price on the same workload. Cost unit: ns per
/// issued ID.
pub fn bench_obs_overhead() -> PerfResult {
    // Interleaved hot/idle pairs, median of 5: per-sample service
    // startup and scheduler drift hit both sides alike instead of
    // whichever side happened to run during the noisy window.
    let mut hot = Vec::new();
    let mut idle = Vec::new();
    for i in 0..5 {
        hot.push(service_ns_per_id_obs(true, i));
        idle.push(service_ns_per_id_obs(false, i));
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
        v[v.len() / 2]
    };
    PerfResult {
        name: "service_issue_obs_tracing_hot_vs_idle".into(),
        unit: "ns/id",
        new_cost: median(hot),
        baseline_cost: median(idle),
    }
}

/// The scrape-surface price: v2 lease round trips while a second
/// connection scrapes the full Prometheus exposition in a tight loop,
/// vs the same round trips with no scraper attached. This is the
/// adversarial worst case — a zero-interval scraper — so on a
/// single-core runner the ratio is dominated by plain CPU time-slicing
/// between the two clients, not by the obs layer: the exposition is
/// built outside the worker threads from relaxed counter reads, so a
/// snapshot never takes a lock a lease needs. A real scraper polling
/// at seconds-scale intervals is invisible. Cost unit: ns per leased
/// round trip.
pub fn bench_lease_under_scrape_load() -> PerfResult {
    use uuidp_client::Client;
    use uuidp_service::net::{RemoteClient, TcpServer};
    let space = IdSpace::with_bits(48).unwrap();
    let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
    let server = TcpServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let mut tenant = 0u64;
    let client = Client::connect(addr, space).expect("v2 client");
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scraper = RemoteClient::connect(addr, space).expect("scraper");
            let mut scrapes = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::hint::black_box(scraper.metrics().expect("scrape"));
                scrapes += 1;
            }
            let _ = scraper.quit();
            scrapes
        })
    };
    let new_cost = time_ns(|| {
        tenant = (tenant + 1) % 64;
        std::hint::black_box(client.lease(tenant, 32).expect("scraped lease").granted);
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes > 0, "the scraper never completed a pass");
    let baseline_cost = time_ns(|| {
        tenant = (tenant + 1) % 64;
        std::hint::black_box(client.lease(tenant, 32).expect("quiet lease").granted);
    });
    let _ = client.shutdown();
    let _ = server.join();
    PerfResult {
        name: "remote_lease_v2_under_continuous_scrape_vs_quiet".into(),
        unit: "ns/lease",
        new_cost,
        baseline_cost,
    }
}

/// The PR 9 time-series price: folding an already-parsed snapshot into
/// the constant-memory window ring (counter deltas, gauge last-values,
/// histogram delta merge) plus a windowed-rate query, vs parsing the
/// exposition text that precedes it in every scrape pipeline. Ingest
/// riding well under the parse it is downstream of means the dashboard
/// aggregation adds nothing material to a scrape's cost — and the ring
/// never grows, so tick one million costs what tick one did. Cost
/// unit: ns per scrape tick.
pub fn bench_timeseries_ingest() -> PerfResult {
    use uuidp_obs::{Registry, Snapshot, TimeSeries};
    // A realistic family mix: the service's own counters, a reactor
    // gauge, and a well-populated latency histogram.
    let registry = Registry::new();
    registry.counter("uuidp_leases_total").add(10_000);
    registry.counter("uuidp_ids_issued_total").add(2_560_000);
    registry.counter("uuidp_lease_errors_total").add(3);
    registry.counter("uuidp_audit_records_total").add(10_000);
    registry.gauge("uuidp_net_out_queue_bytes").set(4096);
    let hist = registry.histogram("uuidp_lease_latency_ns");
    let mut rng = Xoshiro256pp::new(9);
    for _ in 0..4096 {
        hist.record_ns(uniform_below(&mut rng, 1 << 24) as u64);
    }
    let text = registry.snapshot().render_prometheus();
    let snap = Snapshot::parse_prometheus(&text);
    let mut series = TimeSeries::new(1, 64);
    let mut tick = 0u64;
    let new_cost = time_ns(|| {
        tick += 1;
        series.ingest(tick, &snap);
        std::hint::black_box(series.rate("uuidp_ids_issued_total", 1));
    });
    let baseline_cost = time_ns(|| {
        std::hint::black_box(Snapshot::parse_prometheus(&text).metrics.len());
    });
    PerfResult {
        name: "obs_timeseries_ingest_vs_exposition_parse".into(),
        unit: "ns/tick",
        new_cost,
        baseline_cost,
    }
}

/// The dashboard's poll price: one full `uuidp top` cycle — a v2
/// metrics round trip, exposition parse, window ingest, and the
/// windowed ids/s + p50/p99/p999 queries — vs the bare metrics round
/// trip alone. The delta is everything `top` adds on top of the wire
/// scrape it cannot avoid; `--once` is exactly two of these polls.
/// Cost unit: ns per poll.
pub fn bench_top_poll_cost() -> PerfResult {
    use uuidp_client::Client;
    use uuidp_obs::{Snapshot, TimeSeries};
    use uuidp_service::net::TcpServer;
    let space = IdSpace::with_bits(48).unwrap();
    let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
    let server = TcpServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let client = Client::connect(addr, space).expect("v2 client");
    // Populate the histogram and counters the poll reads back.
    for tenant in 0..32u64 {
        client.lease(tenant, 256).expect("warm lease");
    }
    let mut series = TimeSeries::new(1, 64);
    let mut tick = 0u64;
    let new_cost = time_ns(|| {
        tick += 1;
        let text = client.metrics().expect("scrape");
        let snap = Snapshot::parse_prometheus(&text);
        series.ingest(tick, &snap);
        std::hint::black_box((
            series.rate("uuidp_ids_issued_total", 1),
            series.quantile_ns("uuidp_lease_latency_ns", 8, 0.50),
            series.quantile_ns("uuidp_lease_latency_ns", 8, 0.99),
            series.quantile_ns("uuidp_lease_latency_ns", 8, 0.999),
        ));
    });
    let baseline_cost = time_ns(|| {
        std::hint::black_box(client.metrics().expect("bare scrape").len());
    });
    let _ = client.shutdown();
    let _ = server.join();
    PerfResult {
        name: "top_poll_full_cycle_vs_bare_metrics_roundtrip".into(),
        unit: "ns/poll",
        new_cost,
        baseline_cost,
    }
}

/// `n` raw v2 connections with completed hellos, held open (idle) by
/// the caller.
fn open_idle_v2_conns(
    addr: std::net::SocketAddr,
    space: IdSpace,
    n: usize,
) -> Vec<std::net::TcpStream> {
    use uuidp_client::frame::{self, FrameBody};
    (0..n)
        .map(|i| {
            let mut stream =
                std::net::TcpStream::connect(addr).unwrap_or_else(|e| panic!("dial conn {i}: {e}"));
            stream.set_nodelay(true).expect("nodelay");
            frame::write_frame(
                &mut stream,
                0,
                &FrameBody::Hello {
                    version: frame::VERSION,
                    space: space.size(),
                },
            )
            .expect("hello");
            let hello = frame::read_frame(&mut stream).expect("hello-ok");
            assert!(matches!(hello.body, FrameBody::HelloOk { .. }));
            stream
        })
        .collect()
}

/// Child-process half of the idle bench, behind the repro binary's
/// hidden `hold-conns ADDR N` mode: opens `n` idle v2 connections
/// against `addr`, prints `ready`, and holds them until stdin reaches
/// EOF (the parent dropping the pipe). Client sockets live in child
/// processes because containers routinely deny `setrlimit`, so a
/// single process cannot hold both halves of 10k+ loopback pairs
/// within a ~20k fd budget — but each side separately fits.
pub fn hold_conns_main(addr: &str, n: usize) -> std::process::ExitCode {
    use std::io::Write as _;
    let addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hold-conns: bad address {addr}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let space = IdSpace::with_bits(48).unwrap();
    let held = open_idle_v2_conns(addr, space, n);
    println!("ready");
    let _ = std::io::stdout().flush();
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    drop(held);
    std::process::ExitCode::SUCCESS
}

/// Spawns `repro hold-conns` children collectively holding `total` idle
/// v2 connections, ≤5000 per child, and waits until every child reports
/// its connections are up. `None` when the current executable is not
/// the repro binary (the only one with the mode).
fn spawn_conn_holders(
    addr: std::net::SocketAddr,
    total: usize,
) -> Option<Vec<std::process::Child>> {
    use std::io::BufRead as _;
    let exe = std::env::current_exe().ok()?;
    let stem = exe.file_stem()?.to_string_lossy().into_owned();
    if !stem.starts_with("repro") {
        return None;
    }
    const PER_CHILD: usize = 5_000;
    let mut children = Vec::new();
    let mut left = total;
    while left > 0 {
        let n = left.min(PER_CHILD);
        left -= n;
        let child = std::process::Command::new(&exe)
            .arg("hold-conns")
            .arg(addr.to_string())
            .arg(n.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .ok()?;
        children.push(child);
    }
    for child in &mut children {
        let mut line = String::new();
        let mut reader = std::io::BufReader::new(child.stdout.as_mut()?);
        reader.read_line(&mut line).ok()?;
        if line.trim() != "ready" {
            return None;
        }
    }
    Some(children)
}

/// The PR 8 headline: what parked v2 connections cost. `new` is the
/// epoll reactor's wakeups per second holding 10,000 idle connections —
/// effectively zero, the thread sleeps in `epoll_wait` until a byte
/// arrives. `baseline` is the portable poll-rotation fallback holding a
/// tenth of the connections, which must keep waking to re-scan its
/// sockets. Actual connection counts are in the name. The client
/// sockets are held by `hold-conns` child processes so the fd budget
/// bounds only the server side; without that mode (or enough fds) the
/// bench scales down in-process. Cost unit: reactor wakeups per idle
/// second.
pub fn bench_reactor_idle_wakeups() -> PerfResult {
    use uuidp_service::net::{RemoteClient, ServerOptions, TcpServer};
    use uuidp_service::reactor::{raise_nofile, NetBackend};
    let space = IdSpace::with_bits(48).unwrap();
    // Try for headroom anyway — some hosts do let root raise it.
    let limit = raise_nofile(65_536).unwrap_or(1_024).max(1_024);
    let epoll_conns = if NetBackend::epoll_compiled() {
        // Server-side fds only (accepted sockets); children hold the
        // dialing half. In-process fallback needs both halves.
        ((limit.saturating_sub(512)) as usize).min(10_000)
    } else {
        256 // rotation-only build: keep the headline side honest but small
    };
    let poll_conns = (epoll_conns / 10).max(64);
    let measure = |backend: NetBackend, conns: usize| -> f64 {
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let options = ServerOptions {
            backend,
            ..ServerOptions::default()
        };
        let server = TcpServer::bind_with("127.0.0.1:0", config, options).expect("bind loopback");
        let mut holders = spawn_conn_holders(server.local_addr(), conns);
        let held = if holders.is_none() {
            let inproc = conns.min((limit.saturating_sub(512) / 3) as usize);
            open_idle_v2_conns(server.local_addr(), space, inproc)
        } else {
            Vec::new()
        };
        let wakeups = server.registry().counter("uuidp_net_wakeups_total");
        let before = wakeups.get();
        std::thread::sleep(std::time::Duration::from_secs(1));
        let woke = (wakeups.get() - before) as f64;
        drop(held);
        if let Some(children) = holders.as_mut() {
            for child in children.iter_mut() {
                drop(child.stdin.take()); // EOF: release the connections
                let _ = child.wait();
            }
        }
        let ctl = RemoteClient::connect(server.local_addr(), space).expect("control conn");
        let _ = ctl.shutdown();
        let _ = server.join();
        woke
    };
    let backend_new = if NetBackend::epoll_compiled() {
        NetBackend::Epoll
    } else {
        NetBackend::Poll
    };
    // Floor at 0.5 wakeups/s: an idle epoll reactor genuinely reads 0,
    // and a zero cost would render as an infinite speedup in the JSON.
    let new_cost = measure(backend_new, epoll_conns).max(0.5);
    let baseline_cost = measure(NetBackend::Poll, poll_conns).max(0.5);
    PerfResult {
        name: format!(
            "reactor_idle_wakeups_per_s_{backend_new}_{epoll_conns}conns_vs_poll_{poll_conns}conns"
        ),
        unit: "wakeups/s",
        new_cost,
        baseline_cost,
    }
}

/// Vectored reply flushing: how many queued replies the reactor retires
/// per write syscall when a pipelined client keeps whole batches in
/// flight. `new` is the measured syscalls per reply (the reciprocal of
/// the server's `uuidp_net_replies_per_syscall` mean) under 256-deep
/// pipelining; `baseline` is the old demux's locked write-per-reply:
/// exactly one syscall each. Cost unit: write syscalls per reply.
pub fn bench_reactor_replies_per_syscall() -> PerfResult {
    use std::io::Write as _;
    use uuidp_client::frame::{self, FrameBody};
    use uuidp_service::net::{RemoteClient, TcpServer};
    let space = IdSpace::with_bits(48).unwrap();
    let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
    let server = TcpServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let mut stream = open_idle_v2_conns(server.local_addr(), space, 1)
        .pop()
        .expect("one conn");
    let mut corr = 0u64;
    for _ in 0..64 {
        let mut batch = Vec::new();
        for _ in 0..256 {
            corr += 1;
            batch.extend_from_slice(&frame::encode_frame(
                corr,
                &FrameBody::LeaseReq {
                    tenant: corr % 8,
                    count: 1,
                },
            ));
        }
        stream.write_all(&batch).expect("batch write");
        for _ in 0..256 {
            let reply = frame::read_frame(&mut stream).expect("reply");
            assert!(matches!(reply.body, FrameBody::LeaseResp { .. }));
        }
    }
    let hist = server
        .registry()
        .histogram("uuidp_net_replies_per_syscall")
        .snapshot();
    let replies_per_syscall = if hist.count() > 0 {
        hist.mean_ns()
    } else {
        1.0
    };
    drop(stream);
    let ctl = RemoteClient::connect(server.local_addr(), space).expect("control conn");
    let _ = ctl.shutdown();
    let _ = server.join();
    PerfResult {
        name: "reactor_vectored_flush_syscalls_per_reply_vs_write_per_reply".into(),
        unit: "syscalls/reply",
        new_cost: 1.0 / replies_per_syscall.max(1.0),
        baseline_cost: 1.0,
    }
}

/// Runs the whole suite.
pub fn run_all() -> Vec<PerfResult> {
    vec![
        bench_cluster_star_next_id(),
        bench_sample_fitting_start(),
        bench_footprints_collide_kway(),
        bench_estimate_oblivious(),
        bench_service_issue(AlgorithmKind::Cluster, "cluster"),
        bench_service_issue(AlgorithmKind::BinsStar, "bins_star"),
        bench_audit_pipeline(),
        bench_remote_connection_reuse(),
        bench_fleet_issue(),
        bench_frame_codec_vs_text(),
        bench_remote_roundtrip_v2_vs_v1(),
        bench_multiplexed_vs_pooled_connections(),
        bench_chaos_proxy_passthrough(),
        bench_chaos_tail_latency(),
        bench_obs_overhead(),
        bench_lease_under_scrape_load(),
        bench_timeseries_ingest(),
        bench_top_poll_cost(),
        bench_reactor_idle_wakeups(),
        bench_reactor_replies_per_syscall(),
    ]
}

/// Renders results as the committed JSON document.
pub fn to_json(pr: u32, results: &[PerfResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"pr\": {pr},");
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"new\": {:.2}, \"baseline\": {:.2}, \"speedup\": {:.2}}}",
            r.name,
            r.unit,
            r.new_cost,
            r.baseline_cost,
            r.speedup()
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_and_fast_detectors_agree_on_random_inputs() {
        let space = IdSpace::new(1 << 16).unwrap();
        let mut rng = Xoshiro256pp::new(11);
        for _ in 0..200 {
            // A couple of random arc sets and a random point list; overlap
            // is common at this density, so both branches get exercised.
            let mut sets = Vec::new();
            for _ in 0..3 {
                let mut set = IntervalSet::new(space);
                for _ in 0..8 {
                    let start = uniform_below(&mut rng, 1 << 16);
                    let len = 1 + uniform_below(&mut rng, 1 << 7);
                    set.insert(Arc::new(space, Id(start), len));
                }
                sets.push(set);
            }
            let points: Vec<Id> = (0..32)
                .map(|_| Id(uniform_below(&mut rng, 1 << 16)))
                .collect();
            let fps: Vec<Footprint<'_>> = sets
                .iter()
                .map(Footprint::Arcs)
                .chain(std::iter::once(Footprint::Points(&points)))
                .collect();
            assert_eq!(
                footprints_collide(&fps),
                footprints_collide_naive(&fps),
                "detectors disagree"
            );
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let results = vec![PerfResult {
            name: "x".into(),
            unit: "ns",
            new_cost: 1.0,
            baseline_cost: 2.0,
        }];
        let json = to_json(1, &results);
        assert!(json.contains("\"speedup\": 2.00"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
