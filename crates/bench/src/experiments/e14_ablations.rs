//! E14 — ablations of the two design choices the paper fixes implicitly.
//!
//! **EA1 — Bins★ chunk count.** Section 7.1 sets `C = ⌈log m − log log m⌉`;
//! the largest fitting `C` (our `MaxFit`) uses more of the universe. More
//! chunks means more (and therefore smaller-probability) bins in every
//! chunk *and* more per-instance capacity; the competitive ratio should
//! only improve. Measured at `m = 2¹⁰` where the two rules differ
//! (C = 7 vs 8).
//!
//! **EA2 — Cluster★ run growth.** The paper doubles runs. Growing faster
//! (×4, ×8) means *fewer* runs — fewer arcs, so a lower oblivious
//! collision probability — but each opened run exposes a longer
//! predictable tail to an adaptive adversary. The experiment measures
//! both sides of that trade at `m = 2²⁰, n = 16, d = 2¹⁰`.

use uuidp_adversary::profile::DemandProfile;
use uuidp_adversary::run_hunter::RunHunter;
use uuidp_core::algorithms::{BinsStar, BinsStarGeometry, ChunkRule, ClusterStar};
use uuidp_core::id::IdSpace;
use uuidp_sim::experiment::{fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_adaptive, estimate_oblivious, TrialConfig};

use uuidp_analysis::competitive::pair_p_star_bounds;
use uuidp_analysis::theory;

use super::{Check, Ctx, ExperimentReport};

/// Runs E14.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let mut sections = Vec::new();
    let mut checks = Vec::new();

    // ---- EA1: chunk rule. ----
    let m = 1u128 << 10;
    let space = IdSpace::new(m).unwrap();
    let mut table = Table::new(
        "EA1 — Bins★ chunk rule on the skewed pair (127, 1), m = 2^10",
        &[
            "rule",
            "chunks C",
            "capacity",
            "p bins*",
            "competitive ratio",
        ],
    );
    let p_star = pair_p_star_bounds(1, 127, m).upper;
    let mut ratios = Vec::new();
    for (label, rule) in [
        ("paper ⌈log m − log log m⌉", ChunkRule::PaperFormula),
        ("max-fit", ChunkRule::MaxFit),
    ] {
        let geometry = BinsStarGeometry::compute(space, rule);
        let alg = BinsStar::with_rule(space, rule);
        let profile = DemandProfile::pair(126, 1);
        let trials = ctx.trials_for(1.0 / 64.0, 300_000);
        let (est, diag) = estimate_oblivious(&alg, &profile, TrialConfig::new(trials, ctx.seed));
        assert_eq!(diag.exhausted_trials, 0);
        let ratio = est.p_hat / p_star;
        ratios.push(ratio);
        table.push_row(vec![
            label.to_string(),
            geometry.chunks.to_string(),
            geometry.capacity().to_string(),
            fmt_prob(est.p_hat),
            fmt_ratio(ratio),
        ]);
    }
    sections.push(table.markdown());
    let log_m = (m as f64).log2();
    checks.push(Check::new(
        "EA1: more chunks (max-fit) can only help the competitive ratio",
        ratios[1] <= ratios[0] * 1.15 && ratios.iter().all(|&r| r < 6.0 * log_m),
        format!(
            "paper-rule ratio {:.1}, max-fit ratio {:.1} (both O(log m) = {:.0})",
            ratios[0], ratios[1], log_m
        ),
    ));

    // ---- EA2: run growth factor. ----
    let m = 1u128 << 20;
    let space = IdSpace::new(m).unwrap();
    let (n, d) = (16usize, 1u128 << 10);
    let uniform = DemandProfile::uniform(n, d / n as u128);
    let mut table = Table::new(
        "EA2 — Cluster★ run growth factor, m = 2^20, n = 16, d = 2^10",
        &[
            "growth",
            "p oblivious",
            "p adaptive (run-hunter)",
            "adaptive overhead",
        ],
    );
    let mut oblivious_ps = Vec::new();
    let mut overheads = Vec::new();
    for growth in [2u32, 4, 8] {
        let alg = ClusterStar::with_growth(space, growth);
        let obl_trials = ctx.trials_for(theory::cluster_star_adaptive_bound(n, d, m), 400_000);
        let (obl, _) = estimate_oblivious(&alg, &uniform, TrialConfig::new(obl_trials, ctx.seed));
        let attack = RunHunter::new(n, d);
        let adv_trials = ctx.trials_for(theory::cluster_adaptive_lower_bound(n, d, m), 40_000);
        let (adp, _) = estimate_adaptive(&alg, &attack, TrialConfig::new(adv_trials, ctx.seed));
        let overhead = adp.p_hat / obl.p_hat.max(1e-12);
        oblivious_ps.push(obl.p_hat);
        overheads.push(overhead);
        table.push_row(vec![
            format!("×{growth}"),
            fmt_prob(obl.p_hat),
            fmt_prob(adp.p_hat),
            fmt_ratio(overhead),
        ]);
    }
    sections.push(table.markdown());
    checks.push(Check::new(
        "EA2: faster growth means fewer runs, lower oblivious probability",
        oblivious_ps.windows(2).all(|w| w[1] <= w[0] * 1.1),
        format!("oblivious p by growth: {oblivious_ps:?}"),
    ));
    checks.push(Check::new(
        "EA2: every growth factor keeps the adaptive overhead logarithmic",
        overheads
            .iter()
            .all(|&o| o < 3.0 * (1.0 + d as f64 / n as f64).log2()),
        format!(
            "overheads {overheads:?} vs 3·log2(1+d/n) = {:.1}",
            3.0 * (1.0 + d as f64 / n as f64).log2()
        ),
    ));

    ExperimentReport {
        id: "E14",
        title: "Ablations — Bins★ chunk rule and Cluster★ run growth",
        sections,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
