//! E10 — Theorem 10 / Lemma 25: no algorithm is better than `Ω(log m)`
//! competitive.
//!
//! The hard distribution Φ puts weight `∝ 2^(−max(i,j))` on profiles
//! `(2^i, 2^j)`. Lemma 25: every algorithm satisfies
//! `E_Φ[p_A] ≥ (k+1)²/(W·m)` (with `k = ⌊½log m⌋`, `W ≤ 8`), while
//! `E_Φ[p*] = O(log m / m)` — so every algorithm's Φ-averaged competitive
//! ratio is `Ω(log m)`. We compute `E_Φ[p_A]` for the full paper suite
//! (exactly where closed forms exist, by Monte-Carlo otherwise) and verify
//! both inequalities algorithm by algorithm.

use uuidp_adversary::profile::PhiDistribution;
use uuidp_core::algorithms::{Bins, BinsStar, Cluster, ClusterStar, Random};
use uuidp_core::id::IdSpace;
use uuidp_core::traits::Algorithm;
use uuidp_sim::experiment::{fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};

use uuidp_analysis::competitive::phi_p_star_upper;
use uuidp_analysis::exact::{bins_exact, cluster_pair, random_exact};

use super::{Check, Ctx, ExperimentReport};

/// Runs E10.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 12;
    let space = IdSpace::new(m).unwrap();
    let phi = PhiDistribution::new(space);
    let k = phi.k();
    let p_star_expectation = phi_p_star_upper(space);

    // Lemma 25's explicit floor with W ≤ 8, halved for slack since the
    // lemma's chain drops small factors.
    let lemma25_floor = ((k + 1) as f64).powi(2) / (16.0 * m as f64);

    let algorithms: Vec<(Box<dyn Algorithm>, Exactness)> = vec![
        (Box::new(Random::new(space)), Exactness::Random),
        (Box::new(Cluster::new(space)), Exactness::Cluster),
        (Box::new(Bins::new(space, 8)), Exactness::Bins(8)),
        (Box::new(ClusterStar::new(space)), Exactness::Simulated),
        (Box::new(BinsStar::new(space)), Exactness::Simulated),
    ];

    let mut table = Table::new(
        format!(
            "E_Φ[p_A] over Φ on m = 2^12 (k = {k}); E_Φ[p*] ≤ {:.3e}",
            p_star_expectation
        ),
        &[
            "algorithm",
            "E_Φ[p_A]",
            "vs Lemma25 floor",
            "ratio to E_Φ[p*]",
            "≥ ¼·log2(m)?",
        ],
    );

    let log_m = (m as f64).log2();
    let mut all_above_floor = true;
    let mut all_ratios_logarithmic = true;
    let mut sections = Vec::new();

    for (alg, exactness) in &algorithms {
        let mut expectation = 0.0f64;
        for (profile, weight) in phi.enumerate() {
            let (d1, d2) = (profile.demand(0), profile.demand(1));
            let p = match exactness {
                Exactness::Random => random_exact(&profile, m),
                Exactness::Cluster => cluster_pair(d1, d2, m),
                Exactness::Bins(kk) => bins_exact(&profile, *kk, m),
                Exactness::Simulated => {
                    let trials = ctx.trials(30_000);
                    let (est, _) = estimate_oblivious(
                        alg.as_ref(),
                        &profile,
                        TrialConfig::new(trials, ctx.seed),
                    );
                    est.p_hat
                }
            };
            expectation += weight * p;
        }
        let vs_floor = expectation / lemma25_floor;
        let ratio = expectation / p_star_expectation;
        // Φ concentrates weight near the diagonal, where e.g. Cluster's
        // per-profile ratio is constant; its Φ-average works out to
        // ≈ log₂(m)/3 (exact arithmetic, not noise). log₂(m)/4 is the
        // Ω(log m) threshold every algorithm clears.
        let logarithmic = ratio >= 0.25 * log_m;
        all_above_floor &= vs_floor >= 1.0;
        all_ratios_logarithmic &= logarithmic;
        table.push_row(vec![
            alg.name(),
            fmt_prob(expectation),
            fmt_ratio(vs_floor),
            fmt_ratio(ratio),
            logarithmic.to_string(),
        ]);
    }
    sections.push(table.markdown());

    let checks = vec![
        Check::new(
            "Lemma 25: every algorithm's E_Φ[p_A] exceeds the log²m/m floor",
            all_above_floor,
            format!("floor = {lemma25_floor:.3e}"),
        ),
        Check::new(
            "Theorem 10: every algorithm's Φ-average competitive ratio is Ω(log m)",
            all_ratios_logarithmic,
            format!("threshold ¼·log2(m) = {:.1}", 0.25 * log_m),
        ),
    ];

    ExperimentReport {
        id: "E10",
        title: "Theorem 10 / Lemma 25 — the universal Ω(log m) lower bound",
        sections,
        checks,
    }
}

enum Exactness {
    Random,
    Cluster,
    Bins(u128),
    Simulated,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
