//! The experiment registry: E1–E13 (one module per paper result) plus
//! E14 (design-choice ablations) and E15 (collision-time extension).

pub mod e01_diagrams;
pub mod e02_cluster_theorem1;
pub mod e03_bins_theorem2;
pub mod e04_dominance;
pub mod e05_worst_case;
pub mod e06_lower_bound;
pub mod e07_adaptive_cluster;
pub mod e08_cluster_star;
pub mod e09_competitive;
pub mod e10_phi_lower_bound;
pub mod e11_adaptive_competitive;
pub mod e12_table1;
pub mod e13_rocksdb;
pub mod e14_ablations;
pub mod e15_collision_time;

/// Shared experiment context.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Reduce trial counts ~10× for smoke runs.
    pub quick: bool,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            quick: false,
            seed: 0xC0FFEE,
        }
    }
}

impl Ctx {
    /// Scales a full-run trial count down for quick mode.
    pub fn trials(&self, full: u64) -> u64 {
        if self.quick {
            (full / 10).max(200)
        } else {
            full
        }
    }

    /// Trial count sized so a probability around `expected_p` is measured
    /// with ~10% (full) / ~20% (quick) relative error: targets ~100 (resp.
    /// ~25) expected collisions, clamped to `[1000, cap]`.
    pub fn trials_for(&self, expected_p: f64, cap: u64) -> u64 {
        let target_hits = if self.quick { 25.0 } else { 100.0 };
        let ideal = if expected_p > 0.0 {
            (target_hits / expected_p).ceil()
        } else {
            cap as f64
        };
        (ideal as u64).clamp(1000, cap)
    }
}

/// One shape check: a named boolean with context for the report.
#[derive(Debug, Clone)]
pub struct Check {
    /// What property is being asserted.
    pub name: String,
    /// Whether it held.
    pub passed: bool,
    /// Human-readable evidence (the numbers behind the verdict).
    pub detail: String,
}

impl Check {
    /// A named check.
    pub fn new(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Self {
        Check {
            name: name.into(),
            passed,
            detail: detail.into(),
        }
    }
}

/// The output of one experiment: rendered markdown sections plus checks.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"E5"`.
    pub id: &'static str,
    /// Title matching DESIGN.md's index.
    pub title: &'static str,
    /// Rendered markdown sections (tables, diagrams, notes).
    pub sections: Vec<String>,
    /// Shape checks.
    pub checks: Vec<Check>,
}

impl ExperimentReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Renders the whole report as markdown.
    pub fn markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for s in &self.sections {
            out.push_str(s);
            out.push('\n');
        }
        if !self.checks.is_empty() {
            out.push_str("**Shape checks**\n\n");
            for c in &self.checks {
                let mark = if c.passed { "PASS" } else { "FAIL" };
                out.push_str(&format!("- [{mark}] {}: {}\n", c.name, c.detail));
            }
            out.push('\n');
        }
        out
    }
}

/// The signature of an experiment runner.
pub type Runner = fn(&Ctx) -> ExperimentReport;

/// Every experiment, in index order, as `(id, runner)`.
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("e1", e01_diagrams::run as Runner),
        ("e2", e02_cluster_theorem1::run),
        ("e3", e03_bins_theorem2::run),
        ("e4", e04_dominance::run),
        ("e5", e05_worst_case::run),
        ("e6", e06_lower_bound::run),
        ("e7", e07_adaptive_cluster::run),
        ("e8", e08_cluster_star::run),
        ("e9", e09_competitive::run),
        ("e10", e10_phi_lower_bound::run),
        ("e11", e11_adaptive_competitive::run),
        ("e12", e12_table1::run),
        ("e13", e13_rocksdb::run),
        ("e14", e14_ablations::run),
        ("e15", e15_collision_time::run),
    ]
}
