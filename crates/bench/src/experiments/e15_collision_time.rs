//! E15 — first-collision time under steady traffic (extension).
//!
//! The paper bounds collision *probability* at a fixed demand; an
//! operator watches a live fleet and asks *when* the first collision
//! lands. For round-robin traffic the analysis crate derives the
//! distribution: Random exactly (`distribution::random_round_robin_
//! survival`), Cluster in the continuum spacing approximation. This
//! experiment plays the actual game (balanced flood, stop at first
//! collision) and compares measured mean collision times against those
//! curves — the expectation-form of the paper's capacity story:
//! `E[T_random] ≈ √(πm/2)` vs `E[T_cluster] ≈ m/n`.

use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::flooder::BalancedFlood;
use uuidp_core::algorithms::{Cluster, Random};
use uuidp_core::id::IdSpace;
use uuidp_core::rng::{SeedDomain, SeedTree};
use uuidp_core::traits::Algorithm;
use uuidp_sim::experiment::{fmt_ratio, Table};
use uuidp_sim::game::{run_adaptive, GameLimits};

use uuidp_analysis::distribution::{cluster_expected_time, random_expected_time};

use super::{Check, Ctx, ExperimentReport};

/// Runs E15.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 16;
    let space = IdSpace::new(m).unwrap();
    let trials = ctx.trials(2_000).min(5_000);

    let mut table = Table::new(
        format!("Mean first-collision time, m = 2^16, round-robin flood, {trials} trials"),
        &[
            "algorithm",
            "n",
            "measured E[T]",
            "predicted E[T]",
            "ratio",
            "uncollided",
        ],
    );

    let mut checks_ok = true;
    let mut details = Vec::new();
    let mut cluster_mean_at_16 = f64::NAN;
    let mut random_mean_at_16 = f64::NAN;

    for n in [4usize, 16] {
        let cases: Vec<(Box<dyn Algorithm>, f64)> = vec![
            (
                Box::new(Random::new(space)),
                random_expected_time(n as u64, m),
            ),
            (
                Box::new(Cluster::new(space)),
                cluster_expected_time(n as u64, m),
            ),
        ];
        for (alg, predicted) in cases {
            let spec = BalancedFlood::new(n, m);
            let mut total_time = 0.0f64;
            let mut collided = 0u64;
            for t in 0..trials {
                let seeds = SeedTree::new(ctx.seed ^ 0x15).trial(t);
                let mut adv = spec.spawn(seeds.seed(SeedDomain::Adversary));
                let out = run_adaptive(alg.as_ref(), adv.as_mut(), &seeds, GameLimits::default());
                if out.collided {
                    collided += 1;
                    total_time += out.demands.iter().sum::<u128>() as f64;
                }
            }
            let measured = total_time / collided.max(1) as f64;
            let ratio = measured / predicted;
            // Random's curve is exact; Cluster's is a continuum
            // approximation — allow it a wider band.
            let band = if alg.name() == "random" {
                (0.85, 1.18)
            } else {
                (0.6, 1.67)
            };
            let ok = ratio > band.0 && ratio < band.1;
            checks_ok &= ok;
            details.push(format!("{} n={n}: ratio {ratio:.2}", alg.name()));
            if n == 16 {
                if alg.name() == "random" {
                    random_mean_at_16 = measured;
                } else {
                    cluster_mean_at_16 = measured;
                }
            }
            table.push_row(vec![
                alg.name(),
                n.to_string(),
                format!("{measured:.0}"),
                format!("{predicted:.0}"),
                fmt_ratio(ratio),
                (trials - collided).to_string(),
            ]);
        }
    }

    let longevity = cluster_mean_at_16 / random_mean_at_16;
    let predicted_longevity = (m as f64).sqrt() / 16.0;
    let checks = vec![
        Check::new(
            "measured mean collision times match the derived curves",
            checks_ok,
            details.join(", "),
        ),
        Check::new(
            "Cluster outlives Random by ~√m/n in expectation",
            longevity > predicted_longevity * 0.4 && longevity < predicted_longevity * 2.5,
            format!(
                "measured longevity {longevity:.1}×, predicted scale {predicted_longevity:.1}×"
            ),
        ),
    ];

    ExperimentReport {
        id: "E15",
        title: "First-collision time — the capacity story in expectation",
        sections: vec![table.markdown()],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
