//! E4 — Corollary 4: Cluster dominates Bins(k) (and hence Random) on
//! every demand profile.
//!
//! `p_Cluster(D) = O(p_Bins(k)(D))` for every `D` and every `k`. We verify
//! with *exact* quantities: the union-bound upper estimate for Cluster
//! (tight at small probabilities, per Theorem 1's pairwise-independence
//! argument) against the exact disjoint-bin formula for Bins(k), across a
//! grid of profile shapes and k values — plus Monte-Carlo spot checks on
//! the extreme corners of the grid.

use uuidp_adversary::profile::{power_law, DemandProfile};
use uuidp_core::algorithms::{Bins, Cluster};
use uuidp_core::id::IdSpace;
use uuidp_sim::experiment::{fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};

use uuidp_analysis::exact::{bins_exact, cluster_union_bounds};

use super::{Check, Ctx, ExperimentReport};

/// Runs E4.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 24;
    let space = IdSpace::new(m).unwrap();

    let profiles: Vec<(&str, DemandProfile)> = vec![
        ("uniform(4, 2^9)", DemandProfile::uniform(4, 1 << 9)),
        ("uniform(32, 2^6)", DemandProfile::uniform(32, 1 << 6)),
        ("pair(2^12, 2^4)", DemandProfile::pair(1 << 12, 1 << 4)),
        ("skewed-pair(2^12)", DemandProfile::skewed_pair(1 << 12)),
        ("zipf(8, 2^12, 1.0)", power_law(8, 1 << 12, 1.0)),
        ("zipf(16, 2^13, 2.0)", power_law(16, 1 << 13, 2.0)),
    ];

    let mut table = Table::new(
        "Corollary 4 — exact p_Cluster (upper) vs exact p_Bins(k), m = 2^24",
        &["profile", "k", "cluster (ub)", "bins(k)", "cluster/bins"],
    );

    let mut worst_ratio = 0.0f64;
    for (label, profile) in &profiles {
        let (_, cluster_ub) = cluster_union_bounds(profile, m);
        for log_k in [0u32, 4, 8, 12] {
            let k = 1u128 << log_k;
            let bins_p = bins_exact(profile, k, m);
            let ratio = cluster_ub / bins_p;
            worst_ratio = worst_ratio.max(ratio);
            table.push_row(vec![
                label.to_string(),
                k.to_string(),
                fmt_prob(cluster_ub),
                fmt_prob(bins_p),
                fmt_ratio(ratio),
            ]);
        }
    }

    // Monte-Carlo spot check on the most Cluster-favourable corner (high
    // skew) and the most Bins-favourable corner (uniform, k = h).
    let spot = DemandProfile::uniform(4, 1 << 9);
    let k_opt = 1u128 << 9;
    let p_spot = bins_exact(&spot, k_opt, m);
    let trials = ctx.trials_for(p_spot, 200_000);
    let cfg = TrialConfig::new(trials, ctx.seed);
    let (cl_est, _) = estimate_oblivious(&Cluster::new(space), &spot, cfg);
    let (bn_est, _) = estimate_oblivious(&Bins::new(space, k_opt), &spot, cfg);
    let measured_ratio = cl_est.p_hat / bn_est.p_hat.max(1e-12);

    let checks = vec![
        Check::new(
            "exact dominance: cluster ≤ c·bins(k) across grid",
            worst_ratio < 3.0,
            format!(
                "max cluster/bins ratio {worst_ratio:.2} (a constant ≈2 at k=h, never growing)"
            ),
        ),
        Check::new(
            "measured dominance at bins' own optimum (k = h, uniform)",
            measured_ratio < 3.0,
            format!(
                "measured cluster {:.2e} vs bins(h) {:.2e}: ratio {measured_ratio:.2}",
                cl_est.p_hat, bn_est.p_hat
            ),
        ),
    ];

    ExperimentReport {
        id: "E4",
        title: "Corollary 4 — Cluster never loses to Bins(k)/Random",
        sections: vec![table.markdown()],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
