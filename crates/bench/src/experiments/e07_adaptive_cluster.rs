//! E7 — Lemma 7: adaptivity costs Cluster a factor of `n`.
//!
//! The nearest-pair adversary probes all `n` instances, then pumps the
//! trailing instance of the closest pair. Against Cluster this yields
//! `Ω(min(1, n²d/m))` versus the oblivious `Θ(nd/m)` — we measure both
//! and check the gap grows linearly with `n`.

use uuidp_adversary::nearest_pair::NearestPair;
use uuidp_adversary::profile::DemandProfile;
use uuidp_core::algorithms::Cluster;
use uuidp_core::id::IdSpace;
use uuidp_sim::experiment::{fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_adaptive, estimate_oblivious, TrialConfig};

use uuidp_analysis::theory;

use super::{Check, Ctx, ExperimentReport};

/// Runs E7.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 20;
    let space = IdSpace::new(m).unwrap();
    let alg = Cluster::new(space);
    let d = 1u128 << 10;

    let mut table = Table::new(
        "Lemma 7 — nearest-pair attack vs oblivious uniform, Cluster, m = 2^20, d = 2^10",
        &[
            "n",
            "p adaptive",
            "p oblivious",
            "adaptive/oblivious",
            "theory gap (~n)",
        ],
    );

    let mut gap_ok = true;
    let mut details = Vec::new();
    for n in [4usize, 8, 16] {
        let theta_adaptive = theory::cluster_adaptive_lower_bound(n, d, m);
        let trials = ctx.trials_for(theta_adaptive, 60_000);
        let cfg = TrialConfig::new(trials, ctx.seed);

        let attack = NearestPair::new(n, d);
        let (adaptive, diag) = estimate_adaptive(&alg, &attack, cfg);
        assert_eq!(diag.exhausted_trials, 0);

        let uniform = DemandProfile::uniform(n, d / n as u128);
        let obl_trials = ctx.trials_for(theory::cluster(&uniform, m), 400_000);
        let (oblivious, _) =
            estimate_oblivious(&alg, &uniform, TrialConfig::new(obl_trials, ctx.seed));

        let gap = adaptive.p_hat / oblivious.p_hat.max(1e-12);
        let n_f = n as f64;
        let ok = gap > 0.3 * n_f && gap < 2.5 * n_f;
        gap_ok &= ok;
        details.push(format!("n={n}: gap {gap:.1}"));
        table.push_row(vec![
            n.to_string(),
            fmt_prob(adaptive.p_hat),
            fmt_prob(oblivious.p_hat),
            fmt_ratio(gap),
            n.to_string(),
        ]);
    }

    let checks = vec![Check::new(
        "adaptivity gap scales linearly with n",
        gap_ok,
        details.join(", "),
    )];

    ExperimentReport {
        id: "E7",
        title: "Lemma 7 — adaptive adversaries defeat Cluster by a factor n",
        sections: vec![table.markdown()],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
