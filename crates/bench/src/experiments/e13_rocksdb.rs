//! E13 — the paper's motivation, end to end: RocksDB-style deployments.
//!
//! The introduction's story: production fleets of RocksDB instances
//! generate SST unique IDs without coordination; the IDs key a shared
//! block cache; a collision silently serves one file's block for
//! another's read. RocksDB moved from GUID-style Random to Cluster
//! (PRs #8990/#9126) for exactly the `d²/m → nd/m` improvement.
//!
//! **Metric note:** the comparison is *per-run collision probability*
//! (fraction of deployment runs experiencing any collision), which is the
//! paper's quantity. Raw event counts mislead here because Cluster's rare
//! failures are bursty — one overlap of two sequential ranges produces
//! hundreds of colliding IDs at once — while Random's many failures are
//! isolated singletons. Both views are reported.
//!
//! **Scaling substitution** (documented in DESIGN.md): production runs at
//! `m = 2¹²⁸` with exabyte-scale object counts we cannot simulate, so the
//! whole system is scaled down *preserving the dimensionless ratios* the
//! bounds depend on: `m = 2²⁴` with `d ≈ 2¹⁵` files across 16 instances
//! puts `d²/m ≈ 60` (Random: collisions expected every run) and
//! `nd/m ≈ 0.03` (Cluster: collisions in ~3% of runs) — the same regime
//! separation as 128-bit IDs at `d ≈ 2⁶⁶`. Snowflake runs with its native
//! layout and a skewed-clock fault model.

use uuidp_core::algorithms::{Cluster, Random, SessionCounter, Snowflake, SnowflakeConfig};
use uuidp_core::id::IdSpace;
use uuidp_core::traits::Algorithm;
use uuidp_kvstore::workload::{run_workload, WorkloadConfig};
use uuidp_sim::experiment::{fmt_ratio, Table};

use super::{Check, Ctx, ExperimentReport};

struct AlgOutcome {
    runs_with_collision: u64,
    runs_with_corruption: u64,
    collision_events: u64,
    corrupt_reads: u64,
    files_per_run: u64,
    hit_rate: f64,
}

/// Runs E13.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let space = IdSpace::with_bits(24).unwrap();
    let runs: u64 = if ctx.quick { 8 } else { 30 };
    let config = WorkloadConfig {
        instances: 16,
        operations: if ctx.quick { 30_000 } else { 60_000 },
        blocks_per_file: 4,
        cache_capacity: 1 << 14,
        flush_weight: 4000,
        read_weight: 4000,
        compact_weight: 1000,
        migrate_weight: 999,
        // Rare, as in production (a handful of restarts per run): every
        // restart is effectively a fresh uncoordinated instance, so the
        // restart *rate* directly multiplies the effective n.
        restart_weight: 1,
        lease_batch: 0,
    };

    // 64 workers at 16 instances: worker-ID birthday bites within a few
    // runs — the brittleness the paper's introduction warns about.
    let snowflake = SnowflakeConfig {
        timestamp_bits: 10,
        worker_bits: 6,
        sequence_bits: 6,
        requests_per_tick: 16,
        max_skew_ticks: 4,
    };
    let algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Random::new(space)),
        Box::new(Cluster::new(space)),
        Box::new(SessionCounter::new(14, 10)),
        Box::new(Snowflake::new(snowflake)),
    ];

    let mut table = Table::new(
        format!(
            "Deployment workload, m = 2^24, 16 instances, {} ops × {runs} runs",
            config.operations
        ),
        &[
            "ID algorithm",
            "files/run",
            "P(collision)/run",
            "P(corruption)/run",
            "collision events",
            "corrupt reads",
            "cache hit rate",
        ],
    );

    let mut outcomes: Vec<(String, AlgOutcome)> = Vec::new();
    for alg in &algorithms {
        let mut out = AlgOutcome {
            runs_with_collision: 0,
            runs_with_corruption: 0,
            collision_events: 0,
            corrupt_reads: 0,
            files_per_run: 0,
            hit_rate: 0.0,
        };
        let mut hits = 0u64;
        let mut lookups = 0u64;
        for run_idx in 0..runs {
            let report = run_workload(alg.as_ref(), config, ctx.seed ^ (run_idx << 8));
            out.runs_with_collision += (report.id_collisions > 0) as u64;
            out.runs_with_corruption += (report.corrupt_reads > 0) as u64;
            out.collision_events += report.id_collisions;
            out.corrupt_reads += report.corrupt_reads;
            out.files_per_run += report.files_created;
            hits += report.cache.hits;
            lookups += report.cache.hits + report.cache.misses;
        }
        out.files_per_run /= runs;
        out.hit_rate = hits as f64 / lookups.max(1) as f64;
        table.push_row(vec![
            alg.name(),
            out.files_per_run.to_string(),
            format!("{}/{runs}", out.runs_with_collision),
            format!("{}/{runs}", out.runs_with_corruption),
            out.collision_events.to_string(),
            out.corrupt_reads.to_string(),
            fmt_ratio(out.hit_rate),
        ]);
        outcomes.push((alg.name(), out));
    }

    let get = |prefix: &str| -> &AlgOutcome {
        &outcomes
            .iter()
            .find(|(name, _)| name.starts_with(prefix))
            .expect("algorithm present")
            .1
    };
    let random = get("random");
    let cluster = get("cluster");
    let session = get("session");
    let snowflake = get("snowflake");

    let checks = vec![
        Check::new(
            "Random collides in essentially every run (d ≈ √m·8 regime)",
            random.runs_with_collision >= runs * 8 / 10,
            format!("{}/{runs} runs collided", random.runs_with_collision),
        ),
        Check::new(
            "Cluster survives where Random fails (the RocksDB migration)",
            cluster.runs_with_collision <= runs * 3 / 10,
            format!(
                "cluster {}/{runs} vs random {}/{runs} colliding runs",
                cluster.runs_with_collision, random.runs_with_collision
            ),
        ),
        Check::new(
            "SessionCounter (RocksDB's embodiment) behaves like Cluster",
            session.runs_with_collision <= runs * 3 / 10,
            format!(
                "session {}/{runs} colliding runs",
                session.runs_with_collision
            ),
        ),
        Check::new(
            "Snowflake with skewed clocks collides via worker-ID birthday",
            snowflake.runs_with_collision >= 1,
            format!(
                "{}/{runs} runs collided at 2^6 workers, 16 instances, skew ≤ 4 ticks",
                snowflake.runs_with_collision
            ),
        ),
        Check::new(
            "ID collisions surface as silent cache corruption for Random",
            random.corrupt_reads > 0 && random.runs_with_corruption > 0,
            format!(
                "{} corrupt reads across {}/{runs} runs",
                random.corrupt_reads, random.runs_with_corruption
            ),
        ),
    ];

    ExperimentReport {
        id: "E13",
        title: "RocksDB deployment — collisions become silent corruption",
        sections: vec![table.markdown()],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
