//! E9 — Theorem 9 and the Section 3.4 example: competitive ratios on
//! skewed profiles.
//!
//! On the maximally skewed profile `(d−1, 1)`, Cluster pays `Θ(d/m)`
//! against an optimum of `Θ(1/m)` — a competitive ratio that *grows
//! linearly in `d`*. Bins★'s chunked layout pins low-demand instances to
//! the small-bin region, keeping its ratio at `O(log m)` no matter the
//! skew. Both effects are measured here, against the certified `p*((i,j))`
//! bounds of Lemma 24, plus a `(2^i, 2^j)` grid.

use uuidp_adversary::profile::DemandProfile;
use uuidp_core::algorithms::{BinsStar, Cluster};
use uuidp_core::id::IdSpace;
use uuidp_sim::experiment::{fmt_count, fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};
use uuidp_sim::stats::loglog_slope;

use uuidp_analysis::competitive::pair_p_star_bounds;

use super::{Check, Ctx, ExperimentReport};

/// Runs E9.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 12;
    let space = IdSpace::new(m).unwrap();
    let log_m = (m as f64).log2();
    let cluster = Cluster::new(space);
    let bins_star = BinsStar::new(space);

    let mut sections = Vec::new();
    let mut checks = Vec::new();

    // ---- The (d−1, 1) family. ----
    let mut table = Table::new(
        "Skewed profiles (d−1, 1), m = 2^12: competitive ratios vs Lemma 24 p*",
        &[
            "d",
            "p* (upper)",
            "p cluster",
            "ratio cluster",
            "p bins*",
            "ratio bins*",
        ],
    );
    let mut cluster_ratio_points = Vec::new();
    let mut bins_star_ratios = Vec::new();
    for log_d in [6u32, 7, 8, 9] {
        let d = 1u128 << log_d;
        let profile = DemandProfile::skewed_pair(d);
        let p_star = pair_p_star_bounds(1, d - 1, m).upper;
        let trials = ctx.trials_for(2.0 / m as f64, 500_000);
        let cfg = TrialConfig::new(trials, ctx.seed);
        let (cl, _) = estimate_oblivious(&cluster, &profile, cfg);
        let (bs, diag) = estimate_oblivious(&bins_star, &profile, cfg);
        assert_eq!(diag.exhausted_trials, 0);
        let r_cl = cl.p_hat / p_star;
        let r_bs = bs.p_hat / p_star;
        cluster_ratio_points.push((d as f64, r_cl.max(1e-9)));
        bins_star_ratios.push(r_bs);
        table.push_row(vec![
            fmt_count(d),
            fmt_prob(p_star),
            fmt_prob(cl.p_hat),
            fmt_ratio(r_cl),
            fmt_prob(bs.p_hat),
            fmt_ratio(r_bs),
        ]);
    }
    sections.push(table.markdown());

    let fit = loglog_slope(&cluster_ratio_points);
    let max_bs = bins_star_ratios.iter().copied().fold(0.0f64, f64::max);
    let min_bs = bins_star_ratios
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    checks.push(Check::new(
        "Cluster's competitive ratio grows linearly in d",
        (fit.slope - 1.0).abs() < 0.2,
        format!("slope {:.3} (R² = {:.3})", fit.slope, fit.r_squared),
    ));
    checks.push(Check::new(
        "Bins★'s competitive ratio is O(log m) and flat in d",
        max_bs < 4.0 * log_m && max_bs / min_bs < 3.0,
        format!(
            "bins* ratios in [{min_bs:.1}, {max_bs:.1}], 4·log2(m) = {:.0}",
            4.0 * log_m
        ),
    ));
    let last_cluster = cluster_ratio_points.last().unwrap().1;
    checks.push(Check::new(
        "at maximum skew, Bins★ beats Cluster decisively",
        last_cluster > 4.0 * max_bs,
        format!("cluster ratio {last_cluster:.0} vs bins* max {max_bs:.1}"),
    ));

    // ---- The (2^i, 2^j) grid. ----
    let mut grid = Table::new(
        "Pair grid (2^i, 2^j), m = 2^12: Bins★ ratio vs Lemma 24 p*",
        &["i", "j", "p* (upper)", "p bins*", "ratio bins*"],
    );
    let mut grid_max = 0.0f64;
    for (i, j) in [(0u32, 4u32), (0, 8), (2, 6), (4, 8), (2, 8)] {
        let profile = DemandProfile::pair(1 << i, 1 << j);
        let p_star = pair_p_star_bounds(1 << i, 1 << j, m).upper;
        let trials = ctx.trials_for(p_star.max(2.0 / m as f64), 500_000);
        let (bs, _) = estimate_oblivious(&bins_star, &profile, TrialConfig::new(trials, ctx.seed));
        let r = bs.p_hat / p_star;
        grid_max = grid_max.max(r);
        grid.push_row(vec![
            i.to_string(),
            j.to_string(),
            fmt_prob(p_star),
            fmt_prob(bs.p_hat),
            fmt_ratio(r),
        ]);
    }
    sections.push(grid.markdown());
    checks.push(Check::new(
        "grid-wide Bins★ ratio stays below O(log m)",
        grid_max < 4.0 * log_m,
        format!(
            "max grid ratio {grid_max:.1}, 4·log2(m) = {:.0}",
            4.0 * log_m
        ),
    ));

    ExperimentReport {
        id: "E9",
        title: "Theorem 9 / §3.4 — Bins★'s O(log m) competitive ratio",
        sections,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
