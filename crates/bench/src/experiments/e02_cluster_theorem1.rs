//! E2 — Theorem 1: `p_Cluster(D) = Θ(min(1, n‖D‖₁/m))`.
//!
//! Sweeps `n` and `d` over uniform and power-law profiles at `m = 2²⁴`,
//! measures the collision probability by symbolic Monte-Carlo, and
//! compares against the Θ-expression. Shape checks: the measured/theory
//! ratio stays within a constant band across the entire sweep (the Θ
//! claim) and the log–log slope of `p` against `d` is ≈ 1 (linearity in
//! total demand, Cluster's defining advantage over Random's slope-2).

use uuidp_adversary::profile::{power_law, DemandProfile};
use uuidp_core::algorithms::Cluster;
use uuidp_core::id::IdSpace;
use uuidp_sim::experiment::{fmt_count, fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};
use uuidp_sim::stats::loglog_slope;

use uuidp_analysis::theory;

use super::{Check, Ctx, ExperimentReport};

/// Runs E2.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 24;
    let space = IdSpace::new(m).unwrap();
    let alg = Cluster::new(space);

    let mut table = Table::new(
        "Cluster vs Theorem 1 (m = 2^24, adaptive trial counts)",
        &[
            "n",
            "d",
            "skew",
            "trials",
            "measured p",
            "theta(nd/m)",
            "ratio",
        ],
    );

    let mut ratios = Vec::new();
    let mut slope_points = Vec::new();
    for n in [2usize, 8, 32] {
        for log_d in [12u32, 14, 16] {
            let d = 1u128 << log_d;
            for (skew, profile) in [
                ("uniform", DemandProfile::uniform(n, d / n as u128)),
                ("zipf(1)", power_law(n, d, 1.0)),
            ] {
                let d = profile.l1();
                let theta = theory::cluster(&profile, m);
                let trials = ctx.trials_for(theta, 400_000);
                let (est, diag) =
                    estimate_oblivious(&alg, &profile, TrialConfig::new(trials, ctx.seed));
                assert_eq!(diag.exhausted_trials, 0);
                let ratio = est.p_hat / theta;
                ratios.push(ratio);
                if skew == "uniform" && n == 8 {
                    slope_points.push((d as f64, est.p_hat.max(1e-12)));
                }
                table.push_row(vec![
                    n.to_string(),
                    fmt_count(d),
                    skew.to_string(),
                    trials.to_string(),
                    fmt_prob(est.p_hat),
                    fmt_prob(theta),
                    fmt_ratio(ratio),
                ]);
            }
        }
    }

    let (min_r, max_r) = (
        ratios.iter().copied().fold(f64::INFINITY, f64::min),
        ratios.iter().copied().fold(0.0f64, f64::max),
    );
    let fit = loglog_slope(&slope_points);

    let checks = vec![
        Check::new(
            "Θ-band: measured/theory ratio bounded across sweep",
            min_r > 0.2 && max_r < 3.0,
            format!("ratios in [{min_r:.2}, {max_r:.2}]"),
        ),
        Check::new(
            "slope: p_Cluster grows linearly in d",
            (fit.slope - 1.0).abs() < 0.2,
            format!("log-log slope {:.3} (R² = {:.3})", fit.slope, fit.r_squared),
        ),
    ];

    ExperimentReport {
        id: "E2",
        title: "Theorem 1 — Cluster's collision probability",
        sections: vec![table.markdown()],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
