//! E11 — Theorem 11 / Corollary 12: adaptivity buys at most a factor 4
//! against bin-symmetric algorithms.
//!
//! For Bins(k) and Bins★, every game state with the same profile and no
//! collision is equivalent up to bin relabeling, so the only adaptive
//! signal is the collision flag — i.e. the strongest adaptive adversaries
//! are the semi-adaptive `fol(S)` strategies that follow a demand sequence
//! and stop at the first collision. We measure the competitive ratio of
//! oblivious play (full profile, ratio against `p*(D)`) and of `fol(S)`
//! (ratio against `E[p*(D_realized)]`, the stopped profiles shrinking the
//! denominator), and check the Theorem 11 inequality
//! `ratio_adaptive ≤ 4 · ratio_oblivious`.

use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::profile::DemandProfile;
use uuidp_adversary::semi_adaptive::FollowSequence;
use uuidp_core::algorithms::{Bins, BinsStar};
use uuidp_core::id::IdSpace;
use uuidp_core::rng::SeedTree;
use uuidp_core::traits::Algorithm;
use uuidp_sim::experiment::{fmt_prob, fmt_ratio, Table};
use uuidp_sim::game::{run_adaptive, GameLimits};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};

use uuidp_analysis::competitive::rounded_p_star_lower;

use super::{Check, Ctx, ExperimentReport};

/// Runs E11.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 12;
    let space = IdSpace::new(m).unwrap();
    let target = DemandProfile::uniform(4, 64);
    let trials = ctx.trials(30_000);

    let algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Bins::new(space, 16)),
        Box::new(BinsStar::new(space)),
    ];

    let mut table = Table::new(
        format!(
            "Theorem 11 — oblivious vs fol(S) competitive ratios, m = 2^12, D = (64)⁴, {trials} trials"
        ),
        &[
            "algorithm",
            "adversary",
            "p_A",
            "E[p*]",
            "comp. ratio",
            "vs oblivious",
        ],
    );

    let mut all_within_factor4 = true;
    let mut details = Vec::new();

    for alg in &algorithms {
        // Oblivious baseline: full profile, denominator p*(D).
        let (obl_est, _) =
            estimate_oblivious(alg.as_ref(), &target, TrialConfig::new(trials, ctx.seed));
        let p_star_full = rounded_p_star_lower(&target, m);
        let ratio_obl = obl_est.p_hat / p_star_full;
        table.push_row(vec![
            alg.name(),
            "oblivious".to_string(),
            fmt_prob(obl_est.p_hat),
            fmt_prob(p_star_full),
            fmt_ratio(ratio_obl),
            "1.00".to_string(),
        ]);

        // Semi-adaptive fol(S) in two growth orders.
        let adversaries: Vec<Box<dyn AdversarySpec>> = vec![
            Box::new(FollowSequence::growing_to(&target)),
            Box::new(FollowSequence::growing_breadth_first(&target)),
        ];
        for spec in &adversaries {
            let mut collisions = 0u64;
            let mut p_star_sum = 0.0f64;
            for t in 0..trials {
                let seeds = SeedTree::new(ctx.seed).trial(t);
                let mut adv = spec.spawn(0);
                let out = run_adaptive(alg.as_ref(), adv.as_mut(), &seeds, GameLimits::default());
                collisions += out.collided as u64;
                if let Some(profile) = out.profile() {
                    if !profile.is_trivial() {
                        p_star_sum += rounded_p_star_lower(&profile, m);
                    }
                }
            }
            let p_adaptive = collisions as f64 / trials as f64;
            let p_star_mean = p_star_sum / trials as f64;
            let ratio_adp = p_adaptive / p_star_mean.max(1e-12);
            let vs_obl = ratio_adp / ratio_obl;
            all_within_factor4 &= vs_obl <= 4.5;
            details.push(format!("{} {}: {vs_obl:.2}×", alg.name(), spec.name()));
            table.push_row(vec![
                alg.name(),
                spec.name(),
                fmt_prob(p_adaptive),
                fmt_prob(p_star_mean),
                fmt_ratio(ratio_adp),
                fmt_ratio(vs_obl),
            ]);
        }
    }

    let checks = vec![Check::new(
        "Theorem 11: adaptive competitive ratio ≤ 4 × oblivious (plus noise margin)",
        all_within_factor4,
        details.join("; "),
    )];

    ExperimentReport {
        id: "E11",
        title: "Theorem 11 / Corollary 12 — adaptivity is nearly free against bin symmetry",
        sections: vec![table.markdown()],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
