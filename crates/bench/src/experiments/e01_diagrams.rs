//! E1 — the Section 3 algorithm illustrations, regenerated.
//!
//! The paper illustrates each algorithm with a row of `m` squares where
//! number `i` marks the `i`-th returned ID (`m = 20`, 8 requests; `m = 32`
//! for Bins★). We render the same diagrams from live generators. The
//! checks assert the *structural* signature of each algorithm rather than
//! the specific random placement: Cluster's marks are one consecutive
//! ascending block, Bins(3)'s marks form aligned triples, Cluster★'s runs
//! double, Bins★'s bins double within their chunks.

use uuidp_core::algorithms::{Bins, BinsStar, ChunkRule, Cluster, ClusterStar, Random};
use uuidp_core::diagram::render_captioned;
use uuidp_core::id::IdSpace;
use uuidp_core::traits::Algorithm;

use super::{Check, Ctx, ExperimentReport};

/// Runs E1.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m20 = IdSpace::new(20).unwrap();
    let m32 = IdSpace::new(32).unwrap();
    let requests = 8u128;
    let mut sections = Vec::new();
    let mut checks = Vec::new();

    // Pick seeds that produce non-wrapping layouts for readability.
    let mut diagram = |name: &str, alg: &dyn Algorithm, m: u128| -> Vec<String> {
        let mut gen = alg.spawn(pick_seed(alg, requests, ctx.seed));
        let text = render_captioned(name, gen.as_mut(), requests, m as usize);
        sections.push(format!("```text\n{text}\n```\n"));
        text.lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join(" ")
            .split_whitespace()
            .map(str::to_owned)
            .collect()
    };

    let random_cells = diagram("random", &Random::new(m20), 20);
    let cluster_cells = diagram("cluster", &Cluster::new(m20), 20);
    let bins_cells = diagram("bins(3)", &Bins::new(m20, 3), 20);
    let cstar_cells = diagram("cluster*", &ClusterStar::new(m20), 20);
    let bstar_cells = diagram(
        "bins* (max-fit layout, as in the paper's figure)",
        &BinsStar::with_rule(m32, ChunkRule::MaxFit),
        32,
    );

    // Structural checks.
    checks.push(Check::new(
        "random: exactly 8 marks",
        marks(&random_cells).len() == 8,
        format!("{} marks", marks(&random_cells).len()),
    ));

    let cl = marks(&cluster_cells);
    let contiguous = is_contiguous_cyclic(&cl, 20);
    checks.push(Check::new(
        "cluster: marks form one cyclic consecutive block",
        contiguous && cl.len() == 8,
        format!("positions {cl:?}"),
    ));

    let bn = marks(&bins_cells);
    // Group marks by bin (position / 3): expect two full bins (3 marks,
    // the whole bin) and one partial bin (2 marks, a prefix of the bin).
    let mut by_bin: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for &p in &bn {
        by_bin.entry(p / 3).or_default().push(p);
    }
    let full = by_bin.values().filter(|v| v.len() == 3).count();
    let partial_prefix = by_bin
        .values()
        .filter(|v| v.len() == 2)
        .all(|v| v[0] % 3 == 0 && v[1] == v[0] + 1);
    checks.push(Check::new(
        "bins(3): two full aligned bins plus one bin prefix",
        full == 2 && partial_prefix && bn.len() == 8,
        format!("positions {bn:?}"),
    ));

    let cs = marks(&cstar_cells);
    checks.push(Check::new(
        "cluster*: 8 marks covering runs of lengths 1,2,4,1",
        cs.len() == 8,
        format!("positions {cs:?}"),
    ));

    let bs = marks(&bstar_cells);
    checks.push(Check::new(
        "bins*: 8 marks (bins of sizes 1,2,4 and one ID of the size-8 bin)",
        bs.len() == 8,
        format!("positions {bs:?}"),
    ));

    ExperimentReport {
        id: "E1",
        title: "Algorithm illustrations (paper §3 diagrams)",
        sections,
        checks,
    }
}

/// Positions (cell indices) that carry a mark, in increasing position.
fn marks(cells: &[String]) -> Vec<usize> {
    cells
        .iter()
        .enumerate()
        .filter(|(_, c)| c.as_str() != "·")
        .map(|(i, _)| i)
        .collect()
}

/// Whether `positions` form one consecutive block on the cycle `[0, m)`.
fn is_contiguous_cyclic(positions: &[usize], m: usize) -> bool {
    if positions.is_empty() {
        return true;
    }
    let set: std::collections::HashSet<usize> = positions.iter().copied().collect();
    // A cyclic block has exactly one position whose predecessor is absent.
    let heads = positions
        .iter()
        .filter(|&&p| !set.contains(&((p + m - 1) % m)))
        .count();
    heads == 1 || set.len() == m
}

/// Finds a seed whose generator serves `requests` IDs without exhausting
/// (Cluster★ on m = 20 can fragment; the paper's figures are implicitly
/// conditioned on success).
fn pick_seed(alg: &dyn Algorithm, requests: u128, base: u64) -> u64 {
    for offset in 0..100 {
        let seed = base.wrapping_add(offset);
        let mut gen = alg.spawn(seed);
        if gen.skip(requests).is_ok() {
            return seed;
        }
    }
    panic!("no seed served {requests} requests for {}", alg.name());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_passes_its_checks() {
        let report = run(&Ctx::default());
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
        assert_eq!(report.sections.len(), 5);
    }

    #[test]
    fn contiguity_helper() {
        assert!(is_contiguous_cyclic(&[3, 4, 5], 20));
        assert!(is_contiguous_cyclic(&[19, 0, 1], 20));
        assert!(!is_contiguous_cyclic(&[1, 3], 20));
        assert!(is_contiguous_cyclic(&[], 20));
    }
}
