//! E6 — Theorem 6 and Lemma 18: almost every profile forces
//! `p*(D) = Ω(min(1, nd/m))`.
//!
//! Two measurable ingredients:
//!
//! 1. **Lemma 18** — the fraction of ε-bad profiles in `D1(n, d)` decays
//!    like `exp(−Θ(n))`. We sample uniform compositions and count.
//! 2. **Theorem 6** — for the ε-good profiles, the certified lower bound
//!    on `p*` (rank decomposition, Lemma 20 route) is within a constant of
//!    `nd/m`. Since `p*` lower-bounds *every* algorithm, we also verify
//!    the chain end-to-end: measured `p_Cluster ≥ p̂*-lower` on the same
//!    profiles (Cluster can't beat the optimum).

use uuidp_adversary::profile::sample_composition;
use uuidp_core::algorithms::Cluster;
use uuidp_core::id::IdSpace;
use uuidp_core::rng::{SeedDomain, SeedTree};
use uuidp_sim::experiment::{fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};

use uuidp_analysis::competitive::rounded_p_star_lower;
use uuidp_analysis::theory;

use super::{Check, Ctx, ExperimentReport};

const EPSILON: f64 = 0.25;

/// Runs E6.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 22;
    let d = 1u128 << 13;
    let samples = if ctx.quick { 100 } else { 500 };
    let tree = SeedTree::new(ctx.seed ^ 0xE6);

    let mut table = Table::new(
        format!("ε-goodness and p* lower bounds over D1(n, 2^13), m = 2^22, ε = {EPSILON}"),
        &[
            "n",
            "good fraction",
            "median p*-lower / (nd/m)",
            "min p*-lower / (nd/m)",
        ],
    );

    let mut good_fractions = Vec::new();
    let mut min_ratio_overall = f64::INFINITY;
    for (idx, n) in [8usize, 16, 32, 64].into_iter().enumerate() {
        let mut rng = tree.trial(idx as u64).rng(SeedDomain::Workload);
        let mut good = 0usize;
        let mut ratios = Vec::new();
        for _ in 0..samples {
            let profile = sample_composition(&mut rng, n, d);
            if profile.is_epsilon_good(EPSILON) {
                good += 1;
                let p_star_lower = rounded_p_star_lower(&profile, m);
                let target = theory::cluster_worst_case(n, d, m);
                ratios.push(p_star_lower / target);
            }
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ratios.get(ratios.len() / 2).copied().unwrap_or(f64::NAN);
        let min = ratios.first().copied().unwrap_or(f64::NAN);
        min_ratio_overall = min_ratio_overall.min(min);
        let frac = good as f64 / samples as f64;
        good_fractions.push(frac);
        table.push_row(vec![
            n.to_string(),
            format!("{frac:.3}"),
            fmt_ratio(median),
            fmt_ratio(min),
        ]);
    }

    let mut sections = vec![table.markdown()];
    let mut checks = vec![
        Check::new(
            "Lemma 18: ε-bad profiles are a vanishing fraction",
            good_fractions.iter().all(|&f| f > 0.9),
            format!("good fractions {good_fractions:?}"),
        ),
        Check::new(
            "Theorem 6: certified p* lower bound is Ω(nd/m) on good profiles",
            min_ratio_overall > 0.01,
            format!("min certified ratio {min_ratio_overall:.3} (a constant, bounded away from 0)"),
        ),
    ];

    // End-to-end: the certified lower bound must not exceed any real
    // algorithm's measured probability.
    let space = IdSpace::new(m).unwrap();
    let alg = Cluster::new(space);
    let mut rng = tree.trial(99).rng(SeedDomain::Workload);
    let mut violations = 0usize;
    let spot_checks = if ctx.quick { 3 } else { 8 };
    let mut spot_table = Table::new(
        "Spot check: measured p_Cluster vs certified p*-lower (must dominate)",
        &["profile (n)", "p*-lower", "measured p_cluster", "ok"],
    );
    for _ in 0..spot_checks {
        let profile = sample_composition(&mut rng, 16, d);
        let p_star_lower = rounded_p_star_lower(&profile, m);
        let trials = ctx.trials_for(p_star_lower.max(1e-4), 200_000);
        let (est, _) = estimate_oblivious(&alg, &profile, TrialConfig::new(trials, ctx.seed));
        // Allow the Wilson lower edge as the comparison point.
        let ok = est.hi >= p_star_lower * 0.9;
        violations += usize::from(!ok);
        spot_table.push_row(vec![
            format!("{}", profile.n()),
            fmt_prob(p_star_lower),
            fmt_prob(est.p_hat),
            ok.to_string(),
        ]);
    }
    sections.push(spot_table.markdown());
    checks.push(Check::new(
        "consistency: no algorithm measured below the certified p* lower bound",
        violations == 0,
        format!("{violations} violations in {spot_checks} spot checks"),
    ));

    ExperimentReport {
        id: "E6",
        title: "Theorem 6 — the oblivious worst-case lower bound",
        sections,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
