//! E12 — Table 1: the {worst-case, competitive} × {oblivious, adaptive}
//! matrix, instantiated empirically for every algorithm.
//!
//! The paper's Table 1 defines the four evaluation settings; this
//! experiment fills in the matrix with measurements at reference
//! parameters. Worst-case columns use `m = 2²⁰, n = 8, d = 2⁹` (uniform
//! profile obliviously, the strongest of our attacks adaptively);
//! competitive columns use `m = 2¹², D = (127, 1)` (the skew that
//! separates the algorithms) against the Lemma 24 `p*` witnesses,
//! stop-on-collision for the adaptive variant.
//!
//! Checks assert the paper's qualitative story: Cluster optimal oblivious
//! worst-case but n-fold worse adaptively; Cluster★ repairing that;
//! Bins★ alone achieving a small competitive ratio; Random's worst case
//! dominating everyone's.

use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::nearest_pair::NearestPair;
use uuidp_adversary::profile::DemandProfile;
use uuidp_adversary::run_hunter::RunHunter;
use uuidp_adversary::semi_adaptive::FollowSequence;
use uuidp_core::algorithms::{Bins, BinsStar, Cluster, ClusterStar, Random};
use uuidp_core::id::IdSpace;
use uuidp_core::rng::SeedTree;
use uuidp_core::traits::Algorithm;
use uuidp_sim::experiment::{fmt_prob, fmt_ratio, Table};
use uuidp_sim::game::{run_adaptive, GameLimits};
use uuidp_sim::montecarlo::{estimate_adaptive, estimate_oblivious, TrialConfig};

use uuidp_analysis::competitive::{pair_p_star_bounds, rounded_p_star_lower};

use super::{Check, Ctx, ExperimentReport};

struct MatrixRow {
    name: String,
    worst_oblivious: f64,
    worst_adaptive: f64,
    comp_oblivious: f64,
    comp_adaptive: f64,
}

/// Runs E12.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    // Worst-case setting.
    let m_wc = 1u128 << 20;
    let space_wc = IdSpace::new(m_wc).unwrap();
    let (n, d) = (8usize, 1u128 << 9);
    let uniform = DemandProfile::uniform(n, d / n as u128);

    // Competitive setting.
    let m_cp = 1u128 << 12;
    let space_cp = IdSpace::new(m_cp).unwrap();
    let pair = DemandProfile::pair(127, 1);
    let p_star_pair = pair_p_star_bounds(1, 127, m_cp).upper;

    let wc_algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Random::new(space_wc)),
        Box::new(Cluster::new(space_wc)),
        Box::new(Bins::new(space_wc, 64)),
        Box::new(ClusterStar::new(space_wc)),
        Box::new(BinsStar::new(space_wc)),
    ];
    let cp_algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Random::new(space_cp)),
        Box::new(Cluster::new(space_cp)),
        Box::new(Bins::new(space_cp, 16)),
        Box::new(ClusterStar::new(space_cp)),
        Box::new(BinsStar::new(space_cp)),
    ];

    let trials_wc = ctx.trials(20_000);
    let trials_cp = ctx.trials(60_000);
    let adaptive_trials = ctx.trials(4_000);

    let mut rows = Vec::new();
    for (wc, cp) in wc_algorithms.iter().zip(&cp_algorithms) {
        // Worst-case oblivious: uniform profile.
        let (wo, _) =
            estimate_oblivious(wc.as_ref(), &uniform, TrialConfig::new(trials_wc, ctx.seed));

        // Worst-case adaptive: strongest of our attacks.
        let attacks: Vec<Box<dyn AdversarySpec>> = vec![
            Box::new(NearestPair::new(n, d)),
            Box::new(RunHunter::new(n, d)),
        ];
        let mut wa = 0.0f64;
        for attack in &attacks {
            let (est, _) = estimate_adaptive(
                wc.as_ref(),
                attack.as_ref(),
                TrialConfig::new(adaptive_trials, ctx.seed),
            );
            wa = wa.max(est.p_hat);
        }

        // Competitive oblivious: skewed pair vs Lemma 24 witness.
        let (co, _) = estimate_oblivious(cp.as_ref(), &pair, TrialConfig::new(trials_cp, ctx.seed));
        let comp_oblivious = co.p_hat / p_star_pair;

        // Competitive adaptive: fol(S) growing to the pair, stop on
        // collision, denominator E[p*(realized)].
        let spec = FollowSequence::growing_to(&pair);
        let mut collisions = 0u64;
        let mut p_star_sum = 0.0f64;
        for t in 0..trials_cp {
            let seeds = SeedTree::new(ctx.seed ^ 0x12).trial(t);
            let mut adv = spec.spawn(0);
            let out = run_adaptive(cp.as_ref(), adv.as_mut(), &seeds, GameLimits::default());
            collisions += out.collided as u64;
            if let Some(profile) = out.profile() {
                if !profile.is_trivial() {
                    p_star_sum += rounded_p_star_lower(&profile, m_cp).max(1.0 / m_cp as f64);
                }
            }
        }
        let comp_adaptive =
            (collisions as f64 / trials_cp as f64) / (p_star_sum / trials_cp as f64).max(1e-12);

        rows.push(MatrixRow {
            name: wc.name(),
            worst_oblivious: wo.p_hat,
            worst_adaptive: wa,
            comp_oblivious,
            comp_adaptive,
        });
    }

    let mut table = Table::new(
        "Table 1 instantiated — worst case at (m=2^20, n=8, d=2^9), competitive at (m=2^12, D=(127,1))",
        &[
            "algorithm",
            "worst-case obl.",
            "worst-case adpt.",
            "competitive obl.",
            "competitive adpt.",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.name.clone(),
            fmt_prob(r.worst_oblivious),
            fmt_prob(r.worst_adaptive),
            fmt_ratio(r.comp_oblivious),
            fmt_ratio(r.comp_adaptive),
        ]);
    }

    let get = |name: &str| rows.iter().find(|r| r.name.starts_with(name)).unwrap();
    let random = get("random");
    let cluster = get("cluster");
    let cluster_star = get("cluster*");
    let bins_star = get("bins*");
    let log_m_cp = (m_cp as f64).log2();

    let checks = vec![
        Check::new(
            "Random's oblivious worst case dominates every other algorithm's",
            rows.iter()
                .all(|r| random.worst_oblivious >= r.worst_oblivious * 0.9),
            format!("random {:.3}", random.worst_oblivious),
        ),
        Check::new(
            "Cluster: optimal obliviously, n-fold worse adaptively",
            cluster.worst_adaptive > 3.0 * cluster.worst_oblivious,
            format!(
                "oblivious {:.4}, adaptive {:.4}",
                cluster.worst_oblivious, cluster.worst_adaptive
            ),
        ),
        Check::new(
            // At (n, d/n) = (8, 64) the predicted separation is only
            // n / log2(1 + d/n) ≈ 1.3×; E8 covers the regimes where it is
            // large. Here we check the ordering holds at all.
            "Cluster★ improves on Cluster's adaptive worst case",
            cluster_star.worst_adaptive < 0.85 * cluster.worst_adaptive,
            format!(
                "cluster* {:.4} vs cluster {:.4} (predicted separation ~1.3x at d/n = 64)",
                cluster_star.worst_adaptive, cluster.worst_adaptive
            ),
        ),
        Check::new(
            "Bins★ alone is O(log m) competitive in both settings",
            bins_star.comp_oblivious < 4.0 * log_m_cp
                && bins_star.comp_adaptive < 16.0 * log_m_cp
                && cluster.comp_oblivious > 2.0 * bins_star.comp_oblivious,
            format!(
                "bins* ({:.1}, {:.1}) vs cluster ({:.1}, {:.1}), log2 m = {log_m_cp}",
                bins_star.comp_oblivious,
                bins_star.comp_adaptive,
                cluster.comp_oblivious,
                cluster.comp_adaptive
            ),
        ),
    ];

    ExperimentReport {
        id: "E12",
        title: "Table 1 — the four settings, measured",
        sections: vec![table.markdown()],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
