//! E8 — Theorem 8: Cluster★ withstands adaptive adversaries.
//!
//! The same attacks that blow Cluster up to `Ω(n²d/m)` (E7) are run
//! against Cluster★, whose doubling-run design caps the damage at
//! `O((nd/m)·log(1 + d/n))`. We attack with both the Lemma 7 nearest-pair
//! adversary and the stronger retargeting RunHunter, and compare:
//!
//! * Cluster★ under attack stays below the Theorem 8 envelope;
//! * Cluster under the same attack is far above it (the gap Cluster★
//!   exists to close);
//! * Cluster★ under attack stays within a log factor of its own oblivious
//!   baseline.

use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::nearest_pair::NearestPair;
use uuidp_adversary::profile::DemandProfile;
use uuidp_adversary::run_hunter::RunHunter;
use uuidp_core::algorithms::{Cluster, ClusterStar};
use uuidp_core::id::IdSpace;
use uuidp_sim::experiment::{fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_adaptive, estimate_oblivious, TrialConfig};

use uuidp_analysis::theory;

use super::{Check, Ctx, ExperimentReport};

/// Runs E8.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 20;
    let space = IdSpace::new(m).unwrap();
    let cluster = Cluster::new(space);
    let cluster_star = ClusterStar::new(space);
    let d = 1u128 << 10;

    let mut table = Table::new(
        "Theorem 8 — attacks vs Cluster★ and Cluster, m = 2^20, d = 2^10",
        &[
            "n",
            "attack",
            "p cluster*",
            "p cluster",
            "thm8 bound",
            "cluster*/bound",
            "cluster/cluster*",
        ],
    );

    let mut star_within_bound = true;
    let mut advantage_low_budget = Vec::new();
    let mut details = Vec::new();

    // Two regimes: d = 64n (the adversary has a deep budget; separation
    // n / log(1+64) is modest) and d = 4n (shallow budget; separation
    // n / log(5) is where Cluster★ shines).
    let grid: [(usize, u128); 5] = [(4, 256), (8, 512), (16, 1024), (16, 64), (32, 128)];
    for (n, d) in grid {
        let bound = theory::cluster_star_adaptive_bound(n, d, m);
        let attacks: Vec<Box<dyn AdversarySpec>> = vec![
            Box::new(NearestPair::new(n, d)),
            Box::new(RunHunter::new(n, d)),
        ];
        for attack in &attacks {
            let theta_attack = theory::cluster_adaptive_lower_bound(n, d, m);
            let trials = ctx.trials_for(theta_attack, 40_000);
            let cfg = TrialConfig::new(trials, ctx.seed);
            let (star, diag) = estimate_adaptive(&cluster_star, attack.as_ref(), cfg);
            assert_eq!(diag.exhausted_trials, 0, "within guaranteed capacity");
            let (plain, _) = estimate_adaptive(&cluster, attack.as_ref(), cfg);
            let vs_bound = star.p_hat / bound;
            star_within_bound &= vs_bound < 1.5;
            let advantage = plain.p_hat / star.p_hat.max(1e-12);
            if d == 4 * n as u128 && attack.name().starts_with("run-hunter") {
                advantage_low_budget.push((n, advantage));
            }
            details.push(format!(
                "n={n} d={d} {}: star/bound {vs_bound:.2}",
                attack.name()
            ));
            table.push_row(vec![
                format!("{n} (d={d})"),
                attack.name(),
                fmt_prob(star.p_hat),
                fmt_prob(plain.p_hat),
                fmt_prob(bound),
                fmt_ratio(vs_bound),
                fmt_ratio(advantage),
            ]);
        }
    }

    // Oblivious baseline for Cluster★ at n = 16 (adaptivity overhead).
    let n = 16usize;
    let uniform = DemandProfile::uniform(n, d / n as u128);
    let obl_trials = ctx.trials_for(theory::cluster(&uniform, m), 400_000);
    let (obl, _) = estimate_oblivious(
        &cluster_star,
        &uniform,
        TrialConfig::new(obl_trials, ctx.seed),
    );
    let attack = RunHunter::new(n, d);
    let adv_trials = ctx.trials_for(theory::cluster_adaptive_lower_bound(n, d, m), 40_000);
    let (adp, _) = estimate_adaptive(
        &cluster_star,
        &attack,
        TrialConfig::new(adv_trials, ctx.seed),
    );
    let adaptivity_overhead = adp.p_hat / obl.p_hat.max(1e-12);
    let log_budget = (1.0 + d as f64 / n as f64).log2();

    let advantage_detail = advantage_low_budget
        .iter()
        .map(|(n, a)| format!("n={n}: {a:.1}×"))
        .collect::<Vec<_>>()
        .join(", ");
    let checks = vec![
        Check::new(
            "Cluster★ under every attack stays below the Theorem 8 envelope",
            star_within_bound,
            details.join("; "),
        ),
        Check::new(
            // The separation is n / log(1 + d/n): pronounced in the
            // shallow-budget regime, and growing with n.
            "Cluster★ beats Cluster under attack, increasingly so with n",
            advantage_low_budget
                .iter()
                .all(|&(n, a)| a > 0.12 * n as f64)
                && advantage_low_budget.last().map(|&(_, a)| a).unwrap_or(0.0) > 4.0,
            format!("cluster/cluster* at d = 4n: {advantage_detail}"),
        ),
        Check::new(
            "adaptivity overhead of Cluster★ is at most the log factor",
            adaptivity_overhead < 2.0 * log_budget,
            format!(
                "adaptive/oblivious = {adaptivity_overhead:.2}, log2(1 + d/n) = {log_budget:.2}"
            ),
        ),
    ];

    ExperimentReport {
        id: "E8",
        title: "Theorem 8 — Cluster★ against adaptive adversaries",
        sections: vec![table.markdown()],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
