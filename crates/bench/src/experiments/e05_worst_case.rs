//! E5 — Corollary 5: worst case over `D1(n, d)` — Cluster `Θ(nd/m)` vs
//! Random `Θ(d²/m)`, the paper's headline comparison.
//!
//! Two views:
//!
//! 1. **GUID scale (exact, m = 2⁴⁰)** — the introduction's story: Random
//!    becomes unsafe at `d ≈ √m` while Cluster survives to `d ≈ m/n`,
//!    orders of magnitude further.
//! 2. **Crossover (measured, m = 2¹⁶)** — who wins near `d ≈ n`: at
//!    `d = n` (all-singleton profiles) the two coincide; for `d ≫ n`
//!    Random loses by the factor `d/n`.

use uuidp_adversary::profile::DemandProfile;
use uuidp_core::algorithms::{Cluster, Random};
use uuidp_core::id::IdSpace;
use uuidp_sim::experiment::{fmt_count, fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};
use uuidp_sim::stats::loglog_slope;

use uuidp_analysis::exact::{cluster_union_bounds, random_exact};

use super::{Check, Ctx, ExperimentReport};

/// Runs E5.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let mut sections = Vec::new();
    let mut checks = Vec::new();

    // ---- View 1: exact, GUID scale. ----
    let m_big = 1u128 << 40;
    let n = 16usize;
    let mut table = Table::new(
        "Worst case over D1(16, d), m = 2^40 (exact formulas)",
        &["d", "p_random", "p_cluster", "winner"],
    );
    let mut random_pts = Vec::new();
    let mut cluster_pts = Vec::new();
    let mut random_saturated_at = None;
    let mut cluster_at_saturation = f64::NAN;
    for log_d in (8u32..=36).step_by(4) {
        let d = 1u128 << log_d;
        let uniform = DemandProfile::uniform(n, d / n as u128);
        let p_random = if d <= 1 << 22 {
            random_exact(&uniform, m_big)
        } else {
            // Beyond direct computation: the birthday bound has long since
            // saturated.
            1.0
        };
        let (_, p_cluster) = cluster_union_bounds(&uniform, m_big);
        if p_random < 0.5 {
            random_pts.push((d as f64, p_random.max(1e-15)));
        }
        if p_cluster < 0.5 {
            cluster_pts.push((d as f64, p_cluster.max(1e-15)));
        }
        if p_random > 0.9 && random_saturated_at.is_none() {
            random_saturated_at = Some(d);
            cluster_at_saturation = p_cluster;
        }
        let winner = if p_random < p_cluster {
            "random"
        } else {
            "cluster"
        };
        table.push_row(vec![
            fmt_count(d),
            fmt_prob(p_random),
            fmt_prob(p_cluster),
            winner.to_string(),
        ]);
    }
    sections.push(table.markdown());

    let rf = loglog_slope(&random_pts);
    let cf = loglog_slope(&cluster_pts);
    checks.push(Check::new(
        "exponents: Random quadratic in d, Cluster linear in d",
        (rf.slope - 2.0).abs() < 0.1 && (cf.slope - 1.0).abs() < 0.1,
        format!(
            "random slope {:.3}, cluster slope {:.3}",
            rf.slope, cf.slope
        ),
    ));
    checks.push(Check::new(
        "headline: Random saturates near √m while Cluster is still safe",
        random_saturated_at.is_some_and(|d| d <= 1 << 24) && cluster_at_saturation < 1e-3,
        format!(
            "random p>0.9 at d = {} (√m = 2^20); cluster there: {}",
            random_saturated_at.map(fmt_count).unwrap_or_default(),
            fmt_prob(cluster_at_saturation)
        ),
    ));

    // ---- View 2: measured crossover at m = 2^20. ----
    let m_small = 1u128 << 20;
    let space = IdSpace::new(m_small).unwrap();
    let mut table = Table::new(
        "Measured crossover, m = 2^20, n = 16 (uniform profiles from D1(16, d))",
        &["d", "trials", "p_random", "p_cluster", "random/cluster"],
    );
    let mut ratio_at_n = f64::NAN;
    let mut ratio_at_64n = f64::NAN;
    for log_d in [4u32, 6, 8, 10] {
        let d = 1u128 << log_d;
        let profile = DemandProfile::uniform(n, d / n as u128);
        // Size trials to the smaller of the two probabilities (Cluster's).
        let (p_cluster_lo, _) = cluster_union_bounds(&profile, m_small);
        let trials = ctx.trials_for(p_cluster_lo.max(1e-6), 800_000);
        let cfg = TrialConfig::new(trials, ctx.seed);
        let (r_est, _) = estimate_oblivious(&Random::new(space), &profile, cfg);
        let (c_est, _) = estimate_oblivious(&Cluster::new(space), &profile, cfg);
        let ratio = r_est.p_hat / c_est.p_hat.max(1e-12);
        if log_d == 4 {
            ratio_at_n = ratio;
        }
        if log_d == 10 {
            ratio_at_64n = ratio;
        }
        table.push_row(vec![
            fmt_count(d),
            trials.to_string(),
            fmt_prob(r_est.p_hat),
            fmt_prob(c_est.p_hat),
            fmt_ratio(ratio),
        ]);
    }
    sections.push(table.markdown());

    checks.push(Check::new(
        "crossover at d ≈ n: tie at d = n, Random loses ~d/n beyond",
        (0.4..=2.5).contains(&ratio_at_n) && ratio_at_64n > 8.0,
        format!("ratio(d=n) = {ratio_at_n:.2}, ratio(d=64n) = {ratio_at_64n:.2}"),
    ));

    ExperimentReport {
        id: "E5",
        title: "Corollary 5 — Cluster vs Random in the worst case",
        sections,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
