//! E3 — Theorem 2 and Corollary 3: `p_Bins(k)` across the `k` spectrum.
//!
//! At `m = 2²⁴` with a fixed profile, sweeping `k` exposes all three
//! terms of Theorem 2's bound: the pair term `(‖D‖₁²−‖D‖₂²)/(km)`
//! dominates at small `k` (Random, `k = 1`, is its pure form — Corollary
//! 3), the `n²k/m` term dominates at large `k`, and the valley between is
//! where Bins(k) is at its best (`k ≈ h`, Lemma 16's optimum). Measured
//! values are compared against **both** the Θ-expression and the *exact*
//! disjoint-bin-counting formula; the exact one must fall inside the
//! Wilson interval.

use uuidp_adversary::profile::DemandProfile;
use uuidp_core::algorithms::Bins;
use uuidp_core::id::IdSpace;
use uuidp_sim::experiment::{fmt_prob, fmt_ratio, Table};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};

use uuidp_analysis::exact::bins_exact;
use uuidp_analysis::theory;

use super::{Check, Ctx, ExperimentReport};

/// Runs E3.
pub fn run(ctx: &Ctx) -> ExperimentReport {
    let m = 1u128 << 24;
    let space = IdSpace::new(m).unwrap();

    let mut sections = Vec::new();
    let mut checks = Vec::new();

    for (label, profile) in [
        ("uniform n=4, h=2^9", DemandProfile::uniform(4, 1 << 9)),
        (
            "skewed (2^11, 2^7, 2^7, 2^7)",
            DemandProfile::new(vec![1 << 11, 1 << 7, 1 << 7, 1 << 7]),
        ),
    ] {
        let mut table = Table::new(
            format!("Bins(k) vs Theorem 2 — {label}, m = 2^24"),
            &[
                "k",
                "trials",
                "measured p",
                "exact p",
                "theta",
                "meas/theta",
                "exact in CI",
            ],
        );
        let mut measured = Vec::new();
        let mut all_in_ci = true;
        let mut ratio_band = (f64::INFINITY, 0.0f64);
        for log_k in [0u32, 4, 8, 12] {
            let k = 1u128 << log_k;
            let exact = bins_exact(&profile, k, m);
            let theta = theory::bins(&profile, k, m);
            // Floor at 10k: when p is large, trials_for returns few
            // trials and the relative resolution gets sloppy.
            let trials = ctx.trials_for(exact, 200_000).max(10_000);
            let alg = Bins::new(space, k);
            let (est, diag) =
                estimate_oblivious(&alg, &profile, TrialConfig::new(trials, ctx.seed));
            assert_eq!(diag.exhausted_trials, 0);
            // CI coverage with a relative-error fallback: eight 95%
            // intervals jointly cover with only ~2/3 probability, so a
            // near-miss within 15% relative error also counts.
            let in_ci = est.contains(exact) || (est.p_hat - exact).abs() / exact.max(1e-12) < 0.15;
            all_in_ci &= in_ci;
            let ratio = est.p_hat / theta;
            ratio_band = (ratio_band.0.min(ratio), ratio_band.1.max(ratio));
            measured.push((k, est.p_hat));
            table.push_row(vec![
                k.to_string(),
                trials.to_string(),
                fmt_prob(est.p_hat),
                fmt_prob(exact),
                fmt_prob(theta),
                fmt_ratio(ratio),
                in_ci.to_string(),
            ]);
        }
        checks.push(Check::new(
            format!("{label}: exact formula inside every Wilson interval"),
            all_in_ci,
            "disjoint-bin counting matches simulation".to_string(),
        ));
        checks.push(Check::new(
            format!("{label}: Θ-band bounded"),
            ratio_band.0 > 0.1 && ratio_band.1 < 3.0,
            format!("ratios in [{:.2}, {:.2}]", ratio_band.0, ratio_band.1),
        ));
        // The k-valley: collision probability dips then rises again.
        let p1 = measured[0].1;
        let valley = measured[1..measured.len() - 1]
            .iter()
            .map(|&(_, p)| p)
            .fold(f64::INFINITY, f64::min);
        let p_last = measured[measured.len() - 1].1;
        checks.push(Check::new(
            format!("{label}: U-shape in k (Random worst at k=1, n²k/m bites at large k)"),
            valley < p1 && valley < p_last,
            format!("p(k=1)={p1:.4}, valley={valley:.4}, p(k=2^12)={p_last:.4}"),
        ));
        sections.push(table.markdown());
    }

    ExperimentReport {
        id: "E3",
        title: "Theorem 2 / Corollary 3 — Bins(k) and Random",
        sections,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_quick_passes() {
        let ctx = Ctx {
            quick: true,
            ..Ctx::default()
        };
        let report = run(&ctx);
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
