//! Generator micro-benchmarks: ns/ID for every algorithm, spawn cost, and
//! the bulk-skip fast path that powers the symbolic experiments.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::IdSpace;
use uuidp_core::traits::Algorithm;

fn suite() -> Vec<(&'static str, Box<dyn Algorithm>)> {
    let space = IdSpace::with_bits(64).unwrap();
    vec![
        ("random", AlgorithmKind::Random.build(space)),
        ("cluster", AlgorithmKind::Cluster.build(space)),
        ("bins_1024", AlgorithmKind::Bins { k: 1024 }.build(space)),
        ("cluster_star", AlgorithmKind::ClusterStar.build(space)),
        ("bins_star", AlgorithmKind::BinsStar.build(space)),
        (
            "session_counter",
            AlgorithmKind::SessionCounter {
                session_bits: 40,
                counter_bits: 24,
            }
            .build(space),
        ),
    ]
}

fn bench_next_id(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_id");
    let batch = 1024u128;
    group.throughput(Throughput::Elements(batch as u64));
    for (name, alg) in suite() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || alg.spawn(42),
                |mut gen| {
                    for _ in 0..batch {
                        black_box(gen.next_id().unwrap());
                    }
                    gen
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_spawn(c: &mut Criterion) {
    let mut group = c.benchmark_group("spawn");
    for (name, alg) in suite() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(alg.spawn(seed))
            });
        });
    }
    group.finish();
}

fn bench_bulk_skip(c: &mut Criterion) {
    // The ablation behind the symbolic engine: skipping 2^20 IDs must be
    // orders of magnitude cheaper than materializing them for the
    // arc-structured algorithms.
    let mut group = c.benchmark_group("skip_2e20");
    let count = 1u128 << 20;
    for (name, alg) in suite() {
        if name == "random" {
            continue; // O(count) by necessity; covered by next_id.
        }
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || alg.spawn(7),
                |mut gen| {
                    gen.skip(count).unwrap();
                    gen
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_next_id, bench_spawn, bench_bulk_skip);
criterion_main!(benches);
