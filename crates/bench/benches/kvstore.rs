//! KV-store substrate benchmarks (E13's unit costs): cache operations and
//! end-to-end workload throughput per ID algorithm.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::IdSpace;
use uuidp_kvstore::cache::BlockCache;
use uuidp_kvstore::sst::{BlockPayload, CacheKey, FileIdentity};
use uuidp_kvstore::workload::{run_workload, WorkloadConfig};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_cache");
    group.throughput(Throughput::Elements(1));

    group.bench_function("insert_evicting", |b| {
        let cache = BlockCache::new(1 << 12);
        let mut i = 0u128;
        b.iter(|| {
            i = i.wrapping_add(1);
            cache.insert(
                CacheKey {
                    sst_unique_id: i,
                    block: 0,
                },
                BlockPayload {
                    origin: FileIdentity {
                        origin_instance: 0,
                        file_number: i as u64,
                    },
                    block: 0,
                },
            );
        });
    });

    group.bench_function("get_hit", |b| {
        let cache = BlockCache::new(1 << 12);
        for i in 0..(1u128 << 12) {
            cache.insert(
                CacheKey {
                    sst_unique_id: i,
                    block: 0,
                },
                BlockPayload {
                    origin: FileIdentity {
                        origin_instance: 0,
                        file_number: i as u64,
                    },
                    block: 0,
                },
            );
        }
        let mut i = 0u128;
        b.iter(|| {
            i = (i + 1) & ((1 << 12) - 1);
            black_box(cache.get(CacheKey {
                sst_unique_id: i,
                block: 0,
            }))
        });
    });

    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_workload_4k_ops");
    let space = IdSpace::with_bits(24).unwrap();
    let config = WorkloadConfig {
        instances: 8,
        operations: 4_000,
        ..WorkloadConfig::default()
    };
    group.throughput(Throughput::Elements(config.operations));
    for (name, kind) in [
        ("random", AlgorithmKind::Random),
        ("cluster", AlgorithmKind::Cluster),
        (
            "session_counter",
            AlgorithmKind::SessionCounter {
                session_bits: 14,
                counter_bits: 10,
            },
        ),
    ] {
        let alg = kind.build(space);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_workload(alg.as_ref(), config, seed).files_created)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache, bench_workload);
criterion_main!(benches);
