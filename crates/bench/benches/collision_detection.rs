//! Collision-detection and interval-set benchmarks, including the
//! symbolic-vs-materialized ablation called out in DESIGN.md.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uuidp_adversary::profile::DemandProfile;
use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::{Arc, IntervalSet};
use uuidp_core::rng::{SeedTree, Xoshiro256pp};
use uuidp_sim::collision::{
    footprints_collide, footprints_collide_with, CollisionScratch, OnlineDetector,
};
use uuidp_sim::game::run_oblivious_symbolic;

fn bench_interval_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_set");
    let space = IdSpace::with_bits(64).unwrap();

    group.bench_function("insert_1k_arcs", |b| {
        let mut rng = Xoshiro256pp::new(1);
        let arcs: Vec<Arc> = (0..1000)
            .map(|_| {
                Arc::new(
                    space,
                    Id(uuidp_core::rng::uniform_below(&mut rng, space.size())),
                    1 + uuidp_core::rng::uniform_below(&mut rng, 1 << 20),
                )
            })
            .collect();
        b.iter(|| {
            let mut set = IntervalSet::new(space);
            for &arc in &arcs {
                set.insert(arc);
            }
            black_box(set.measure())
        });
    });

    group.bench_function("sample_fitting_start_fragmented", |b| {
        // A fragmented set (256 runs): the Cluster★ hot path.
        let mut set = IntervalSet::new(space);
        let mut rng = Xoshiro256pp::new(2);
        for _ in 0..256 {
            if let Some(start) = set.sample_fitting_start(&mut rng, 1 << 16) {
                set.insert(Arc::new(space, start, 1 << 16));
            }
        }
        b.iter(|| black_box(set.sample_fitting_start(&mut rng, 1 << 12)));
    });

    group.finish();
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detectors");
    let space = IdSpace::with_bits(40).unwrap();
    let n = 16usize;
    let per_instance = 1u128 << 12;

    // Symbolic: footprints from bulk-skipped Cluster instances.
    group.bench_function("symbolic_cluster_16x4096", |b| {
        let alg = AlgorithmKind::Cluster.build(space);
        let mut gens: Vec<_> = (0..n)
            .map(|i| {
                let mut g = alg.spawn(i as u64);
                g.skip(per_instance).unwrap();
                g
            })
            .collect();
        b.iter(|| {
            let fps: Vec<_> = gens.iter_mut().map(|g| g.footprint()).collect();
            black_box(footprints_collide(&fps))
        });
    });

    // Materialized: the same volume through the online detector.
    group.bench_function("materialized_cluster_16x4096", |b| {
        let alg = AlgorithmKind::Cluster.build(space);
        b.iter(|| {
            let mut det = OnlineDetector::new();
            for i in 0..n {
                let mut g = alg.spawn(i as u64);
                for _ in 0..per_instance {
                    det.record(i, g.next_id().unwrap());
                }
            }
            black_box(det.collided())
        });
    });

    group.finish();
}

fn bench_kway_mixed_footprints(c: &mut Criterion) {
    // The phase-2 hot path: many arc footprints plus large point
    // footprints (Random-style instances) in one k-way detection. Same
    // fixture as `repro bench-json` (uuidp_bench::perf), so these numbers
    // are comparable with the committed BENCH_PR1.json.
    let mut group = c.benchmark_group("kway_footprints_16_arcs_2x4096_points");
    let (arc_sets, point_sets) = uuidp_bench::perf::kway_fixture();
    let footprints = uuidp_bench::perf::kway_footprints(&arc_sets, &point_sets);

    group.bench_function("fresh_scratch", |b| {
        b.iter(|| black_box(footprints_collide(&footprints)));
    });
    group.bench_function("reused_scratch", |b| {
        let mut scratch = CollisionScratch::new();
        b.iter(|| black_box(footprints_collide_with(&mut scratch, &footprints)));
    });
    group.finish();
}

fn bench_full_symbolic_trial(c: &mut Criterion) {
    // One Monte-Carlo trial of the E2-style experiment, per algorithm:
    // this is the unit the repro harness repeats hundreds of thousands of
    // times.
    let mut group = c.benchmark_group("symbolic_trial_n16_d4096");
    let space = IdSpace::with_bits(40).unwrap();
    let profile = DemandProfile::uniform(16, 256);
    for (name, kind) in [
        ("cluster", AlgorithmKind::Cluster),
        ("bins_1024", AlgorithmKind::Bins { k: 1024 }),
        ("cluster_star", AlgorithmKind::ClusterStar),
        ("bins_star", AlgorithmKind::BinsStar),
    ] {
        let alg = kind.build(space);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut trial = 0u64;
            b.iter(|| {
                trial = trial.wrapping_add(1);
                let seeds = SeedTree::new(9).trial(trial);
                black_box(run_oblivious_symbolic(alg.as_ref(), &profile, &seeds).collided)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_interval_set,
    bench_detectors,
    bench_kway_mixed_footprints,
    bench_full_symbolic_trial
);
criterion_main!(benches);
