//! Bench-per-experiment wrappers: the unit work item of each paper
//! experiment, timed. `cargo bench` thus regenerates the performance
//! profile of the whole reproduction harness; the full-fidelity results
//! themselves come from `cargo run --release --bin repro -- all`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::nearest_pair::NearestPair;
use uuidp_adversary::profile::{DemandProfile, PhiDistribution};
use uuidp_adversary::run_hunter::RunHunter;
use uuidp_adversary::semi_adaptive::FollowSequence;
use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::IdSpace;
use uuidp_core::rng::{SeedDomain, SeedTree};
use uuidp_sim::game::{run_adaptive, run_oblivious_symbolic, GameLimits};

use uuidp_analysis::competitive::{pair_p_star_bounds, rounded_p_star_lower};
use uuidp_analysis::exact::{bins_exact, cluster_union_bounds, random_exact};

/// E2/E3/E5-style unit: one symbolic oblivious trial.
fn bench_oblivious_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_e3_e5_oblivious_trial");
    let space = IdSpace::with_bits(24).unwrap();
    let profile = DemandProfile::uniform(8, 1 << 9);
    for (name, kind) in [
        ("e2_cluster", AlgorithmKind::Cluster),
        ("e3_bins256", AlgorithmKind::Bins { k: 256 }),
        ("e5_random", AlgorithmKind::Random),
    ] {
        let alg = kind.build(space);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut t = 0u64;
            b.iter(|| {
                t = t.wrapping_add(1);
                let seeds = SeedTree::new(2).trial(t);
                black_box(run_oblivious_symbolic(alg.as_ref(), &profile, &seeds).collided)
            });
        });
    }
    group.finish();
}

/// E4/E6-style unit: the exact formulas on a realistic profile.
fn bench_exact_formulas(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_e6_exact_formulas");
    let m = 1u128 << 24;
    let profile = DemandProfile::uniform(32, 1 << 10);
    group.bench_function("cluster_union_bounds_n32", |b| {
        b.iter(|| black_box(cluster_union_bounds(&profile, m)));
    });
    group.bench_function("random_exact_n32_d32k", |b| {
        b.iter(|| black_box(random_exact(&profile, m)));
    });
    group.bench_function("bins_exact_n32", |b| {
        b.iter(|| black_box(bins_exact(&profile, 1 << 10, m)));
    });
    group.bench_function("rounded_p_star_lower_n32", |b| {
        b.iter(|| black_box(rounded_p_star_lower(&profile, m)));
    });
    group.finish();
}

/// E7/E8-style unit: one adaptive game.
fn bench_adaptive_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_e8_adaptive_game");
    let space = IdSpace::with_bits(20).unwrap();
    let (n, d) = (16usize, 1u128 << 10);
    let cases: Vec<(&str, AlgorithmKind, Box<dyn AdversarySpec>)> = vec![
        (
            "e7_nearest_pair_vs_cluster",
            AlgorithmKind::Cluster,
            Box::new(NearestPair::new(n, d)),
        ),
        (
            "e8_run_hunter_vs_cluster_star",
            AlgorithmKind::ClusterStar,
            Box::new(RunHunter::new(n, d)),
        ),
        (
            "e11_fol_vs_bins_star",
            AlgorithmKind::BinsStar,
            Box::new(FollowSequence::growing_to(&DemandProfile::uniform(4, 64))),
        ),
    ];
    for (name, kind, spec) in cases {
        let alg = kind.build(space);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut t = 0u64;
            b.iter(|| {
                t = t.wrapping_add(1);
                let seeds = SeedTree::new(3).trial(t);
                let mut adv = spec.spawn(seeds.seed(SeedDomain::Adversary));
                black_box(
                    run_adaptive(alg.as_ref(), adv.as_mut(), &seeds, GameLimits::default())
                        .collided,
                )
            });
        });
    }
    group.finish();
}

/// E9/E10-style unit: competitive machinery (p* witnesses, Φ expectation).
fn bench_competitive_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_e10_competitive");
    let m = 1u128 << 12;
    group.bench_function("pair_p_star_bounds", |b| {
        b.iter(|| black_box(pair_p_star_bounds(16, 1 << 10, m)));
    });
    let space = IdSpace::new(m).unwrap();
    group.bench_function("phi_enumerate_expectation", |b| {
        let phi = PhiDistribution::new(space);
        b.iter(|| {
            let total: f64 = phi
                .enumerate()
                .map(|(d, w)| w * (d.l1() as f64 / m as f64))
                .sum();
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_oblivious_trials,
    bench_exact_formulas,
    bench_adaptive_games,
    bench_competitive_machinery
);
criterion_main!(benches);
