//! Monte-Carlo engine benchmarks: end-to-end `estimate_oblivious` and
//! `estimate_adaptive` throughput on the trial engine (scratch reuse +
//! chunked work-stealing). These are the units the repro harness repeats
//! for every sweep point, so per-trial overhead here multiplies into
//! every experiment's wall clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::nearest_pair::NearestPair;
use uuidp_adversary::profile::DemandProfile;
use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::IdSpace;
use uuidp_sim::montecarlo::{estimate_adaptive, estimate_oblivious, TrialConfig};

fn bench_estimate_oblivious(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_oblivious_512_trials_16x1024");
    let trials = 512u64;
    group.throughput(Throughput::Elements(trials));
    let space = IdSpace::with_bits(40).unwrap();
    let profile = DemandProfile::uniform(16, 1 << 10);
    for (name, kind) in [
        ("cluster", AlgorithmKind::Cluster),
        ("bins_4096", AlgorithmKind::Bins { k: 4096 }),
        ("cluster_star", AlgorithmKind::ClusterStar),
        ("bins_star", AlgorithmKind::BinsStar),
    ] {
        let alg = kind.build(space);
        for threads in [1usize, 4] {
            let mut cfg = TrialConfig::new(trials, 9);
            cfg.threads = threads;
            group.bench_function(BenchmarkId::new(name, format!("{threads}t")), |b| {
                b.iter(|| black_box(estimate_oblivious(alg.as_ref(), &profile, cfg)));
            });
        }
    }
    group.finish();
}

fn bench_estimate_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_adaptive_64_trials");
    let trials = 64u64;
    group.throughput(Throughput::Elements(trials));
    let space = IdSpace::with_bits(24).unwrap();
    let alg = AlgorithmKind::Cluster.build(space);
    let spec: Box<dyn AdversarySpec> = Box::new(NearestPair::new(8, 1 << 8));
    for threads in [1usize, 4] {
        let mut cfg = TrialConfig::new(trials, 11);
        cfg.threads = threads;
        group.bench_function(BenchmarkId::from_parameter(format!("{threads}t")), |b| {
            b.iter(|| black_box(estimate_adaptive(alg.as_ref(), spec.as_ref(), cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimate_oblivious, bench_estimate_adaptive);
criterion_main!(benches);
