//! Wire protocol v2: length-prefixed binary frames.
//!
//! Every v2 message — in either direction — is one frame:
//!
//! ```text
//! magic     4 bytes   [0x00, 'U', 'P', '2']  (the NUL lead byte is the
//!                     version-negotiation sniff: no v1 text line
//!                     starts with NUL)
//! kind      u8        frame kind (see the table below)
//! corr      u64 LE    correlation id (0 = uncorrelated/connection-level)
//! length    u32 LE    payload byte count (≤ 16 MiB)
//! payload   ...       kind-specific, shared `uuidp_core::codec` encoding
//! checksum  u64 LE    FNV-1a over magic..payload
//! ```
//!
//! | kind | frame | direction | payload |
//! |------|-------|-----------|---------|
//! | 0 | `Hello` | c→s | protocol version (u32), universe size (u128) |
//! | 1 | `HelloOk` | s→c | negotiated version (u32), universe size (u128) |
//! | 2 | `Error` | s→c | message (string); `corr = 0` is connection-fatal |
//! | 3 | `LeaseReq` | c→s | tenant (u64), count (u128) |
//! | 4 | `LeaseResp` | s→c | tenant, granted, arcs (pair seq), error (opt string) |
//! | 5 | `ResetReq` | c→s | tenant (u64) |
//! | 6 | `ResetResp` | s→c | tenant (u64) |
//! | 7 | `DrainReq` | c→s | — |
//! | 8 | `DrainResp` | s→c | — |
//! | 9 | `SummaryReq` | c→s | — |
//! | 10 | `SummaryResp` | s→c | the 15 [`Summary`] fields (f64s as bit patterns) |
//! | 11 | `ShutdownReq` | c→s | — (reply is a `SummaryResp`, then close) |
//! | 12 | `HaltReq` | c→s | — (no reply: the server dies abruptly) |
//! | 13 | `MetricsReq` | c→s | — |
//! | 14 | `MetricsResp` | s→c | Prometheus-style text exposition (string) |
//! | 15 | `TimelineReq` | c→s | correlation id to look up (u64) |
//! | 16 | `TimelineResp` | s→c | rendered span timeline (string; empty = not retained) |
//!
//! The correlation id is what buys multiplexing: requests carry a
//! client-chosen `corr`, replies echo it, and nothing requires replies
//! to arrive in request order — one connection can have many requests
//! in flight, from many threads, and each reply finds its caller by id.
//!
//! Decoding arbitrary bytes can fail ([`FrameError`], typed) but must
//! never panic or over-allocate: the payload length is capped before
//! allocation, every field read is bounds-checked, and the checksum is
//! verified before the payload is interpreted. Unlike the v1 text
//! protocol, a framing error is connection-fatal — there is no reliable
//! way to resynchronize a binary stream after a corrupt length field.

use std::io::{self, Read, Write};

use uuidp_core::codec::{
    fnv1a, put_f64, put_opt_str, put_pair_seq, put_str, put_u128, put_u32, put_u64, put_u8,
    CodecError, Cursor,
};

use crate::Summary;

/// Magic bytes opening every v2 frame. The leading NUL is what the
/// server's version sniff keys on.
pub const MAGIC: [u8; 4] = [0x00, b'U', b'P', b'2'];

/// The protocol version this codec speaks.
pub const VERSION: u32 = 2;

/// Maximum payload bytes a frame may carry. A lease for the whole
/// 2¹²⁸ universe is a few dozen bytes when it lands in runs, but the
/// Random algorithm fragments a lease into one 32-byte arc per ID, so
/// the cap admits ~500k-arc replies; servers turn anything larger into
/// a typed error rather than an undecodable frame, and decoders reject
/// over-cap lengths before allocating.
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// Fixed header bytes before the payload.
pub const HEADER_LEN: usize = 4 + 1 + 8 + 4;

/// Trailing checksum bytes after the payload.
pub const TRAILER_LEN: usize = 8;

/// One decoded frame: its correlation id plus the typed body.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Correlation id (0 = connection-level, not tied to a request).
    pub corr: u64,
    /// The typed payload.
    pub body: FrameBody,
}

/// The typed payload of a v2 frame.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameBody {
    /// Client hello: the version it speaks and the universe it expects.
    Hello {
        /// Protocol version the client speaks.
        version: u32,
        /// Universe size (`IdSpace::size`) the client was built for.
        space: u128,
    },
    /// Server accept: negotiation succeeded.
    HelloOk {
        /// Protocol version the server will speak.
        version: u32,
        /// The server's universe size.
        space: u128,
    },
    /// Server-side error. With `corr != 0` it answers that request;
    /// with `corr == 0` it is connection-fatal (framing/negotiation).
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Lease `count` IDs for `tenant`.
    LeaseReq {
        /// Requesting tenant.
        tenant: u64,
        /// IDs requested.
        count: u128,
    },
    /// A served lease. Arcs travel as raw `(start, len)` pairs; the
    /// client validates them against its universe before typing them.
    LeaseResp {
        /// The tenant the lease was served for.
        tenant: u64,
        /// Total IDs granted.
        granted: u128,
        /// Granted arcs in emission order.
        arcs: Vec<(u128, u128)>,
        /// Generator error text, if the grant fell short.
        error: Option<String>,
    },
    /// Recycle `tenant`'s generator into a fresh epoch.
    ResetReq {
        /// Tenant to recycle.
        tenant: u64,
    },
    /// Reset acknowledgement.
    ResetResp {
        /// The recycled tenant.
        tenant: u64,
    },
    /// Block until every prior request is processed.
    DrainReq,
    /// Drain acknowledgement.
    DrainResp,
    /// Ask for a live service summary without stopping anything.
    SummaryReq,
    /// A service summary (live, or final when answering a shutdown).
    SummaryResp(Summary),
    /// Stop the whole service; the reply is a `SummaryResp`.
    ShutdownReq,
    /// Kill the server abruptly (crash fiction): no reply, the
    /// connection is severed.
    HaltReq,
    /// Ask for a metrics-registry scrape.
    MetricsReq,
    /// A metrics scrape: the Prometheus-style text exposition.
    MetricsResp {
        /// The rendered exposition.
        text: String,
    },
    /// Ask for the retained trace span of one correlation id. The
    /// *frame's* own `corr` is the request/reply correlation as usual;
    /// the queried id travels in the payload.
    TimelineReq {
        /// Correlation id whose span events are wanted.
        corr: u64,
    },
    /// A span timeline: [`TraceRecorder::timeline`] output for the
    /// queried id — empty when the ring no longer retains it.
    TimelineResp {
        /// The rendered causal timeline.
        text: String,
    },
}

impl FrameBody {
    fn kind(&self) -> u8 {
        match self {
            FrameBody::Hello { .. } => 0,
            FrameBody::HelloOk { .. } => 1,
            FrameBody::Error { .. } => 2,
            FrameBody::LeaseReq { .. } => 3,
            FrameBody::LeaseResp { .. } => 4,
            FrameBody::ResetReq { .. } => 5,
            FrameBody::ResetResp { .. } => 6,
            FrameBody::DrainReq => 7,
            FrameBody::DrainResp => 8,
            FrameBody::SummaryReq => 9,
            FrameBody::SummaryResp(_) => 10,
            FrameBody::ShutdownReq => 11,
            FrameBody::HaltReq => 12,
            FrameBody::MetricsReq => 13,
            FrameBody::MetricsResp { .. } => 14,
            FrameBody::TimelineReq { .. } => 15,
            FrameBody::TimelineResp { .. } => 16,
        }
    }

    /// A short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            FrameBody::Hello { .. } => "hello",
            FrameBody::HelloOk { .. } => "hello-ok",
            FrameBody::Error { .. } => "error",
            FrameBody::LeaseReq { .. } => "lease-req",
            FrameBody::LeaseResp { .. } => "lease-resp",
            FrameBody::ResetReq { .. } => "reset-req",
            FrameBody::ResetResp { .. } => "reset-resp",
            FrameBody::DrainReq => "drain-req",
            FrameBody::DrainResp => "drain-resp",
            FrameBody::SummaryReq => "summary-req",
            FrameBody::SummaryResp(_) => "summary-resp",
            FrameBody::ShutdownReq => "shutdown-req",
            FrameBody::HaltReq => "halt-req",
            FrameBody::MetricsReq => "metrics-req",
            FrameBody::MetricsResp { .. } => "metrics-resp",
            FrameBody::TimelineReq { .. } => "timeline-req",
            FrameBody::TimelineResp { .. } => "timeline-resp",
        }
    }
}

/// Error decoding a v2 frame. Every variant is connection-fatal.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// The bytes do not start with [`MAGIC`].
    BadMagic,
    /// The header's payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The stored checksum does not match the content.
    ChecksumMismatch,
    /// The frame kind byte is not in the table.
    UnknownKind(u8),
    /// A fixed header/trailer field ran past the available bytes. The
    /// public decoders pre-check lengths, so reaching this means an
    /// internal slicing bug — but it is still a typed error, never a
    /// panic, because these paths decode attacker-controlled bytes.
    Truncated,
    /// The payload failed to decode for its kind.
    Payload(CodecError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a v2 frame (bad magic)"),
            FrameError::Oversized(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_PAYLOAD} cap"
                )
            }
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Truncated => write!(f, "frame header field out of bounds"),
            FrameError::Payload(e) => write!(f, "bad frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Payload(e)
    }
}

fn encode_summary(out: &mut Vec<u8>, s: &Summary) {
    put_u128(out, s.issued_ids);
    put_u64(out, s.leases);
    put_u64(out, s.errors);
    put_f64(out, s.p50_ns);
    put_f64(out, s.p99_ns);
    put_f64(out, s.p999_ns);
    put_f64(out, s.mean_ns);
    put_u128(out, s.duplicate_ids);
    put_u64(out, s.flagged_records);
    put_u128(out, s.recorded_ids);
    put_u64(out, s.recorded_arcs);
    put_u64(out, s.records);
    put_u128(out, s.max_lag_ns);
    put_f64(out, s.mean_lag_ns);
    put_u64(out, s.audit_threads as u64);
}

fn decode_summary(c: &mut Cursor<'_>) -> Result<Summary, CodecError> {
    Ok(Summary {
        issued_ids: c.u128()?,
        leases: c.u64()?,
        errors: c.u64()?,
        p50_ns: c.f64()?,
        p99_ns: c.f64()?,
        p999_ns: c.f64()?,
        mean_ns: c.f64()?,
        duplicate_ids: c.u128()?,
        flagged_records: c.u64()?,
        recorded_ids: c.u128()?,
        recorded_arcs: c.u64()?,
        records: c.u64()?,
        max_lag_ns: c.u128()?,
        mean_lag_ns: c.f64()?,
        audit_threads: c.u64()? as usize,
    })
}

fn encode_payload(out: &mut Vec<u8>, body: &FrameBody) {
    match body {
        FrameBody::Hello { version, space } | FrameBody::HelloOk { version, space } => {
            put_u32(out, *version);
            put_u128(out, *space);
        }
        FrameBody::Error { message } => put_str(out, message),
        FrameBody::LeaseReq { tenant, count } => {
            put_u64(out, *tenant);
            put_u128(out, *count);
        }
        FrameBody::LeaseResp {
            tenant,
            granted,
            arcs,
            error,
        } => {
            put_u64(out, *tenant);
            put_u128(out, *granted);
            put_pair_seq(out, arcs);
            put_opt_str(out, error);
        }
        FrameBody::ResetReq { tenant } | FrameBody::ResetResp { tenant } => {
            put_u64(out, *tenant);
        }
        FrameBody::SummaryResp(summary) => encode_summary(out, summary),
        FrameBody::MetricsResp { text } | FrameBody::TimelineResp { text } => put_str(out, text),
        FrameBody::TimelineReq { corr } => put_u64(out, *corr),
        FrameBody::DrainReq
        | FrameBody::DrainResp
        | FrameBody::SummaryReq
        | FrameBody::ShutdownReq
        | FrameBody::HaltReq
        | FrameBody::MetricsReq => {}
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<FrameBody, FrameError> {
    let mut c = Cursor::new(payload);
    let body = match kind {
        0 => FrameBody::Hello {
            version: c.u32()?,
            space: c.u128()?,
        },
        1 => FrameBody::HelloOk {
            version: c.u32()?,
            space: c.u128()?,
        },
        2 => FrameBody::Error { message: c.str()? },
        3 => FrameBody::LeaseReq {
            tenant: c.u64()?,
            count: c.u128()?,
        },
        4 => FrameBody::LeaseResp {
            tenant: c.u64()?,
            granted: c.u128()?,
            arcs: c.pair_seq()?,
            error: c.opt_str()?,
        },
        5 => FrameBody::ResetReq { tenant: c.u64()? },
        6 => FrameBody::ResetResp { tenant: c.u64()? },
        7 => FrameBody::DrainReq,
        8 => FrameBody::DrainResp,
        9 => FrameBody::SummaryReq,
        10 => FrameBody::SummaryResp(decode_summary(&mut c)?),
        11 => FrameBody::ShutdownReq,
        12 => FrameBody::HaltReq,
        13 => FrameBody::MetricsReq,
        14 => FrameBody::MetricsResp { text: c.str()? },
        15 => FrameBody::TimelineReq { corr: c.u64()? },
        16 => FrameBody::TimelineResp { text: c.str()? },
        k => return Err(FrameError::UnknownKind(k)),
    };
    c.finish()?;
    Ok(body)
}

/// Serializes one frame.
pub fn encode_frame(corr: u64, body: &FrameBody) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    encode_payload(&mut payload, body);
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    put_u8(&mut out, body.kind());
    put_u64(&mut out, corr);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

/// Decodes the first frame in `buf`, if complete.
///
/// * `Ok(Some((frame, consumed)))` — a whole valid frame; the caller
///   should drop the first `consumed` bytes and call again.
/// * `Ok(None)` — the bytes so far are a valid prefix; read more.
/// * `Err(_)` — the stream is corrupt; sever the connection.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < HEADER_LEN {
        // An early magic mismatch is reportable before the full header
        // arrives — and is what the version sniff relies on.
        let probe = buf.len().min(MAGIC.len());
        if buf.get(..probe) != Some(&MAGIC[..probe]) {
            return Err(FrameError::BadMagic);
        }
        return Ok(None);
    }
    if buf.get(..4) != Some(&MAGIC[..]) {
        return Err(FrameError::BadMagic);
    }
    let kind = *buf.get(4).ok_or(FrameError::Truncated)?;
    let corr = u64::from_le_bytes(field(buf, 5)?);
    let payload_len = u32::from_le_bytes(field(buf, 13)?);
    if payload_len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(payload_len));
    }
    let total = HEADER_LEN + payload_len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Ok(None);
    }
    let body_end = HEADER_LEN + payload_len as usize;
    let stored = u64::from_le_bytes(field(buf, body_end)?);
    let checked = buf.get(..body_end).ok_or(FrameError::Truncated)?;
    if fnv1a(checked) != stored {
        return Err(FrameError::ChecksumMismatch);
    }
    let payload = buf.get(HEADER_LEN..body_end).ok_or(FrameError::Truncated)?;
    let body = decode_payload(kind, payload)?;
    Ok(Some((Frame { corr, body }, total)))
}

/// Reads the `N`-byte little-endian field at `at`, as a typed error
/// instead of a `try_into().unwrap()` slice-to-array panic.
fn field<const N: usize>(buf: &[u8], at: usize) -> Result<[u8; N], FrameError> {
    let slice = at
        .checked_add(N)
        .and_then(|end| buf.get(at..end))
        .ok_or(FrameError::Truncated)?;
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    Ok(out)
}

fn fatal(e: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Writes one frame to a blocking stream.
pub fn write_frame(w: &mut impl Write, corr: u64, body: &FrameBody) -> io::Result<()> {
    w.write_all(&encode_frame(corr, body))
}

/// Reads exactly one frame from a blocking stream (the client side,
/// where a dedicated reader owns the read half).
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    // Validate the fixed part before trusting the length.
    if header.get(..4) != Some(&MAGIC[..]) {
        return Err(fatal(FrameError::BadMagic));
    }
    let payload_len = u32::from_le_bytes(field(&header, 13).map_err(fatal)?);
    if payload_len > MAX_PAYLOAD {
        return Err(fatal(FrameError::Oversized(payload_len)));
    }
    let mut rest = vec![0u8; payload_len as usize + TRAILER_LEN];
    r.read_exact(&mut rest)?;
    let mut whole = Vec::with_capacity(HEADER_LEN + rest.len());
    whole.extend_from_slice(&header);
    whole.extend_from_slice(&rest);
    match decode_frame(&whole) {
        Ok(Some((frame, consumed))) => {
            debug_assert_eq!(consumed, whole.len());
            Ok(frame)
        }
        // The buffer holds exactly header + declared payload + trailer,
        // so a "valid prefix" verdict cannot happen — but a decode path
        // reports that as corruption rather than panicking on it.
        Ok(None) => Err(fatal(FrameError::Truncated)),
        Err(e) => Err(fatal(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bodies() -> Vec<FrameBody> {
        vec![
            FrameBody::Hello {
                version: 2,
                space: 1 << 64,
            },
            FrameBody::HelloOk {
                version: 2,
                space: 1 << 64,
            },
            FrameBody::Error {
                message: "no such universe".into(),
            },
            FrameBody::LeaseReq {
                tenant: 7,
                count: 1 << 90,
            },
            FrameBody::LeaseResp {
                tenant: 7,
                granted: 57,
                arcs: vec![(100, 50), (4000, 7)],
                error: Some("exhausted".into()),
            },
            FrameBody::ResetReq { tenant: 3 },
            FrameBody::ResetResp { tenant: 3 },
            FrameBody::DrainReq,
            FrameBody::DrainResp,
            FrameBody::SummaryReq,
            FrameBody::SummaryResp(Summary {
                issued_ids: 12345,
                leases: 67,
                errors: 1,
                p50_ns: 1000.5,
                p99_ns: 3000.25,
                p999_ns: 4000.75,
                mean_ns: 1500.125,
                duplicate_ids: 11,
                flagged_records: 2,
                recorded_ids: 12345,
                recorded_arcs: 80,
                records: 70,
                max_lag_ns: 5555,
                mean_lag_ns: 1234.5,
                audit_threads: 3,
            }),
            FrameBody::ShutdownReq,
            FrameBody::HaltReq,
            FrameBody::MetricsReq,
            FrameBody::MetricsResp {
                text: "# TYPE uuidp_leases_total counter\nuuidp_leases_total 5\n".into(),
            },
            FrameBody::TimelineReq { corr: 99 },
            FrameBody::TimelineResp {
                text: "span corr=99\n  +0ns client-send tenant=7 lease\n".into(),
            },
        ]
    }

    #[test]
    fn every_frame_kind_round_trips_exactly() {
        for (i, body) in bodies().into_iter().enumerate() {
            let corr = 1 + i as u64 * 7;
            let bytes = encode_frame(corr, &body);
            let (frame, used) = decode_frame(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e}", body.name()))
                .expect("complete frame");
            assert_eq!(used, bytes.len(), "{}", body.name());
            assert_eq!(frame.corr, corr);
            assert_eq!(frame.body, body);
            // Streamed form agrees with the buffer form.
            let mut cursor = std::io::Cursor::new(&bytes);
            assert_eq!(read_frame(&mut cursor).unwrap().body, frame.body);
        }
    }

    #[test]
    fn prefixes_ask_for_more_and_corruption_is_fatal() {
        let body = FrameBody::LeaseResp {
            tenant: 1,
            granted: 10,
            arcs: vec![(5, 10)],
            error: None,
        };
        let bytes = encode_frame(9, &body);
        for cut in 1..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Ok(None) => {}
                other => panic!("prefix of {cut} bytes: {other:?}"),
            }
        }
        // Every single-byte flip is rejected (magic, kind, length,
        // payload, or checksum — never a silent wrong decode).
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x41;
            match decode_frame(&bad) {
                Err(_) => {}
                // A flipped length byte may just leave the frame
                // looking incomplete — also safe.
                Ok(None) if (13..17).contains(&at) => {}
                other => panic!("flip at {at} accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let a = encode_frame(1, &FrameBody::DrainReq);
        let b = encode_frame(2, &FrameBody::ResetReq { tenant: 4 });
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let (f1, used) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(f1.corr, 1);
        let (f2, used2) = decode_frame(&buf[used..]).unwrap().unwrap();
        assert_eq!(f2.corr, 2);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn text_bytes_are_rejected_as_bad_magic_immediately() {
        // The negotiation sniff: a v1 text line must fail fast on its
        // very first byte, not wait for a full header.
        assert_eq!(decode_frame(b"l"), Err(FrameError::BadMagic));
        assert_eq!(decode_frame(b"lease 1 10\n"), Err(FrameError::BadMagic));
        // And a NUL lead byte is (so far) a valid v2 prefix.
        assert_eq!(decode_frame(&[0x00]), Ok(None));
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        let mut bytes = encode_frame(1, &FrameBody::DrainReq);
        bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Oversized(_))
        ));
    }
}
