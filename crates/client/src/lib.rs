//! # uuidp-client — the typed, multiplexing service client
//!
//! The transport-owning client API for the `uuidp` ID service, and the
//! home of **wire protocol v2**: length-prefixed binary frames (magic /
//! version / length / payload / FNV-1a checksum, the same codec
//! discipline as `uuidp_core::persist`) with per-request **correlation
//! ids**, so one TCP connection can carry interleaved requests from
//! many threads and tenants at once.
//!
//! ```text
//!   threads          Client (Clone)                    server
//!  ────────┐     ┌──────────────────┐
//!   lease ─┼──►  │ writer (mutex)   │ ──frames──►  negotiated v2 conn
//!   drain ─┤     │ pending: corr→tx │
//!   lease ─┘     └──────────────────┘
//!                  ▲        reader demux thread
//!                  └─── replies routed by correlation id ◄──frames──
//! ```
//!
//! * [`Client::connect`] dials the server, performs the version
//!   handshake (`Hello`/`HelloOk` — the server also validates that
//!   client and server agree on the ID universe, which the v1 text
//!   protocol could never check), and spawns the reader.
//! * [`Client`] is `Clone + Send + Sync`: clones share one connection.
//!   Each request registers a correlation id, writes one frame under
//!   the writer lock, and parks on its own reply channel; the reader
//!   demux thread routes every incoming frame to the request that asked
//!   for it. `N` worker threads need `N` connections under the v1 line
//!   protocol — under v2 they need one.
//! * Typed surface: [`Client::lease`] → [`Lease`], [`Client::summary`] /
//!   [`Client::shutdown`] → [`Summary`], plus [`Client::reset`],
//!   [`Client::drain`], and [`Client::halt`] (the remote crash lever).
//!
//! The frame grammar itself lives in [`frame`]; servers reuse it from
//! there. [`ProtoVersion`] is the workspace-wide `--protocol v1|v2`
//! selector.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use uuidp_core::interval::Arc;

pub mod frame;

mod client;
mod error;

pub use client::{Client, ClientOptions};
pub use error::{broken, broken_connection, classify, BrokenConnection, ErrorClass, RetryPolicy};

/// Which wire protocol a client-side consumer speaks: the v1 text line
/// protocol or the v2 binary framed protocol. Servers negotiate per
/// connection and serve both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtoVersion {
    /// The newline-framed text protocol (`lease 7 100` → one reply
    /// line), one request in flight per connection.
    #[default]
    V1,
    /// Length-prefixed binary frames with correlation ids; one
    /// connection multiplexes any number of in-flight requests.
    V2,
}

impl ProtoVersion {
    /// Parses a protocol name (`v1 | v2`, bare digits accepted).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "v1" | "1" => Ok(ProtoVersion::V1),
            "v2" | "2" => Ok(ProtoVersion::V2),
            other => Err(format!("unknown protocol `{other}` (v1 | v2)")),
        }
    }
}

impl std::fmt::Display for ProtoVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ProtoVersion::V1 => "v1",
            ProtoVersion::V2 => "v2",
        })
    }
}

/// A served lease, as seen by a client: the typed twin of the service's
/// `LeaseReply`, with the server's generator error carried as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The tenant the lease was served for.
    pub tenant: u64,
    /// Total IDs granted.
    pub granted: u128,
    /// Granted arcs in emission order.
    pub arcs: Vec<Arc>,
    /// Generator error text, if the grant fell short.
    pub error: Option<String>,
}

/// A service summary as it crosses the wire: the aggregate totals of a
/// `ServiceReport`. Per-thread audit detail stays server-side; the wire
/// carries the merged view. Served live by [`Client::summary`] and as
/// the final word by [`Client::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total IDs issued.
    pub issued_ids: u128,
    /// Leases served.
    pub leases: u64,
    /// Leases that hit a generator error.
    pub errors: u64,
    /// Median per-lease issue cost, nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile per-lease issue cost, nanoseconds.
    pub p99_ns: f64,
    /// 99.9th-percentile per-lease issue cost, nanoseconds — the tail
    /// the SLO section watches under chaos.
    pub p999_ns: f64,
    /// Mean per-lease issue cost, nanoseconds.
    pub mean_ns: f64,
    /// Cross-owner duplicate IDs found by the audit.
    pub duplicate_ids: u128,
    /// Audit records that overlapped foreign material on arrival.
    pub flagged_records: u64,
    /// Total IDs recorded by the audit.
    pub recorded_ids: u128,
    /// Total segments recorded by the audit.
    pub recorded_arcs: u64,
    /// Routed lease batches the audit processed.
    pub records: u64,
    /// Worst tap-to-audit lag, nanoseconds.
    pub max_lag_ns: u128,
    /// Mean tap-to-audit lag, nanoseconds.
    pub mean_lag_ns: f64,
    /// Audit pipeline threads that produced the merged totals.
    pub audit_threads: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_versions_parse_and_display() {
        assert_eq!(ProtoVersion::parse("v1").unwrap(), ProtoVersion::V1);
        assert_eq!(ProtoVersion::parse("V2").unwrap(), ProtoVersion::V2);
        assert_eq!(ProtoVersion::parse("1").unwrap(), ProtoVersion::V1);
        assert_eq!(ProtoVersion::parse("2").unwrap(), ProtoVersion::V2);
        assert!(ProtoVersion::parse("v3").is_err());
        assert!(ProtoVersion::parse("").is_err());
        assert_eq!(ProtoVersion::V2.to_string(), "v2");
        assert_eq!(ProtoVersion::default(), ProtoVersion::V1);
    }
}
