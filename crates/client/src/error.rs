//! Typed connection errors and retry classification.
//!
//! Under an adversarial network every failure forces one question on
//! the caller: *may this request be retried?* The answer depends on
//! whether the request can have reached the server:
//!
//! * the write never completed → the server saw at most a torn frame,
//!   which its checksum discipline discards — **retry-safe**;
//! * the write completed but the reply was lost (connection severed,
//!   corrupt reply frame, timeout) → the server may have issued the
//!   lease — **lease-in-doubt**. Retrying is still *correct* for this
//!   service (the generator never re-emits an ID, so a retried lease
//!   yields fresh IDs and the lost ones merely leak — the paper's
//!   discipline is leak-not-duplicate), but the caller must account the
//!   abandoned lease as leaked, never re-derive IDs from it;
//! * the two ends disagree about the protocol itself → **fatal**,
//!   retrying the same bytes cannot help.
//!
//! [`BrokenConnection`] carries that classification inside an
//! `io::Error` (downcast via [`broken_connection`]), so every existing
//! `io::Result` surface stays intact while chaos-aware callers can
//! route on it. [`RetryPolicy`] is the matching deterministic
//! exponential-backoff schedule: jitter is derived from a seed, so a
//! replayed chaos run waits the same nanoseconds in the same places.

use std::io;
use std::time::Duration;

use uuidp_core::rng::SplitMix64;

/// How a failed request relates to server-side effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The request cannot have been processed; retry freely.
    RetrySafe,
    /// The request may have been processed and the reply lost. A lease
    /// retried after this must be treated as *fresh* (the abandoned
    /// grant leaks server-side); never re-derive IDs from the original.
    LeaseInDoubt,
    /// Protocol-level disagreement; retrying the same request is
    /// pointless.
    Fatal,
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorClass::RetrySafe => "retry-safe",
            ErrorClass::LeaseInDoubt => "lease-in-doubt",
            ErrorClass::Fatal => "fatal",
        })
    }
}

/// The typed payload of a connection-death `io::Error`: why the
/// connection is gone and whether the in-flight request may have been
/// processed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokenConnection {
    /// Human-readable cause (demux death reason, write error, timeout).
    pub reason: String,
    /// Retry classification for the request that observed this error.
    pub class: ErrorClass,
}

impl std::fmt::Display for BrokenConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "connection broken ({}): {}", self.class, self.reason)
    }
}

impl std::error::Error for BrokenConnection {}

impl BrokenConnection {
    /// Wraps this classification into an `io::Error` that downcasts
    /// back via [`broken_connection`].
    pub fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::UnexpectedEof, self)
    }
}

/// Builds a typed broken-connection error.
pub fn broken(reason: impl Into<String>, class: ErrorClass) -> io::Error {
    BrokenConnection {
        reason: reason.into(),
        class,
    }
    .into_io()
}

/// Recovers the typed [`BrokenConnection`] from an `io::Error`, if it
/// carries one.
pub fn broken_connection(err: &io::Error) -> Option<&BrokenConnection> {
    err.get_ref()?.downcast_ref::<BrokenConnection>()
}

/// Classifies any `io::Error` a client call can return.
///
/// Typed [`BrokenConnection`] errors carry their own class; everything
/// else falls back on the `ErrorKind`: dial-phase failures (refused /
/// unreachable / timed out before a request existed) are retry-safe,
/// data-phase severs are lease-in-doubt (the conservative reading —
/// absent the typed payload we cannot know whether the write landed),
/// and `InvalidData` (protocol violations) is fatal.
pub fn classify(err: &io::Error) -> ErrorClass {
    if let Some(b) = broken_connection(err) {
        return b.class;
    }
    match err.kind() {
        io::ErrorKind::ConnectionRefused
        | io::ErrorKind::AddrNotAvailable
        | io::ErrorKind::AddrInUse
        | io::ErrorKind::NotConnected => ErrorClass::RetrySafe,
        io::ErrorKind::InvalidData | io::ErrorKind::InvalidInput | io::ErrorKind::Unsupported => {
            ErrorClass::Fatal
        }
        _ => ErrorClass::LeaseInDoubt,
    }
}

/// Deterministic exponential backoff with seeded jitter.
///
/// `delay(attempt)` grows `base · 2^attempt`, capped at `max`, plus a
/// jitter drawn from a [`SplitMix64`] keyed on `(seed, attempt)` — two
/// runs with the same seed back off identically, so a replayed chaos
/// schedule replays its timing decisions too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts after the first try (0 = never retry).
    pub max_retries: u32,
    /// First-retry base delay.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Jitter fraction of the computed delay, in per-mille (0..=1000).
    pub jitter_per_mille: u16,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(2),
            max: Duration::from_millis(250),
            jitter_per_mille: 500,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let base_ns = self.base.as_nanos().max(1) as u64;
        let exp = base_ns.saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX));
        let capped = exp.min(self.max.as_nanos().min(u64::MAX as u128) as u64);
        let jitter_bound = capped / 1000 * self.jitter_per_mille.min(1000) as u64;
        let jitter = if jitter_bound == 0 {
            0
        } else {
            SplitMix64::new(self.seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .next_value()
                % jitter_bound
        };
        Duration::from_nanos(capped.saturating_add(jitter))
    }

    /// Whether retry number `attempt` (0-based) is allowed.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.max_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broken_connection_round_trips_through_io_error() {
        let err = broken("reply lost", ErrorClass::LeaseInDoubt);
        let b = broken_connection(&err).expect("typed payload");
        assert_eq!(b.class, ErrorClass::LeaseInDoubt);
        assert_eq!(b.reason, "reply lost");
        assert_eq!(classify(&err), ErrorClass::LeaseInDoubt);
        assert!(err.to_string().contains("lease-in-doubt"));
    }

    #[test]
    fn kind_fallback_classification() {
        let refused = io::Error::new(io::ErrorKind::ConnectionRefused, "nope");
        assert_eq!(classify(&refused), ErrorClass::RetrySafe);
        let invalid = io::Error::new(io::ErrorKind::InvalidData, "bad frame");
        assert_eq!(classify(&invalid), ErrorClass::Fatal);
        let reset = io::Error::new(io::ErrorKind::ConnectionReset, "rst");
        assert_eq!(classify(&reset), ErrorClass::LeaseInDoubt);
    }

    #[test]
    fn backoff_is_deterministic_and_monotone_to_the_cap() {
        let p = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        let q = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        for attempt in 0..8 {
            assert_eq!(p.delay(attempt), q.delay(attempt), "attempt {attempt}");
        }
        // Exponential part dominates: attempt 4 waits longer than 0.
        assert!(p.delay(4) > p.delay(0));
        // Capped: never more than max + max jitter.
        for attempt in 0..40 {
            assert!(p.delay(attempt) <= p.max + p.max);
        }
        let other = RetryPolicy {
            seed: 43,
            ..RetryPolicy::default()
        };
        assert_ne!(p.delay(3), other.delay(3), "jitter must follow the seed");
    }

    #[test]
    fn retry_budget_is_respected() {
        let p = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        assert!(p.allows(0));
        assert!(p.allows(1));
        assert!(!p.allows(2));
        assert!(!RetryPolicy::none().allows(0));
    }
}
