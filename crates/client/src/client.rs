//! The multiplexing v2 client (see the crate docs for the picture):
//! a shared writer handle plus one reader demux thread per connection,
//! with replies routed to callers by correlation id.

use std::collections::HashMap;
use std::io::{self, BufReader, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::{Arc as StdArc, Mutex};
use std::time::Duration;

use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::Arc;
use uuidp_core::lockorder;

use crate::error::{broken, ErrorClass};
use crate::frame::{read_frame, write_frame, FrameBody, VERSION};
use crate::{Lease, Summary};

/// Connection-shaping knobs for [`Client::connect_with`].
///
/// The defaults reproduce the historical behavior on the request path
/// (block until the demux answers) but bound the *handshake*: a peer
/// that accepts the TCP connection and then never speaks can stall the
/// dial, and nothing legitimate takes the server 10 s to say hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOptions {
    /// Bound on establishing the TCP connection (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Bound on the `Hello`/`HelloOk` exchange (`None` = wait forever).
    pub handshake_timeout: Option<Duration>,
    /// Bound on each request's reply (`None` = wait forever). A timed
    /// out lease is **lease-in-doubt**: the server may have issued it.
    pub request_timeout: Option<Duration>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: None,
            handshake_timeout: Some(Duration::from_secs(10)),
            request_timeout: None,
        }
    }
}

/// A reply as the demux delivers it: the typed body, or the text of a
/// correlated server `Error` frame.
type Reply = Result<FrameBody, String>;

/// Either the live map of waiting requests, or the reason the
/// connection died (every later request fails fast with it).
enum Pending {
    Live(HashMap<u64, SyncSender<Reply>>),
    Dead(String),
}

struct Inner {
    writer: Mutex<TcpStream>,
    pending: Mutex<Pending>,
    next_corr: AtomicU64,
    space: IdSpace,
    request_timeout: Option<Duration>,
}

impl Inner {
    /// Marks the connection dead and wakes every waiting request (their
    /// reply senders are dropped with the map).
    fn die(&self, reason: String) {
        let _order = lockorder::track("client.pending");
        let mut pending = self.pending.lock().expect("pending lock");
        if matches!(*pending, Pending::Live(_)) {
            *pending = Pending::Dead(reason);
        }
    }
}

/// The user-facing ownership layer: the reader thread holds its own
/// `Arc<Inner>`, so `Inner`'s refcount alone can never tell when the
/// *callers* are gone — this wrapper can. When the last [`Client`]
/// clone drops, the socket is shut down, which unblocks the reader and
/// lets the whole connection wind down (the server sees EOF, like a v1
/// `quit`).
struct Handle {
    inner: StdArc<Inner>,
}

impl Drop for Handle {
    fn drop(&mut self) {
        {
            let _order = lockorder::track("client.writer");
            if let Ok(writer) = self.inner.writer.lock() {
                let _ = writer.shutdown(std::net::Shutdown::Both);
            }
        }
        self.inner.die("client dropped".into());
    }
}

/// A connection to a v2-speaking `TcpServer`, shared by cloning.
///
/// Every method is `&self` and thread-safe: clones (and threads) issue
/// requests concurrently over the one underlying connection, each
/// parked on its own correlation id until the reader demux thread
/// delivers its reply. Dropping the last clone closes the connection
/// (the server sees EOF, like a v1 `quit`).
#[derive(Clone)]
pub struct Client {
    handle: StdArc<Handle>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("space", &self.handle.inner.space)
            .finish_non_exhaustive()
    }
}

fn proto_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connects to `addr` and performs the v2 handshake. `space` must
    /// match the server's universe — unlike v1, the handshake checks
    /// this up front and fails with a typed error on mismatch.
    pub fn connect<A: ToSocketAddrs>(addr: A, space: IdSpace) -> io::Result<Client> {
        Client::connect_with(addr, space, ClientOptions::default())
    }

    /// [`Client::connect`] with explicit connect / handshake / request
    /// timeouts — the chaos-tolerant dial.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        space: IdSpace,
        options: ClientOptions,
    ) -> io::Result<Client> {
        let mut stream = match options.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(bound) => {
                // `connect_timeout` needs resolved addresses; try each.
                let mut last = None;
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, bound) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match connected {
                    Some(s) => s,
                    None => {
                        return Err(last.unwrap_or_else(|| {
                            io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses")
                        }))
                    }
                }
            }
        };
        // Frames are small and latency-bound; never batch them behind
        // Nagle (pairs with the server-side set_nodelay).
        stream.set_nodelay(true)?;
        write_frame(
            &mut stream,
            0,
            &FrameBody::Hello {
                version: VERSION,
                space: space.size(),
            },
        )?;
        // The handshake is the one synchronous read on the caller's
        // thread; after it, the reader demux owns the read half. A
        // stalled accept/hello must not hang the caller forever, so
        // the read is bounded while the handshake lasts.
        stream.set_read_timeout(options.handshake_timeout)?;
        let hello = read_frame(&mut stream).map_err(|e| {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                broken("handshake timed out", ErrorClass::RetrySafe)
            } else {
                e
            }
        })?;
        stream.set_read_timeout(None)?;
        match hello.body {
            FrameBody::HelloOk { version, space: m } => {
                if version != VERSION {
                    return Err(proto_err(format!(
                        "server negotiated unsupported protocol version {version}"
                    )));
                }
                if m != space.size() {
                    return Err(proto_err(format!(
                        "server universe is {m}, client was built for {}",
                        space.size()
                    )));
                }
            }
            FrameBody::Error { message } => {
                return Err(proto_err(format!("server rejected handshake: {message}")))
            }
            other => {
                return Err(proto_err(format!(
                    "expected hello-ok, got {} frame",
                    other.name()
                )))
            }
        }
        let inner = StdArc::new(Inner {
            writer: Mutex::new(stream.try_clone()?),
            pending: Mutex::new(Pending::Live(HashMap::new())),
            next_corr: AtomicU64::new(1),
            space,
            request_timeout: options.request_timeout,
        });
        let reader_inner = StdArc::clone(&inner);
        std::thread::spawn(move || reader_demux(stream, reader_inner));
        Ok(Client {
            handle: StdArc::new(Handle { inner }),
        })
    }

    /// The universe this client types arcs over.
    pub fn space(&self) -> IdSpace {
        self.handle.inner.space
    }

    /// Registers a fresh correlation id and its reply slot. Fails fast
    /// if the connection already died.
    fn register(&self) -> io::Result<(u64, std::sync::mpsc::Receiver<Reply>)> {
        let corr = self.handle.inner.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = sync_channel(1);
        let _order = lockorder::track("client.pending");
        match &mut *self.handle.inner.pending.lock().expect("pending lock") {
            Pending::Live(map) => {
                map.insert(corr, tx);
            }
            // Dead before the request ever left: plainly retry-safe.
            Pending::Dead(reason) => return Err(broken(reason.clone(), ErrorClass::RetrySafe)),
        }
        Ok((corr, rx))
    }

    /// Forgets a registered correlation id (timed-out request): any
    /// late reply is dropped on the floor by the demux.
    fn unregister(&self, corr: u64) {
        let _order = lockorder::track("client.pending");
        if let Pending::Live(map) = &mut *self.handle.inner.pending.lock().expect("pending lock") {
            map.remove(&corr);
        }
    }

    /// Writes one request frame (whole frame, one `write_all`, under
    /// the writer lock — frames from concurrent clones never interleave
    /// mid-frame).
    fn send(&self, corr: u64, body: &FrameBody) -> io::Result<()> {
        let result = {
            let _order = lockorder::track("client.writer");
            let mut writer = self.handle.inner.writer.lock().expect("writer lock");
            // lint:allow(lock-blocking): holding the writer lock across this one write_all is the mechanism that keeps concurrent clones' frames from interleaving mid-frame; the reader demux never takes this lock
            write_frame(&mut *writer, corr, body)
        };
        match result {
            Ok(()) => Ok(()),
            Err(e) => {
                self.handle.inner.die(format!("write failed: {e}"));
                // A failed `write_all` means the frame went out torn at
                // best; the server's checksum discards it unprocessed.
                Err(broken(format!("write failed: {e}"), ErrorClass::RetrySafe))
            }
        }
    }

    /// One multiplexed round trip: register, send, park until the demux
    /// delivers this correlation id's reply.
    fn request(&self, body: FrameBody) -> io::Result<FrameBody> {
        self.request_with_corr(body).map(|(body, _)| body)
    }

    /// [`Client::request`], also surfacing the correlation id the
    /// request traveled under — the handle tail-latency samplers keep
    /// so a slow lease's span can be fetched back later.
    fn request_with_corr(&self, body: FrameBody) -> io::Result<(FrameBody, u64)> {
        let (corr, rx) = self.register()?;
        self.send(corr, &body)?;
        let received = match self.handle.inner.request_timeout {
            None => rx.recv().map_err(|_| None),
            Some(bound) => match rx.recv_timeout(bound) {
                Ok(reply) => Ok(reply),
                Err(RecvTimeoutError::Disconnected) => Err(None),
                Err(RecvTimeoutError::Timeout) => {
                    self.unregister(corr);
                    Err(Some(bound))
                }
            },
        };
        match received {
            Ok(Ok(reply)) => Ok((reply, corr)),
            Ok(Err(message)) => Err(proto_err(format!("server error: {message}"))),
            // The request left the building, the reply never arrived:
            // whether it timed out or the reader died (EOF, sever,
            // corrupt stream), the server may have processed it.
            Err(Some(bound)) => Err(broken(
                format!("request timed out after {bound:?}"),
                ErrorClass::LeaseInDoubt,
            )),
            Err(None) => {
                let reason = {
                    let _order = lockorder::track("client.pending");
                    match &*self.handle.inner.pending.lock().expect("pending lock") {
                        Pending::Dead(reason) => reason.clone(),
                        Pending::Live(_) => "reply channel dropped".into(),
                    }
                };
                Err(broken(reason, ErrorClass::LeaseInDoubt))
            }
        }
    }

    /// Leases `count` IDs for `tenant`.
    pub fn lease(&self, tenant: u64, count: u128) -> io::Result<Lease> {
        self.lease_with_corr(tenant, count).map(|(lease, _)| lease)
    }

    /// [`Client::lease`], also returning the correlation id the lease
    /// traveled under, so a tail sampler can later ask the server for
    /// this exact request's span via [`Client::timeline`].
    pub fn lease_with_corr(&self, tenant: u64, count: u128) -> io::Result<(Lease, u64)> {
        let (reply, corr) = self.request_with_corr(FrameBody::LeaseReq { tenant, count })?;
        match reply {
            FrameBody::LeaseResp {
                tenant,
                granted,
                arcs,
                error,
            } => {
                let space = self.handle.inner.space;
                let mut typed = Vec::with_capacity(arcs.len());
                for (start, len) in arcs {
                    // Validate before constructing: `Arc::new` asserts,
                    // and a server/universe mismatch must surface as an
                    // error, not a panic.
                    if start >= space.size() || len < 1 || len > space.size() {
                        return Err(proto_err(format!(
                            "arc {start}+{len} does not fit universe {space}"
                        )));
                    }
                    typed.push(Arc::new(space, Id(start), len));
                }
                Ok((
                    Lease {
                        tenant,
                        granted,
                        arcs: typed,
                        error,
                    },
                    corr,
                ))
            }
            other => Err(proto_err(format!(
                "expected lease-resp, got {} frame",
                other.name()
            ))),
        }
    }

    /// Recycles `tenant`'s generator into a fresh epoch.
    pub fn reset(&self, tenant: u64) -> io::Result<()> {
        match self.request(FrameBody::ResetReq { tenant })? {
            FrameBody::ResetResp { tenant: echoed } if echoed == tenant => Ok(()),
            other => Err(proto_err(format!(
                "expected reset-resp for tenant {tenant}, got {} frame",
                other.name()
            ))),
        }
    }

    /// Blocks until the server has processed every request submitted
    /// before this one (across all connections and clones).
    pub fn drain(&self) -> io::Result<()> {
        match self.request(FrameBody::DrainReq)? {
            FrameBody::DrainResp => Ok(()),
            other => Err(proto_err(format!(
                "expected drain-resp, got {} frame",
                other.name()
            ))),
        }
    }

    /// A live service summary: totals as of every request processed so
    /// far, without stopping anything. (v1 only ever reports totals as
    /// the service's dying words.)
    pub fn summary(&self) -> io::Result<Summary> {
        match self.request(FrameBody::SummaryReq)? {
            FrameBody::SummaryResp(summary) => Ok(summary),
            other => Err(proto_err(format!(
                "expected summary-resp, got {} frame",
                other.name()
            ))),
        }
    }

    /// A live metrics scrape: the server's observability registry as a
    /// Prometheus-style text exposition (the same families the v1
    /// `metrics` command renders). Parse scalars back out with
    /// `uuidp_obs::parse_exposition`.
    pub fn metrics(&self) -> io::Result<String> {
        match self.request(FrameBody::MetricsReq)? {
            FrameBody::MetricsResp { text } => Ok(text),
            other => Err(proto_err(format!(
                "expected metrics-resp, got {} frame",
                other.name()
            ))),
        }
    }

    /// The server's retained trace span for one correlation id (a prior
    /// lease's `lease_with_corr` handle), rendered as a causal
    /// timeline. Empty string when the server's trace ring no longer
    /// retains (or never sampled) that span.
    pub fn timeline(&self, corr: u64) -> io::Result<String> {
        match self.request(FrameBody::TimelineReq { corr })? {
            FrameBody::TimelineResp { text } => Ok(text),
            other => Err(proto_err(format!(
                "expected timeline-resp, got {} frame",
                other.name()
            ))),
        }
    }

    /// Stops the whole server and returns its final summary. Sibling
    /// clones and connections are severed.
    pub fn shutdown(self) -> io::Result<Summary> {
        match self.request(FrameBody::ShutdownReq)? {
            FrameBody::SummaryResp(summary) => Ok(summary),
            other => Err(proto_err(format!(
                "expected summary-resp, got {} frame",
                other.name()
            ))),
        }
    }

    /// Kills the server abruptly — the remote crash lever. No summary
    /// comes back; success is the connection dying under us. What
    /// survives on the server is whatever its durability layer
    /// persisted write-ahead.
    pub fn halt(self) -> io::Result<()> {
        let (_corr, rx) = self.register()?;
        // HaltReq itself is uncorrelated (there is no reply to route);
        // the registered id just parks us until the demux observes the
        // connection die.
        self.send(0, &FrameBody::HaltReq)?;
        match rx.recv() {
            Err(_) => Ok(()), // severed, as intended
            Ok(Ok(other)) => Err(proto_err(format!(
                "halt expected silence, got {} frame",
                other.name()
            ))),
            Ok(Err(message)) => Err(proto_err(format!("server error: {message}"))),
        }
    }
}

/// The reader demux: decodes frames off the read half and hands each to
/// the request that registered its correlation id. Runs until EOF or a
/// fatal stream error, then wakes everyone with the reason.
fn reader_demux(stream: TcpStream, inner: StdArc<Inner>) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame_reason(&mut reader) {
            Ok(frame) => {
                if frame.corr == 0 {
                    // Connection-level error (or stray chatter): fatal.
                    let reason = match frame.body {
                        FrameBody::Error { message } => message,
                        other => format!("unexpected uncorrelated {} frame", other.name()),
                    };
                    inner.die(reason);
                    return;
                }
                // Scoped so the guard is gone before the reply send: a
                // match-scrutinee temporary would live across the send,
                // and the waiter being woken may touch `pending` itself.
                let slot = {
                    let _order = lockorder::track("client.pending");
                    let mut pending = inner.pending.lock().expect("pending lock");
                    match &mut *pending {
                        Pending::Live(map) => map.remove(&frame.corr),
                        Pending::Dead(_) => return,
                    }
                };
                if let Some(tx) = slot {
                    let reply = match frame.body {
                        FrameBody::Error { message } => Err(message),
                        body => Ok(body),
                    };
                    let _ = tx.send(reply);
                }
                // No waiter: a reply for a request the caller gave up
                // on — dropped on the floor by design.
            }
            Err(reason) => {
                inner.die(reason);
                return;
            }
        }
    }
}

/// [`read_frame`] with the error folded to the demux's reason string.
fn read_frame_reason(r: &mut impl Read) -> Result<crate::frame::Frame, String> {
    read_frame(r).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            "server closed the connection".into()
        } else {
            e.to_string()
        }
    })
}
