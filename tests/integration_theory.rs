//! Theory ↔ simulation integration: measured collision probabilities must
//! match the exact formulas where they exist, and stay within Θ-bands of
//! the paper's bounds elsewhere.

use uuidp_adversary::profile::DemandProfile;
use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::IdSpace;
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};

use uuidp_analysis::exact::{bins_exact, cluster_enumerated, cluster_pair, random_exact};
use uuidp_analysis::theory;

fn close(measured: f64, exact: f64, rel: f64) -> bool {
    (measured - exact).abs() <= rel * exact.max(1e-9)
}

#[test]
fn cluster_pairs_match_the_exact_formula() {
    let m = 1u128 << 12;
    let space = IdSpace::new(m).unwrap();
    let alg = AlgorithmKind::Cluster.build(space);
    for (d1, d2) in [(1u128, 1u128), (16, 16), (100, 5), (256, 256)] {
        let profile = DemandProfile::pair(d1, d2);
        let exact = cluster_pair(d1, d2, m);
        let trials = ((300.0 / exact) as u64).clamp(10_000, 400_000);
        let (est, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(trials, 1));
        assert!(
            close(est.p_hat, exact, 0.15),
            "({d1},{d2}): measured {} vs exact {exact}",
            est.p_hat
        );
    }
}

#[test]
fn cluster_three_instances_match_enumeration() {
    let m = 128u128;
    let space = IdSpace::new(m).unwrap();
    let alg = AlgorithmKind::Cluster.build(space);
    let profile = DemandProfile::new(vec![5, 9, 3]);
    let exact = cluster_enumerated(&profile, m);
    let (est, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(200_000, 2));
    assert!(
        close(est.p_hat, exact, 0.08),
        "measured {} vs enumerated {exact}",
        est.p_hat
    );
}

#[test]
fn random_matches_disjoint_subset_counting() {
    let m = 1u128 << 10;
    let space = IdSpace::new(m).unwrap();
    let alg = AlgorithmKind::Random.build(space);
    for demands in [vec![8u128, 8], vec![16, 4, 4], vec![1, 1, 1, 1, 1]] {
        let profile = DemandProfile::new(demands.clone());
        let exact = random_exact(&profile, m);
        let trials = ((300.0 / exact) as u64).clamp(10_000, 600_000);
        let (est, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(trials, 3));
        assert!(
            close(est.p_hat, exact, 0.15),
            "{demands:?}: measured {} vs exact {exact}",
            est.p_hat
        );
    }
}

#[test]
fn bins_matches_disjoint_bin_counting() {
    let m = 1u128 << 12;
    let space = IdSpace::new(m).unwrap();
    for k in [4u128, 16, 64] {
        let alg = AlgorithmKind::Bins { k }.build(space);
        for demands in [vec![32u128, 32], vec![100, 10, 1]] {
            let profile = DemandProfile::new(demands.clone());
            let exact = bins_exact(&profile, k, m);
            let trials = ((300.0 / exact) as u64).clamp(10_000, 400_000);
            let (est, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(trials, 4));
            assert!(
                close(est.p_hat, exact, 0.15),
                "k={k} {demands:?}: measured {} vs exact {exact}",
                est.p_hat
            );
        }
    }
}

#[test]
fn theta_bounds_bracket_measurements_for_the_whole_suite() {
    // Every algorithm's measurement must land within a generous constant
    // of its Θ-expression on a reference profile.
    let m = 1u128 << 14;
    let space = IdSpace::new(m).unwrap();
    let profile = DemandProfile::uniform(4, 64);
    let cases: Vec<(AlgorithmKind, f64)> = vec![
        (AlgorithmKind::Random, theory::random(&profile, m)),
        (AlgorithmKind::Cluster, theory::cluster(&profile, m)),
        (AlgorithmKind::Bins { k: 64 }, theory::bins(&profile, 64, m)),
    ];
    for (kind, theta) in cases {
        let alg = kind.build(space);
        let (est, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(60_000, 5));
        let ratio = est.p_hat / theta;
        assert!(
            (0.1..=3.0).contains(&ratio),
            "{}: measured {} vs theta {theta} (ratio {ratio})",
            alg.name(),
            est.p_hat
        );
    }
}

#[test]
fn uniform_profile_optimality_ordering() {
    // Lemma 16: on (h,…,h), Bins(h) beats every other algorithm we have.
    let m = 1u128 << 14;
    let space = IdSpace::new(m).unwrap();
    let h = 64u128;
    let profile = DemandProfile::uniform(4, h);
    let optimal = AlgorithmKind::Bins { k: h }.build(space);
    let (best, _) = estimate_oblivious(optimal.as_ref(), &profile, TrialConfig::new(120_000, 6));
    for kind in [
        AlgorithmKind::Random,
        AlgorithmKind::Cluster,
        AlgorithmKind::Bins { k: 4 },
        AlgorithmKind::ClusterStar,
        AlgorithmKind::BinsStar,
    ] {
        let alg = kind.build(space);
        let (est, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(120_000, 6));
        assert!(
            est.p_hat >= best.p_hat * 0.8,
            "{} measured {} below the optimum {} — contradicts Lemma 16",
            alg.name(),
            est.p_hat,
            best.p_hat
        );
    }
}
