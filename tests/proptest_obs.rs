//! Property tests for the observability core: the mergeability
//! invariants the registry's constant-memory design rests on.
//!
//! * **Histogram merge is order-invariant** — per-shard histograms
//!   merged in any order, or built from any interleaving of the same
//!   samples, land on bit-identical buckets, counts, sums, and maxima.
//!   This is what makes per-shard recording legal: the exported totals
//!   cannot depend on thread scheduling.
//! * **Exposition round-trips** — every scalar a snapshot renders is
//!   recovered exactly by `parse_exposition`, so scrapers see the
//!   registry's true values, not an approximation.

use proptest::prelude::*;
use uuidp::obs::{parse_exposition, Histogram, Registry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_merge_is_order_invariant(
        samples in prop::collection::vec(any::<u64>(), 1..200),
        cut_pick in any::<u32>(),
    ) {
        // One histogram fed everything in order...
        let mut serial = Histogram::new();
        for &s in &samples {
            serial.record_ns(s);
        }
        // ...versus two shards fed a split of the same samples, merged
        // in both orders.
        let cut = cut_pick as usize % (samples.len() + 1);
        let (left, right) = samples.split_at(cut);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &s in left {
            a.record_ns(s);
        }
        for &s in right {
            b.record_ns(s);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        for merged in [&ab, &ba] {
            prop_assert_eq!(merged.buckets(), serial.buckets());
            prop_assert_eq!(merged.count(), serial.count());
            prop_assert_eq!(merged.sum_ns(), serial.sum_ns());
            prop_assert_eq!(merged.max_ns(), serial.max_ns());
        }
    }

    #[test]
    fn interleaving_never_changes_the_merged_totals(
        samples in prop::collection::vec(any::<u64>(), 1..100),
        lanes in prop::collection::vec(any::<u32>(), 1..100),
    ) {
        // Deal the same sample stream across four lanes two different
        // ways: by the fuzzed lane schedule, and round-robin. The
        // merged result must not notice.
        let deal = |assign: &dyn Fn(usize) -> usize| {
            let mut shards = [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ];
            for (i, &s) in samples.iter().enumerate() {
                shards[assign(i)].record_ns(s);
            }
            let mut total = Histogram::new();
            for shard in &shards {
                total.merge(shard);
            }
            total
        };
        let fuzzed = deal(&|i| lanes[i % lanes.len()] as usize % 4);
        let round_robin = deal(&|i| i % 4);
        prop_assert_eq!(fuzzed.buckets(), round_robin.buckets());
        prop_assert_eq!(fuzzed.count(), round_robin.count());
        prop_assert_eq!(fuzzed.sum_ns(), round_robin.sum_ns());
        prop_assert_eq!(fuzzed.max_ns(), round_robin.max_ns());
    }

    #[test]
    fn exposition_round_trips_every_scalar(
        counts in prop::collection::vec(any::<u32>(), 1..6),
        gauge_raw in any::<u32>(),
        latencies in prop::collection::vec(any::<u32>(), 0..50),
    ) {
        let registry = Registry::new();
        for (i, &n) in counts.iter().enumerate() {
            registry.counter(&format!("uuidp_test_c{i}_total")).add(n as u64);
        }
        // Centered so negative gauge values get exercised too.
        let gauge = gauge_raw as i64 - i64::from(u32::MAX / 2);
        registry.gauge("uuidp_test_depth").set(gauge);
        let hist = registry.histogram("uuidp_test_latency_ns");
        for &ns in &latencies {
            hist.record_ns(ns as u64);
        }

        let snapshot = registry.snapshot();
        let families = parse_exposition(&snapshot.render_prometheus());
        for (i, &n) in counts.iter().enumerate() {
            prop_assert_eq!(families[&format!("uuidp_test_c{i}_total")], n as f64);
        }
        prop_assert_eq!(families["uuidp_test_depth"], gauge as f64);
        prop_assert_eq!(
            families["uuidp_test_latency_ns_count"],
            latencies.len() as f64
        );
        let sum: u128 = latencies.iter().map(|&n| n as u128).sum();
        prop_assert_eq!(families["uuidp_test_latency_ns_sum"], sum as f64);
    }
}
