//! Property tests for the observability core: the mergeability
//! invariants the registry's constant-memory design rests on.
//!
//! * **Histogram merge is order-invariant** — per-shard histograms
//!   merged in any order, or built from any interleaving of the same
//!   samples, land on bit-identical buckets, counts, sums, and maxima.
//!   This is what makes per-shard recording legal: the exported totals
//!   cannot depend on thread scheduling.
//! * **Exposition round-trips** — every scalar a snapshot renders is
//!   recovered exactly by `parse_exposition`, so scrapers see the
//!   registry's true values, not an approximation.
//! * **Window merge is order- and interleaving-invariant** — cluster
//!   assembly over per-node windows cannot depend on scrape order.
//! * **Counter resets never produce a negative rate** — a restarted
//!   node's fresh-from-zero counters dip the windowed rate, they never
//!   invert it, no matter where in the sample stream the restarts land.

use std::collections::BTreeMap;

use proptest::prelude::*;
use uuidp::obs::{
    parse_exposition, Histogram, MetricValue, Registry, Snapshot, TimeSeries, Window,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_merge_is_order_invariant(
        samples in prop::collection::vec(any::<u64>(), 1..200),
        cut_pick in any::<u32>(),
    ) {
        // One histogram fed everything in order...
        let mut serial = Histogram::new();
        for &s in &samples {
            serial.record_ns(s);
        }
        // ...versus two shards fed a split of the same samples, merged
        // in both orders.
        let cut = cut_pick as usize % (samples.len() + 1);
        let (left, right) = samples.split_at(cut);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &s in left {
            a.record_ns(s);
        }
        for &s in right {
            b.record_ns(s);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        for merged in [&ab, &ba] {
            prop_assert_eq!(merged.buckets(), serial.buckets());
            prop_assert_eq!(merged.count(), serial.count());
            prop_assert_eq!(merged.sum_ns(), serial.sum_ns());
            prop_assert_eq!(merged.max_ns(), serial.max_ns());
        }
    }

    #[test]
    fn interleaving_never_changes_the_merged_totals(
        samples in prop::collection::vec(any::<u64>(), 1..100),
        lanes in prop::collection::vec(any::<u32>(), 1..100),
    ) {
        // Deal the same sample stream across four lanes two different
        // ways: by the fuzzed lane schedule, and round-robin. The
        // merged result must not notice.
        let deal = |assign: &dyn Fn(usize) -> usize| {
            let mut shards = [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ];
            for (i, &s) in samples.iter().enumerate() {
                shards[assign(i)].record_ns(s);
            }
            let mut total = Histogram::new();
            for shard in &shards {
                total.merge(shard);
            }
            total
        };
        let fuzzed = deal(&|i| lanes[i % lanes.len()] as usize % 4);
        let round_robin = deal(&|i| i % 4);
        prop_assert_eq!(fuzzed.buckets(), round_robin.buckets());
        prop_assert_eq!(fuzzed.count(), round_robin.count());
        prop_assert_eq!(fuzzed.sum_ns(), round_robin.sum_ns());
        prop_assert_eq!(fuzzed.max_ns(), round_robin.max_ns());
    }

    #[test]
    fn exposition_round_trips_every_scalar(
        counts in prop::collection::vec(any::<u32>(), 1..6),
        gauge_raw in any::<u32>(),
        latencies in prop::collection::vec(any::<u32>(), 0..50),
    ) {
        let registry = Registry::new();
        for (i, &n) in counts.iter().enumerate() {
            registry.counter(&format!("uuidp_test_c{i}_total")).add(n as u64);
        }
        // Centered so negative gauge values get exercised too.
        let gauge = gauge_raw as i64 - i64::from(u32::MAX / 2);
        registry.gauge("uuidp_test_depth").set(gauge);
        let hist = registry.histogram("uuidp_test_latency_ns");
        for &ns in &latencies {
            hist.record_ns(ns as u64);
        }

        let snapshot = registry.snapshot();
        let families = parse_exposition(&snapshot.render_prometheus());
        for (i, &n) in counts.iter().enumerate() {
            prop_assert_eq!(families[&format!("uuidp_test_c{i}_total")], n as f64);
        }
        prop_assert_eq!(families["uuidp_test_depth"], gauge as f64);
        prop_assert_eq!(
            families["uuidp_test_latency_ns_count"],
            latencies.len() as f64
        );
        let sum: u128 = latencies.iter().map(|&n| n as u128).sum();
        prop_assert_eq!(families["uuidp_test_latency_ns_sum"], sum as f64);
    }

    #[test]
    fn window_merge_is_order_and_interleaving_invariant(
        counters in prop::collection::vec((0u8..4, any::<u32>()), 1..40),
        gauges in prop::collection::vec((0u8..4, any::<u32>()), 0..20),
        latencies in prop::collection::vec((0u8..3, any::<u32>()), 0..40),
        order in prop::collection::vec(any::<u32>(), 1..8),
    ) {
        // Build N per-node windows from fuzzed shares of the same
        // families, then merge them in two different orders: sorted and
        // a fuzz-driven permutation. Cluster assembly must not notice.
        let nodes = 4usize;
        let mut per_node = vec![Window::new(7); nodes];
        for (i, &(node, v)) in counters.iter().enumerate() {
            *per_node[node as usize]
                .counters
                .entry(format!("uuidp_c{}_total", i % 3))
                .or_insert(0) += v as u64;
        }
        for (i, &(node, v)) in gauges.iter().enumerate() {
            // Centered so negative gauge contributions get exercised.
            *per_node[node as usize]
                .gauges
                .entry(format!("uuidp_g{}", i % 2))
                .or_insert(0) += v as i64 - i64::from(u32::MAX / 2);
        }
        for &(node, ns) in &latencies {
            per_node[node as usize]
                .histograms
                .entry("uuidp_lat_ns".into())
                .or_default()
                .record_ns(ns as u64);
        }
        let merge_in = |indices: &[usize]| {
            let mut cluster = Window::new(7);
            for &i in indices {
                cluster.merge(&per_node[i]);
            }
            cluster
        };
        let sorted: Vec<usize> = (0..nodes).collect();
        // A fuzzed permutation: repeatedly pick from the remainder.
        let mut rest: Vec<usize> = (0..nodes).collect();
        let mut permuted = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let pick = order[i % order.len()] as usize % rest.len();
            permuted.push(rest.remove(pick));
        }
        prop_assert_eq!(merge_in(&sorted), merge_in(&permuted));
    }

    #[test]
    fn counter_resets_across_restarts_never_yield_a_negative_rate(
        deltas in prop::collection::vec(0u64..65_536, 2..60),
        restarts in prop::collection::vec(any::<u32>(), 0..6),
    ) {
        // A cumulative counter grows by fuzzed deltas; injected
        // restarts snap it back to zero mid-stream. The ingested
        // per-window deltas must equal what the process really counted
        // since the previous sample — fresh-from-zero after a restart —
        // and the windowed rate must never go negative (it cannot even
        // be expressed: deltas are u64 by construction, so the property
        // pins the clamp's *accounting*, not just its sign).
        let restart_at: Vec<usize> =
            restarts.iter().map(|&r| r as usize % deltas.len()).collect();
        let mut series = TimeSeries::new(1, deltas.len() + 1);
        let mut cumulative = 0u64;
        let mut prev_sample = 0u64;
        let mut expected = Vec::with_capacity(deltas.len());
        let mut detectable_resets = 0u64;
        for (tick, &d) in deltas.iter().enumerate() {
            if restart_at.contains(&tick) {
                cumulative = 0; // the restarted node's registry is fresh
            }
            cumulative += d;
            // What any scraper of cumulative counters *can* know: a
            // regression is a reset (delta = the whole fresh reading);
            // a restart whose new value already passed the old one is
            // indistinguishable from normal growth.
            let want = if cumulative < prev_sample {
                detectable_resets += 1;
                cumulative
            } else {
                cumulative - prev_sample
            };
            prev_sample = cumulative;
            expected.push(want);
            let mut metrics = BTreeMap::new();
            metrics.insert(
                "uuidp_ids_issued_total".to_string(),
                MetricValue::Counter(cumulative),
            );
            series.ingest(tick as u64, &Snapshot { metrics });
            prop_assert!(series.rate("uuidp_ids_issued_total", 1) >= 0.0);
        }
        for (tick, want) in expected.iter().enumerate() {
            let got = series
                .window_at(tick as u64)
                .map(|w| w.counter("uuidp_ids_issued_total"))
                .unwrap_or(0);
            prop_assert_eq!(got, *want, "window {}", tick);
        }
        prop_assert_eq!(series.resets_total(), detectable_resets);
    }
}
