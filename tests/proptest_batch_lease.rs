//! Differential property tests for the batch-lease API.
//!
//! The service layer's whole correctness story rests on one contract:
//! `next_ids(k)` is **observationally identical** to `k` consecutive
//! `next_id()` calls — the same IDs in the same order (arcs expand to the
//! scalar stream), the same footprint, the same post-state (snapshot and
//! continuation), and the same error at the same position. These tests
//! enforce it for every algorithm in the suite under randomized batch
//! schedules, exactly the way the PR 1 reset tests enforce the generator
//! recycling contract.

use proptest::prelude::*;

use uuidp_core::algorithms::{AlgorithmKind, SessionCounter, Snowflake, SnowflakeConfig};
use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::Arc;
use uuidp_core::lease::Lease;
use uuidp_core::traits::{Algorithm, Footprint, IdGenerator};

fn suite(space: IdSpace) -> Vec<Box<dyn Algorithm>> {
    vec![
        AlgorithmKind::Random.build(space),
        AlgorithmKind::Cluster.build(space),
        AlgorithmKind::Bins { k: 32 }.build(space),
        AlgorithmKind::ClusterStar.build(space),
        AlgorithmKind::BinsStar.build(space),
        AlgorithmKind::BinsStarMaxFit.build(space),
        AlgorithmKind::SetAside { i: 6, j: 40 }.build(space),
        Box::new(SessionCounter::new(9, 5)),
        Box::new(Snowflake::new(SnowflakeConfig {
            timestamp_bits: 10,
            worker_bits: 5,
            sequence_bits: 5,
            requests_per_tick: 4,
            max_skew_ticks: 4,
        })),
    ]
}

/// Expands emitted arcs to the scalar ID stream.
fn expand(space: IdSpace, arcs: &[Arc]) -> Vec<Id> {
    arcs.iter()
        .flat_map(|a| (0..a.len).map(move |i| a.nth(space, i)))
        .collect()
}

/// Asserts batched and scalar generators are observationally equal:
/// same counters, same snapshots, same footprints as sets.
fn assert_same_state(a: &mut dyn IdGenerator, b: &mut dyn IdGenerator, context: &str) {
    assert_eq!(a.generated(), b.generated(), "{context}: generated differs");
    assert_eq!(a.snapshot(), b.snapshot(), "{context}: snapshot differs");
    match (a.footprint(), b.footprint()) {
        (Footprint::Arcs(sa), Footprint::Arcs(sb)) => {
            assert_eq!(sa.measure(), sb.measure(), "{context}: measure differs");
            assert_eq!(
                sa.intersection_measure_set(sb),
                sa.measure(),
                "{context}: footprints differ as sets"
            );
        }
        (Footprint::Points(pa), Footprint::Points(pb)) => {
            assert_eq!(pa, pb, "{context}: point footprints differ");
        }
        _ => panic!("{context}: footprint kinds differ"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn next_ids_is_observationally_k_scalar_calls(
        seed in any::<u64>(),
        batches in prop::collection::vec(1u128..70, 1..8),
    ) {
        let space = IdSpace::new(1 << 16).unwrap();
        for alg in suite(space) {
            let name = alg.name();
            let mut batched = alg.spawn(seed);
            let mut scalar = alg.spawn(seed);
            for (step, &k) in batches.iter().enumerate() {
                let ctx = format!("{name} seed {seed} step {step} k {k}");
                let mut arcs = Vec::new();
                let lease_err = batched.next_ids(k, &mut |a| arcs.push(a)).err();
                let mut ids = Vec::new();
                let mut scalar_err = None;
                for _ in 0..k {
                    match scalar.next_id() {
                        Ok(id) => ids.push(id),
                        Err(e) => { scalar_err = Some(e); break; }
                    }
                }
                // Same IDs in the same order, same error at the same spot.
                prop_assert_eq!(
                    expand(batched.space(), &arcs), ids, "{}: stream", &ctx
                );
                prop_assert_eq!(lease_err.clone(), scalar_err, "{}: error", &ctx);
                assert_same_state(batched.as_mut(), scalar.as_mut(), &ctx);
                if lease_err.is_some() {
                    break; // exhausted: both streams ended identically
                }
            }
            // Post-state continuation: the next scalar draw agrees.
            match (batched.next_id(), scalar.next_id()) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{}: continuation", name),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("{name}: continuation diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn interleaved_leases_skips_and_scalars_agree(
        seed in any::<u64>(),
        ops in prop::collection::vec((0u8..3, 1u128..48), 1..10),
    ) {
        // next_ids composes with skip and next_id in any interleaving.
        let space = IdSpace::new(1 << 14).unwrap();
        for alg in suite(space) {
            let name = alg.name();
            let mut mixed = alg.spawn(seed);
            let mut scalar = alg.spawn(seed);
            'ops: for (step, &(op, k)) in ops.iter().enumerate() {
                let ctx = format!("{name} seed {seed} step {step} op {op} k {k}");
                let result = match op {
                    0 => mixed.next_ids(k, &mut |_| {}).err(),
                    1 => mixed.skip(k).err(),
                    _ => {
                        let mut err = None;
                        for _ in 0..k {
                            if let Err(e) = mixed.next_id() {
                                err = Some(e);
                                break;
                            }
                        }
                        err
                    }
                };
                let mut scalar_err = None;
                for _ in 0..k {
                    if let Err(e) = scalar.next_id() {
                        scalar_err = Some(e);
                        break;
                    }
                }
                // `skip` reports exhaustion with different intermediate
                // advancement for some algorithms; compare only the
                // non-exhausted prefix behaviour strictly.
                if result.is_some() || scalar_err.is_some() {
                    prop_assert_eq!(result.is_some(), scalar_err.is_some(), "{}", &ctx);
                    break 'ops;
                }
                assert_same_state(mixed.as_mut(), scalar.as_mut(), &ctx);
            }
        }
    }

    #[test]
    fn lease_buffer_pops_the_exact_stream(
        seed in any::<u64>(),
        batches in prop::collection::vec(1u128..40, 1..6),
    ) {
        let space = IdSpace::new(1 << 14).unwrap();
        for alg in suite(space) {
            let name = alg.name();
            let mut leased = alg.spawn(seed);
            let mut scalar = alg.spawn(seed);
            // Bit-layout algorithms carry their own universe.
            let mut lease = Lease::new(leased.space());
            'outer: for &k in &batches {
                if lease.fill(leased.as_mut(), k).is_err() {
                    break;
                }
                for i in 0..k {
                    let expected = match scalar.next_id() {
                        Ok(id) => id,
                        Err(_) => break 'outer,
                    };
                    prop_assert_eq!(
                        lease.pop(), Some(expected),
                        "{} seed {} k {} i {}", name, seed, k, i
                    );
                }
                prop_assert!(lease.is_drained());
            }
        }
    }
}
