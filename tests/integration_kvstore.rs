//! KV-store substrate integration: collisions become corruption, and only
//! collisions do.

use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::IntervalSet;
use uuidp_core::rng::SeedTree;
use uuidp_core::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};
use uuidp_kvstore::cluster::Deployment;
use uuidp_kvstore::workload::{run_workload, WorkloadConfig};

/// A pathological "algorithm" that hands every instance the same fixed
/// sequence — a collision machine for failure-injection tests.
struct ConstantStream {
    space: IdSpace,
}

struct ConstantGen {
    space: IdSpace,
    next: u128,
    emitted: IntervalSet,
}

impl Algorithm for ConstantStream {
    fn name(&self) -> String {
        "constant-stream".to_owned()
    }
    fn space(&self) -> IdSpace {
        self.space
    }
    fn spawn(&self, _seed: u64) -> Box<dyn IdGenerator> {
        Box::new(ConstantGen {
            space: self.space,
            next: 0,
            emitted: IntervalSet::new(self.space),
        })
    }
}

impl IdGenerator for ConstantGen {
    fn space(&self) -> IdSpace {
        self.space
    }
    fn next_id(&mut self) -> Result<Id, GeneratorError> {
        if self.next >= self.space.size() {
            return Err(GeneratorError::Exhausted {
                generated: self.next,
            });
        }
        let id = Id(self.next);
        self.next += 1;
        self.emitted.insert_point(id);
        Ok(id)
    }
    fn generated(&self) -> u128 {
        self.next
    }
    fn footprint(&mut self) -> Footprint<'_> {
        Footprint::Arcs(&self.emitted)
    }
    fn reset(&mut self, _seed: u64) {
        self.next = 0;
        self.emitted.clear();
    }
}

#[test]
fn forced_collisions_always_surface_as_corruption() {
    let space = IdSpace::new(1 << 20).unwrap();
    let alg = ConstantStream { space };
    let seeds = SeedTree::new(1);
    let mut dep = Deployment::new(&alg, 2, 1 << 10, &seeds);
    // Both instances create "file number 1" with unique ID 0.
    dep.flush(0, 2).unwrap();
    dep.flush(1, 2).unwrap();
    assert_eq!(dep.audit().id_collisions().len(), 1);
    // Instance 0 warms the cache; instance 1's read is served 0's data.
    assert!(dep.read(0, 0, 0));
    assert!(
        !dep.read(1, 0, 0),
        "aliased read must be detected as corrupt"
    );
    assert_eq!(dep.audit().corruptions().len(), 1);
}

#[test]
fn no_collisions_means_no_corruption_ever() {
    let space = IdSpace::with_bits(64).unwrap();
    let alg = uuidp_core::algorithms::Cluster::new(space);
    let cfg = WorkloadConfig {
        instances: 8,
        operations: 20_000,
        ..WorkloadConfig::default()
    };
    let report = run_workload(&alg, cfg, 2);
    assert_eq!(report.id_collisions, 0);
    assert_eq!(report.corrupt_reads, 0);
    assert!(report.reads > 1000);
    assert!(report.migrations > 100);
}

#[test]
fn corruption_requires_a_collision() {
    // Across many seeds and a mid-sized universe: whenever corrupt reads
    // are observed, an ID collision must also have been recorded.
    let space = IdSpace::new(1 << 12).unwrap();
    let alg = uuidp_core::algorithms::Random::new(space);
    let cfg = WorkloadConfig {
        instances: 6,
        operations: 4_000,
        ..WorkloadConfig::default()
    };
    let mut saw_corruption = false;
    for seed in 0..10u64 {
        let report = run_workload(&alg, cfg, seed);
        if report.corrupt_reads > 0 {
            saw_corruption = true;
            assert!(
                report.id_collisions > 0,
                "seed {seed}: corruption without a collision"
            );
        }
    }
    assert!(
        saw_corruption,
        "expected at least one corrupting run at m = 2^12"
    );
}

#[test]
fn restart_storms_are_safe_for_random_draw_schemes() {
    // Frequent crash-restarts multiply the effective number of
    // uncoordinated instances. With a big enough universe, Cluster
    // stays collision-free even under a restart storm; the audit keeps
    // count across the generator swaps.
    let space = IdSpace::with_bits(64).unwrap();
    let alg = uuidp_core::algorithms::Cluster::new(space);
    let seeds = SeedTree::new(77);
    let mut dep = Deployment::new(&alg, 4, 1 << 10, &seeds);
    for round in 0..50u64 {
        for i in 0..4 {
            dep.flush(i, 2).unwrap();
            dep.restart_instance(i, &alg, round * 10 + i as u64 + 1000);
            dep.flush(i, 2).unwrap();
        }
    }
    assert_eq!(dep.audit().id_collisions().len(), 0);
    assert_eq!(dep.live_files(), 400);
    // And all files still read cleanly.
    for i in 0..4 {
        assert!(dep.read(i, 0, 0));
    }
}

#[test]
fn restart_preserves_files_and_numbering() {
    let space = IdSpace::with_bits(32).unwrap();
    let alg = uuidp_core::algorithms::Cluster::new(space);
    let seeds = SeedTree::new(78);
    let mut dep = Deployment::new(&alg, 2, 64, &seeds);
    let before = dep.flush(0, 2).unwrap();
    dep.restart_instance(0, &alg, 9999);
    let after = dep.flush(0, 2).unwrap();
    // The manifest (file numbering) survives the crash; the ID stream is
    // fresh.
    assert_eq!(before.identity.file_number, 1);
    assert_eq!(after.identity.file_number, 2);
    assert_ne!(before.unique_id, after.unique_id);
    assert_eq!(dep.instance(0).files().len(), 2);
}

#[test]
fn exact_resume_restart_continues_the_id_stream() {
    // Two deployments with identical seeds: one never restarts, the other
    // crash-restarts with exact resume after every flush. They must mint
    // identical unique IDs forever.
    let space = IdSpace::with_bits(32).unwrap();
    let alg = uuidp_core::algorithms::Cluster::new(space);
    let seeds = SeedTree::new(79);
    let mut steady = Deployment::new(&alg, 2, 64, &seeds);
    let mut crashy = Deployment::new(&alg, 2, 64, &seeds);
    for _ in 0..30 {
        for i in 0..2 {
            let a = steady.flush(i, 2).unwrap();
            let b = crashy.flush(i, 2).unwrap();
            assert_eq!(a.unique_id, b.unique_id, "resume must not fork the stream");
            assert!(
                crashy.restart_instance_resumed(i),
                "cluster supports resume"
            );
        }
    }
    assert_eq!(crashy.audit().id_collisions().len(), 0);
}

#[test]
fn collision_rate_orders_algorithms_like_the_theory() {
    let space = IdSpace::new(1 << 20).unwrap();
    let cfg = WorkloadConfig {
        instances: 8,
        operations: 30_000,
        ..WorkloadConfig::default()
    };
    let mut random_collisions = 0u64;
    let mut cluster_collisions = 0u64;
    for seed in 0..5u64 {
        random_collisions +=
            run_workload(&uuidp_core::algorithms::Random::new(space), cfg, seed).id_collisions;
        cluster_collisions +=
            run_workload(&uuidp_core::algorithms::Cluster::new(space), cfg, seed).id_collisions;
    }
    assert!(
        random_collisions > cluster_collisions.saturating_mul(5),
        "random {random_collisions} vs cluster {cluster_collisions}: ordering violated"
    );
}
