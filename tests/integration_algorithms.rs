//! Cross-algorithm integration: every algorithm in the registry satisfies
//! the generator contract — within-instance uniqueness, footprint
//! consistency, skip/materialize equivalence, and seed determinism.

use std::collections::HashSet;

use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::IdSpace;
use uuidp_core::prelude::*;

fn registry(space: IdSpace) -> Vec<Box<dyn Algorithm>> {
    vec![
        AlgorithmKind::Random.build(space),
        AlgorithmKind::Cluster.build(space),
        AlgorithmKind::Bins { k: 64 }.build(space),
        AlgorithmKind::ClusterStar.build(space),
        AlgorithmKind::BinsStar.build(space),
        AlgorithmKind::BinsStarMaxFit.build(space),
        AlgorithmKind::SetAside { i: 50, j: 120 }.build(space),
    ]
}

#[test]
fn no_within_instance_duplicates_anywhere() {
    let space = IdSpace::new(1 << 16).unwrap();
    for alg in registry(space) {
        for seed in 0..5u64 {
            let mut gen = alg.spawn(seed);
            let mut seen = HashSet::new();
            for step in 0..120u32 {
                match gen.next_id() {
                    Ok(id) => {
                        assert!(space.contains(id), "{}: ID out of space", alg.name());
                        assert!(
                            seen.insert(id),
                            "{}: duplicate at step {step} (seed {seed})",
                            alg.name()
                        );
                    }
                    Err(GeneratorError::Exhausted { .. }) => break,
                }
            }
        }
    }
}

#[test]
fn footprint_measure_matches_generated_count() {
    let space = IdSpace::new(1 << 16).unwrap();
    for alg in registry(space) {
        let mut gen = alg.spawn(7);
        let mut produced = 0u128;
        for _ in 0..100 {
            if gen.next_id().is_ok() {
                produced += 1;
            } else {
                break;
            }
        }
        assert_eq!(gen.generated(), produced, "{}", alg.name());
        assert_eq!(
            gen.footprint().measure(),
            produced,
            "{}: footprint measure mismatch",
            alg.name()
        );
    }
}

#[test]
fn footprint_contains_exactly_the_emitted_ids() {
    let space = IdSpace::new(1 << 14).unwrap();
    for alg in registry(space) {
        let mut gen = alg.spawn(11);
        let mut emitted = Vec::new();
        for _ in 0..80 {
            match gen.next_id() {
                Ok(id) => emitted.push(id),
                Err(_) => break,
            }
        }
        match gen.footprint() {
            Footprint::Points(pts) => {
                let set: HashSet<_> = pts.iter().collect();
                for id in &emitted {
                    assert!(set.contains(id), "{}: missing {id}", alg.name());
                }
            }
            Footprint::Arcs(set) => {
                for id in &emitted {
                    assert!(set.contains(*id), "{}: missing {id}", alg.name());
                }
            }
        }
    }
}

#[test]
fn skip_equals_materialized_emission_for_all_algorithms() {
    let space = IdSpace::new(1 << 16).unwrap();
    for alg in registry(space) {
        let mut a = alg.spawn(13);
        let mut b = alg.spawn(13);
        let count = 90u128;
        let skipped = a.skip(count);
        let mut materialized_ok = true;
        for _ in 0..count {
            if b.next_id().is_err() {
                materialized_ok = false;
                break;
            }
        }
        assert_eq!(
            skipped.is_ok(),
            materialized_ok,
            "{}: skip and materialize disagree on exhaustion",
            alg.name()
        );
        if materialized_ok {
            assert_eq!(a.generated(), b.generated(), "{}", alg.name());
            // Continuations coincide.
            assert_eq!(
                a.next_id().unwrap(),
                b.next_id().unwrap(),
                "{}: continuation after skip diverges",
                alg.name()
            );
        }
    }
}

#[test]
fn same_seed_same_stream_different_seed_different_stream() {
    let space = IdSpace::new(1 << 20).unwrap();
    for alg in registry(space) {
        let mut a = alg.spawn(42);
        let mut b = alg.spawn(42);
        let mut c = alg.spawn(43);
        let mut diverged = false;
        for _ in 0..50 {
            let (ia, ib) = (a.next_id(), b.next_id());
            match (&ia, &ib) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "{}: same seed diverged", alg.name()),
                _ => break,
            }
            if let Ok(z) = c.next_id() {
                diverged |= ia.ok() != Some(z);
            }
        }
        // SetAside's tail is deterministic, so allow non-divergence only
        // for algorithms whose output is mostly hard-wired.
        if !alg.name().starts_with("set-aside") {
            assert!(diverged, "{}: different seeds never diverged", alg.name());
        }
    }
}

#[test]
fn snowflake_and_session_cover_their_layout_space() {
    let snow = AlgorithmKind::Snowflake(SnowflakeConfig {
        timestamp_bits: 20,
        worker_bits: 6,
        sequence_bits: 6,
        requests_per_tick: 8,
        max_skew_ticks: 10,
    });
    let space = IdSpace::with_bits(32).unwrap();
    let alg = snow.build(space);
    let mut gen = alg.spawn(5);
    let mut seen = HashSet::new();
    for _ in 0..5000 {
        assert!(seen.insert(gen.next_id().unwrap()));
    }

    let sess = AlgorithmKind::SessionCounter {
        session_bits: 22,
        counter_bits: 10,
    };
    let alg = sess.build(space);
    let mut gen = alg.spawn(6);
    let mut seen = HashSet::new();
    for _ in 0..5000 {
        assert!(seen.insert(gen.next_id().unwrap()));
    }
}
