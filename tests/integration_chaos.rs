//! End-to-end adversarial-network acceptance tests:
//!
//! * **seeded fleet chaos run** — a 3-node v2 fleet behind per-node
//!   fault-injecting proxies (partition windows, injected latency,
//!   slow-peer throttling, stream cuts, frame corruption) *plus*
//!   crash-restarts must finish with zero cross-node duplicates, zero
//!   recovered-node duplicates, and a tail-latency + SLO report — and a
//!   rerun with the same chaos seed must reproduce the identical fault
//!   schedule fingerprint and audit totals;
//! * **demux-death regression** — when a v2 connection dies with many
//!   requests in flight, every pending waiter must fail promptly with a
//!   typed broken-connection error instead of hanging forever.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use uuidp::client::frame::{read_frame, write_frame, FrameBody, VERSION};
use uuidp::client::{broken_connection, Client, ErrorClass, ProtoVersion};
use uuidp::core::algorithms::AlgorithmKind;
use uuidp::core::id::IdSpace;
use uuidp::fleet::run::{run_fleet, FleetConfig, FleetReport};
use uuidp::netchaos::ChaosSpec;
use uuidp::service::service::ServiceConfig;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uuidp-chaos-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn chaos_fleet(tag: &str, chaos_seed: u64) -> FleetReport {
    let space = IdSpace::with_bits(48).unwrap();
    let mut service = ServiceConfig::new(AlgorithmKind::ClusterStar, space);
    service.shards = 2;
    service.audit_stripes = 8;
    service.master_seed = 0xC4A0_5EED;
    let dir = temp_dir(tag);
    let mut cfg = FleetConfig::new(service, 3, &dir);
    cfg.tenants = 6;
    cfg.requests = 240;
    cfg.count = 32;
    cfg.protocol = ProtoVersion::V2;
    cfg.kill_every = Some(60);
    cfg.reservation = 64;
    // Every fault class the proxy knows, plus slow-peer throttling.
    cfg.chaos = Some(ChaosSpec::parse("small,throttle:256").unwrap());
    cfg.chaos_seed = chaos_seed;
    let report = run_fleet(cfg).expect("chaos fleet run completes");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[test]
fn seeded_fleet_chaos_run_is_duplicate_free_and_reproducible() {
    let report = chaos_fleet("run-a", 0x5EED);

    // Graceful degradation, never corruption: the run took faults and
    // crash-restarts, yet the global audit is clean.
    assert!(report.restarts > 0, "kill schedule must fire");
    assert_eq!(report.cross_tenant_duplicate_ids, 0, "{report:?}");
    assert_eq!(report.recovered_duplicate_ids, 0, "{report:?}");
    let chaos = report.chaos.expect("chaos runs stamp their schedule");
    assert!(chaos.injected.connections > 0);

    // The report carries the tail and the error budget.
    assert!(report.p999_us >= report.p99_us && report.p99_us >= report.p50_us);
    let rendered = report.render();
    assert!(rendered.contains("p999"), "{rendered}");
    assert!(rendered.contains("slo:"), "{rendered}");
    assert!(rendered.contains("fault-class:"), "{rendered}");
    assert!(rendered.contains("schedule fingerprint"), "{rendered}");

    // Same chaos seed ⇒ bit-identical fault schedule and audit totals.
    let rerun = chaos_fleet("run-b", 0x5EED);
    let rechaos = rerun.chaos.expect("chaos stamp");
    assert_eq!(chaos.fingerprint, rechaos.fingerprint);
    assert_eq!(report.issued_ids, rerun.issued_ids);
    assert_eq!(report.global.duplicate_ids, rerun.global.duplicate_ids);
    assert_eq!(report.restarts, rerun.restarts);

    // A different seed derives a different schedule.
    let other = chaos_fleet("run-c", 0x00DD_5EED);
    assert_ne!(
        chaos.fingerprint,
        other.chaos.expect("chaos stamp").fingerprint
    );
}

#[test]
fn demux_death_fails_all_pending_waiters_promptly() {
    const WAITERS: usize = 3;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // A server that answers the handshake, swallows WAITERS lease
    // requests without replying, then drops the connection.
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let hello = read_frame(&mut conn).unwrap();
        let FrameBody::Hello { space, .. } = hello.body else {
            panic!("expected hello");
        };
        write_frame(
            &mut conn,
            hello.corr,
            &FrameBody::HelloOk {
                version: VERSION,
                space,
            },
        )
        .unwrap();
        for _ in 0..WAITERS {
            read_frame(&mut conn).unwrap();
        }
        // Dropping `conn` closes the socket with all requests in flight.
    });

    let space = IdSpace::with_bits(24).unwrap();
    let client = Client::connect(addr, space).unwrap();
    let in_doubt = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let waiters: Vec<_> = (0..WAITERS)
        .map(|i| {
            let client = client.clone();
            let in_doubt = Arc::clone(&in_doubt);
            std::thread::spawn(move || {
                let err = client
                    .lease(i as u64, 8)
                    .expect_err("the reply can never arrive");
                let broken = broken_connection(&err)
                    .unwrap_or_else(|| panic!("untyped demux-death error: {err}"));
                if broken.class == ErrorClass::LeaseInDoubt {
                    in_doubt.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for w in waiters {
        w.join().expect("no waiter may panic");
    }
    // Promptly: seconds would mean a timeout fired instead of the
    // demux failing the waiters on connection death.
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "waiters took {:?}",
        start.elapsed()
    );
    assert_eq!(
        in_doubt.load(Ordering::Relaxed),
        WAITERS,
        "a lost reply is lease-in-doubt for every waiter"
    );
    server.join().unwrap();
}
