//! Integration tests for the v2 client against a live `TcpServer`,
//! pinning the two client-facing acceptance stories:
//!
//! * **crash inside a lease** — the `halt_after_persists` hook kills
//!   the node *between* the write-ahead persist and the reply (the
//!   window no external kill can aim at); the client observes a dead
//!   connection, and after a restart the recovered tenant must never
//!   repeat anything the pre-crash instance could have emitted —
//!   acknowledged or not;
//! * **multiplexed audit visibility** — same-seed twin tenants driven
//!   concurrently through clones of one connection are counted exactly
//!   by the audit, and the client can watch the totals live via
//!   `summary` without stopping the service.

use std::collections::HashSet;
use std::path::PathBuf;

use uuidp::client::Client;
use uuidp::core::algorithms::AlgorithmKind;
use uuidp::core::id::{Id, IdSpace};
use uuidp::core::rng::{SeedDomain, SeedTree};
use uuidp::service::net::TcpServer;
use uuidp::service::service::{DurabilityConfig, ServiceConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uuidp-client-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn crash_between_persist_and_reply_never_reissues_an_id() {
    let dir = temp_dir("mid-lease");
    let space = IdSpace::with_bits(24).unwrap();
    let config = |halt: Option<u64>| {
        let mut cfg = ServiceConfig::new(AlgorithmKind::Cluster, space);
        cfg.shards = 1;
        cfg.durability = Some(DurabilityConfig {
            dir: dir.clone(),
            reservation: 32,
            sync: false,
            halt_after_persists: halt,
        });
        cfg
    };

    // Run 1: the node is armed to die on its 3rd write-ahead persist —
    // which lands mid-lease: the record is on disk, the IDs have left
    // the generator, and the reply never happens.
    let server = TcpServer::bind("127.0.0.1:0", config(Some(3))).unwrap();
    let client = Client::connect(server.local_addr(), space).unwrap();
    let mut acked: HashSet<Id> = HashSet::new();
    let mut acked_leases = 0u32;
    // Lease until the node dies instead of replying.
    while let Ok(lease) = client.lease(0, 20) {
        acked_leases += 1;
        for arc in &lease.arcs {
            for i in 0..arc.len {
                acked.insert(arc.nth(space, i));
            }
        }
        assert!(acked_leases < 50, "the crash hook never fired");
    }
    // Leases of 20 against a reservation of 32: persists land on leases
    // 1, 2, 3 — the crash takes the 3rd lease's reply with it.
    assert_eq!(acked_leases, 2, "the crash must land mid-lease");
    assert_eq!(acked.len(), 40);
    // A halt is a crash, not a shutdown: no report anywhere.
    assert!(server.join().is_none(), "crashed node produced a report");

    // Run 2: a successor on the same state dir. Its stream must be
    // disjoint from every pre-crash ID — the 40 acknowledged AND the 20
    // in-flight ones the client never saw.
    let server = TcpServer::bind("127.0.0.1:0", config(None)).unwrap();
    let client = Client::connect(server.local_addr(), space).unwrap();
    let lease = client.lease(0, 200).unwrap();
    let mut recovered = Vec::new();
    for arc in &lease.arcs {
        for i in 0..arc.len {
            recovered.push(arc.nth(space, i));
        }
    }
    for id in &recovered {
        assert!(!acked.contains(id), "recovered tenant re-issued {id}");
    }
    // Stronger: recovery resumed the tenant's own permutation exactly
    // past the abandoned window — the crash happened at generated = 40
    // with a fresh reservation of 32, so the successor starts at
    // position 72 of the same seed's stream.
    let alg = AlgorithmKind::Cluster.build(space);
    let roots = SeedTree::new(config(None).master_seed);
    let mut reference = alg.spawn(roots.trial(0).seed(SeedDomain::Instance(0)));
    reference.skip(72).unwrap();
    for (i, id) in recovered.iter().enumerate() {
        assert_eq!(
            *id,
            reference.next_id().unwrap(),
            "recovered stream diverged at {i}"
        );
    }
    client.shutdown().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn twin_tenants_over_one_multiplexed_connection_are_counted_exactly() {
    // Tenants 0 and 5 share a seed; six threads drive all tenants
    // concurrently through clones of one connection, and the audit must
    // count every twin-issued ID exactly once — observable live.
    let space = IdSpace::with_bits(44).unwrap();
    let mut cfg = ServiceConfig::new(AlgorithmKind::Cluster, space);
    cfg.shards = 3;
    cfg.audit_threads = 2;
    cfg.seed_alias = Some((0, 5));
    let server = TcpServer::bind("127.0.0.1:0", cfg).unwrap();
    let client = Client::connect(server.local_addr(), space).unwrap();
    let per_lease = 64u128;
    let leases_per_tenant = 8u128;
    let workers: Vec<_> = (0..6u64)
        .map(|tenant| {
            let client = client.clone();
            std::thread::spawn(move || {
                for _ in 0..leases_per_tenant {
                    assert_eq!(client.lease(tenant, per_lease).unwrap().granted, per_lease);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    client.drain().unwrap();
    let live = client.summary().unwrap();
    assert_eq!(live.issued_ids, 6 * per_lease * leases_per_tenant);
    assert_eq!(
        live.duplicate_ids,
        per_lease * leases_per_tenant,
        "every twin-issued ID is a duplicate, counted exactly once"
    );
    // The service is still up: the live summary was not a shutdown.
    assert_eq!(client.lease(2, 3).unwrap().granted, 3);
    let final_summary = client.shutdown().unwrap();
    assert_eq!(final_summary.issued_ids, live.issued_ids + 3);
    assert_eq!(final_summary.duplicate_ids, live.duplicate_ids);
    server.join().unwrap();
}
