//! Integration tests for the observability layer, pinning the PR's
//! acceptance stories end to end:
//!
//! * **scrape surface** — the same registry is scrapeable over the v1
//!   text command and the v2 metrics frame, and the exported totals
//!   match the traffic that actually flowed;
//! * **flight recorder under chaos** — a `halt_after_persists` crash
//!   behind a netchaos proxy leaves a postmortem dump in the node's
//!   state dir containing the registry snapshot, the last trace
//!   events, and the assembled corr-id span timeline of the exact
//!   lease the crash cut off;
//! * **audit-duplicate dump** — an injected same-seed twin pair makes
//!   the shutdown path dump a flight recording on its own.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use uuidp::client::frame::{read_frame, write_frame, FrameBody, VERSION};
use uuidp::client::Client;
use uuidp::core::algorithms::AlgorithmKind;
use uuidp::core::clock;
use uuidp::core::id::IdSpace;
use uuidp::netchaos::{ChaosProxy, ChaosSpec};
use uuidp::obs::{parse_exposition, Stage};
use uuidp::service::net::{RemoteClient, TcpServer};
use uuidp::service::service::{DurabilityConfig, IdService, ServiceConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uuidp-obs-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The first flight dump whose filename carries `reason`, polling
/// briefly: the dump is written on the crashing thread, which the
/// accept-loop join does not strictly order against this reader.
fn find_flight(dir: &PathBuf, reason: &str) -> PathBuf {
    let prefix = format!("flight-{reason}-");
    for _ in 0..500 {
        let hit = std::fs::read_dir(dir).ok().and_then(|entries| {
            entries.flatten().map(|e| e.path()).find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&prefix))
            })
        });
        if let Some(path) = hit {
            return path;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("no flight-{reason}-*.log appeared in {}", dir.display());
}

#[test]
fn both_wire_protocols_scrape_the_same_registry() {
    let space = IdSpace::with_bits(44).unwrap();
    let mut cfg = ServiceConfig::new(AlgorithmKind::Cluster, space);
    cfg.shards = 2;
    let server = TcpServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    let v2 = Client::connect(addr, space).unwrap();
    for tenant in 0..4u64 {
        assert_eq!(v2.lease(tenant, 32).unwrap().granted, 32);
    }
    let from_v2 = parse_exposition(&v2.metrics().unwrap());
    assert_eq!(from_v2["uuidp_leases_total"], 4.0);
    assert_eq!(from_v2["uuidp_ids_issued_total"], 128.0);

    let mut v1 = RemoteClient::connect(addr, space).unwrap();
    assert_eq!(v1.lease(9, 16).unwrap().granted, 16);
    let from_v1 = parse_exposition(&v1.metrics().unwrap());
    assert_eq!(from_v1["uuidp_leases_total"], 5.0);
    assert_eq!(from_v1["uuidp_ids_issued_total"], 144.0);
    assert!(
        from_v1.contains_key("uuidp_lease_latency_ns_count"),
        "histogram families must export"
    );

    let _ = v1.quit();
    v2.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn halt_behind_a_chaos_proxy_dumps_the_cut_leases_span_timeline() {
    // The PR's acceptance scenario: a node armed to die on its 3rd
    // write-ahead persist, reached through a netchaos proxy (latency
    // shaping only, so the persist schedule — and thus the victim
    // lease — is pinned). The raw v2 framing gives the test control of
    // the correlation ids, so it can stamp the client-send leg into
    // the same recorder the server uses and then find the whole causal
    // chain in the dump.
    let dir = temp_dir("flight-halt");
    let space = IdSpace::with_bits(24).unwrap();
    let mut cfg = ServiceConfig::new(AlgorithmKind::Cluster, space);
    cfg.shards = 1;
    cfg.durability = Some(DurabilityConfig {
        dir: dir.clone(),
        reservation: 32,
        sync: false,
        halt_after_persists: Some(3),
    });
    let server = TcpServer::bind("127.0.0.1:0", cfg).unwrap();
    let trace = server.trace();
    let spec = ChaosSpec::parse("none,latency_us:100").unwrap();
    let proxy = ChaosProxy::launch(server.local_addr(), spec, 0xF7).unwrap();
    proxy.attach_obs(&server.registry(), server.trace());

    let mut conn = TcpStream::connect(proxy.addr()).unwrap();
    write_frame(
        &mut conn,
        1,
        &FrameBody::Hello {
            version: VERSION,
            space: space.size(),
        },
    )
    .unwrap();
    let hello = read_frame(&mut conn).unwrap();
    assert!(matches!(hello.body, FrameBody::HelloOk { .. }), "{hello:?}");

    // Leases of 20 against a reservation window of 32: persists land
    // on leases 1, 2, and 3 — the third one fires the halt hook, so
    // the corr of the third request is the lease the crash cuts off.
    let mut halted_corr = None;
    for i in 0..50u64 {
        let corr = 100 + i;
        trace.record(
            corr,
            7,
            Stage::ClientSend,
            "lease-req",
            clock::monotonic_ns(),
        );
        write_frame(
            &mut conn,
            corr,
            &FrameBody::LeaseReq {
                tenant: 7,
                count: 20,
            },
        )
        .unwrap();
        match read_frame(&mut conn) {
            Ok(reply) => {
                assert!(
                    matches!(reply.body, FrameBody::LeaseResp { .. }),
                    "{reply:?}"
                );
                trace.record(
                    corr,
                    7,
                    Stage::ClientRecv,
                    "lease-resp",
                    clock::monotonic_ns(),
                );
            }
            Err(_) => {
                halted_corr = Some(corr);
                break;
            }
        }
    }
    let halted_corr = halted_corr.expect("the crash hook never fired");
    assert_eq!(halted_corr, 102, "the 3rd persist takes the 3rd lease");
    assert!(server.join().is_none(), "a halt is a crash, not a shutdown");
    proxy.shutdown();

    let dump = find_flight(&dir, "halt-after-persists");
    let text = std::fs::read_to_string(&dump).unwrap();
    assert!(text.starts_with("uuidp flight recorder"), "{text}");
    assert!(text.contains("reason: halt-after-persists"), "{text}");
    // Registry snapshot: all three persists made it into the counters
    // before the node died.
    assert!(text.contains("uuidp_persists_total 3"), "{text}");
    assert!(text.contains("uuidp_leases_total"), "{text}");
    // Last events: the proxy's connection plan and the server's demux
    // leg were both recorded into the shared recorder.
    assert!(text.contains("stage=proxy-conn"), "{text}");
    assert!(text.contains("stage=server-demux"), "{text}");
    // The assembled causal timeline of the affected lease: focused on
    // the halted corr, spanning client send → demux → the write-ahead
    // persist that pulled the trigger.
    assert!(text.contains(&format!("span corr={halted_corr}")), "{text}");
    let timeline = text
        .split("== span timeline ==")
        .nth(1)
        .expect("dump has a timeline section");
    assert!(timeline.contains("client-send"), "{timeline}");
    assert!(timeline.contains("server-demux"), "{timeline}");
    assert!(timeline.contains("worker-persist"), "{timeline}");
    assert!(timeline.contains("halt hook"), "{timeline}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_duplicates_dump_a_flight_recording_at_shutdown() {
    // Injected same-seed twins: tenants 0 and 1 share a seed, so the
    // audit must count duplicates — and a duplicate-bearing shutdown
    // must leave a postmortem dump in the state dir on its own.
    let dir = temp_dir("flight-twin");
    let space = IdSpace::with_bits(30).unwrap();
    let mut cfg = ServiceConfig::new(AlgorithmKind::Cluster, space);
    cfg.shards = 1;
    cfg.seed_alias = Some((0, 1));
    cfg.durability = Some(DurabilityConfig {
        dir: dir.clone(),
        reservation: 64,
        sync: false,
        halt_after_persists: None,
    });
    let service = IdService::start(cfg);
    for tenant in [0u64, 1] {
        assert_eq!(service.lease(tenant, 48).granted, 48);
    }
    let report = service.shutdown();
    assert_eq!(report.audit.counts.duplicate_ids, 48, "twins must collide");

    let dump = find_flight(&dir, "audit-duplicate");
    let text = std::fs::read_to_string(&dump).unwrap();
    assert!(text.contains("reason: audit-duplicate"), "{text}");
    assert!(text.contains("uuidp_audit_duplicate_ids 48"), "{text}");
    assert!(text.contains("== span timeline =="), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}
