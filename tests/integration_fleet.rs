//! Integration tests pinning the fleet layer's headline guarantees:
//!
//! * the **global** collision audit's totals are bit-identical for
//!   every `(nodes, shards, audit_threads)` combination on the same
//!   seed and schedule (property-tested, with same-seed twins injected
//!   so the duplicate counter is live, and a tiny universe so organic
//!   cross-tenant duplicates occur too);
//! * a **chaos** run (random crash-restarts mid-stress) with injected
//!   twins still detects the twins while recovered nodes contribute
//!   exactly zero duplicates — the acceptance criterion;
//! * node-local audits provably cannot see cross-node twins (the gap
//!   the global audit exists to close).

use proptest::prelude::*;

use uuidp::core::algorithms::AlgorithmKind;
use uuidp::core::id::IdSpace;
use uuidp::fleet::router::Placement;
use uuidp::fleet::run::{run_fleet, FleetConfig};
use uuidp::service::service::ServiceConfig;

fn state_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("uuidp-it-fleet-{}-{tag}", std::process::id()))
}

/// Runs one fleet and returns its transport-and-topology-invariant
/// totals.
#[allow(clippy::too_many_arguments)]
fn replay(
    seed: u64,
    nodes: usize,
    shards: usize,
    audit_threads: usize,
    tenants: u64,
    requests: u64,
    count: u128,
    tag: &str,
) -> (u128, u128, u128, u128) {
    let mut service = ServiceConfig::new(AlgorithmKind::Cluster, IdSpace::with_bits(13).unwrap());
    service.master_seed = seed;
    service.shards = shards;
    service.audit_threads = audit_threads;
    service.audit_stripes = 8;
    // Twin tenants keep the duplicate counter provably non-zero.
    service.seed_alias = Some((0, 1));
    let dir = state_dir(tag);
    let mut cfg = FleetConfig::new(service, nodes, &dir);
    cfg.tenants = tenants;
    cfg.requests = requests;
    cfg.count = count;
    cfg.placement = Placement::Skewed;
    let report = run_fleet(cfg).expect("fleet run");
    let _ = std::fs::remove_dir_all(&dir);
    (
        report.issued_ids,
        report.global.duplicate_ids,
        report.cross_tenant_duplicate_ids,
        report.global.recorded_ids,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn global_audit_is_bit_identical_across_the_topology_grid(
        seed in any::<u64>(),
        tenants in 2u64..6,
        requests in 30u64..70,
        count in 8u128..120,
    ) {
        let mut reference = None;
        for &nodes in &[1usize, 2, 3] {
            for &shards in &[1usize, 3] {
                for &threads in &[1usize, 2] {
                    let tag = format!("grid-{nodes}-{shards}-{threads}");
                    let got = replay(
                        seed, nodes, shards, threads, tenants, requests, count, &tag,
                    );
                    prop_assert!(got.1 > 0, "twins must collide");
                    prop_assert_eq!(
                        got.1, got.2,
                        "without restarts the two owner keyings agree"
                    );
                    match &reference {
                        None => reference = Some(got),
                        Some(r) => prop_assert_eq!(
                            *r, got,
                            "nodes={} shards={} audit_threads={} changed the global audit",
                            nodes, shards, threads
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn chaos_with_cross_node_twins_detects_them_and_recovered_nodes_add_nothing() {
    // The acceptance scenario: 4 nodes, twins 0 and 1 pinned to nodes 0
    // and 1, random nodes crash-restarted every 25 requests. The twins
    // may themselves be restarted (their streams then skip ahead), but
    // the victim's coverage dwarfs the skipped windows, so detection is
    // guaranteed — and the recovered-duplicate counter must stay at
    // exactly zero or crash recovery is broken.
    let mut service = ServiceConfig::new(AlgorithmKind::Cluster, IdSpace::with_bits(44).unwrap());
    service.seed_alias = Some((0, 1));
    service.shards = 2;
    service.audit_threads = 2;
    let dir = state_dir("chaos-twins");
    let mut cfg = FleetConfig::new(service, 4, &dir);
    cfg.tenants = 8;
    cfg.requests = 400;
    cfg.count = 64;
    cfg.kill_every = Some(25);
    cfg.reservation = 64;
    let report = run_fleet(cfg).expect("chaos fleet run");
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        report.restarts >= 10,
        "chaos barely ran: {}",
        report.restarts
    );
    assert!(
        report.cross_tenant_duplicate_ids > 0,
        "global audit missed the cross-node twins"
    );
    assert_eq!(
        report.recovered_duplicate_ids, 0,
        "a recovered node re-emitted pre-crash IDs"
    );
    // The twins live on different nodes, so node-local audits see none
    // of their duplicates; every duplicate the global audit found is
    // cross-node (or cross-incarnation, and we just pinned those to 0).
    assert_eq!(
        report.merged_nodes.counts.duplicate_ids, 0,
        "node-local audits should be blind to cross-node twins"
    );
    assert_eq!(report.global.recorded_ids, report.issued_ids);
}

#[test]
fn clean_and_chaos_runs_issue_identical_per_tenant_volumes() {
    // Crash-restarts must be invisible to *throughput accounting*: the
    // same schedule issues the same number of IDs whether or not nodes
    // die along the way (recovery only skips IDs, it never loses or
    // duplicates requests).
    let run = |kill: Option<u64>, tag: &str| {
        let mut service =
            ServiceConfig::new(AlgorithmKind::ClusterStar, IdSpace::with_bits(40).unwrap());
        service.master_seed = 0xFEE7;
        let dir = state_dir(tag);
        let mut cfg = FleetConfig::new(service, 3, &dir);
        cfg.tenants = 6;
        cfg.requests = 300;
        cfg.count = 48;
        cfg.kill_every = kill;
        cfg.reservation = 96;
        let report = run_fleet(cfg).expect("fleet run");
        let _ = std::fs::remove_dir_all(&dir);
        (report.issued_ids, report.errors, report.restarts)
    };
    let (clean_issued, clean_errors, clean_restarts) = run(None, "clean-vol");
    let (chaos_issued, chaos_errors, chaos_restarts) = run(Some(30), "chaos-vol");
    assert_eq!(clean_restarts, 0);
    assert!(chaos_restarts > 0);
    assert_eq!(clean_errors, 0);
    assert_eq!(chaos_errors, 0);
    assert_eq!(clean_issued, chaos_issued, "chaos changed issuance volume");
}
