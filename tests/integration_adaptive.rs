//! Adaptive-setting integration: the attacks hurt exactly whom the paper
//! says they hurt.

use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::flooder::BalancedFlood;
use uuidp_adversary::nearest_pair::NearestPair;
use uuidp_adversary::profile::DemandProfile;
use uuidp_adversary::run_hunter::RunHunter;
use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::IdSpace;
use uuidp_sim::montecarlo::{estimate_adaptive, estimate_oblivious, TrialConfig};

const M_BITS: u32 = 18;
const N: usize = 8;
const D: u128 = 1 << 9;

fn space() -> IdSpace {
    IdSpace::with_bits(M_BITS).unwrap()
}

#[test]
fn nearest_pair_multiplies_cluster_collisions() {
    let alg = AlgorithmKind::Cluster.build(space());
    let attack = NearestPair::new(N, D);
    let cfg = TrialConfig::new(8_000, 1);
    let (adaptive, _) = estimate_adaptive(alg.as_ref(), &attack, cfg);
    let uniform = DemandProfile::uniform(N, D / N as u128);
    let (oblivious, _) = estimate_oblivious(alg.as_ref(), &uniform, TrialConfig::new(100_000, 1));
    let gap = adaptive.p_hat / oblivious.p_hat.max(1e-9);
    assert!(
        gap > 0.3 * N as f64,
        "adaptivity gap {gap:.2} too small (expected ~n = {N})"
    );
}

#[test]
fn cluster_star_resists_what_breaks_cluster() {
    let cluster = AlgorithmKind::Cluster.build(space());
    let star = AlgorithmKind::ClusterStar.build(space());
    let cfg = TrialConfig::new(8_000, 2);
    for attack in [
        Box::new(NearestPair::new(N, D)) as Box<dyn AdversarySpec>,
        Box::new(RunHunter::new(N, D)),
    ] {
        let (p_cluster, _) = estimate_adaptive(cluster.as_ref(), attack.as_ref(), cfg);
        let (p_star, _) = estimate_adaptive(star.as_ref(), attack.as_ref(), cfg);
        assert!(
            p_star.p_hat < p_cluster.p_hat * 0.7,
            "{}: cluster* {} not clearly below cluster {}",
            attack.name(),
            p_star.p_hat,
            p_cluster.p_hat
        );
    }
}

#[test]
fn adaptivity_is_useless_against_random() {
    // Random's future IDs are fresh uniform draws: the nearest-pair attack
    // can do no better than the same volume spent obliviously.
    let alg = AlgorithmKind::Random.build(space());
    let attack = NearestPair::new(N, D);
    let cfg = TrialConfig::new(8_000, 3);
    let (adaptive, _) = estimate_adaptive(alg.as_ref(), &attack, cfg);
    // The attack's realized profile is (d−n+1, 1, …, 1); compare against
    // the same oblivious profile.
    let mut demands = vec![1u128; N];
    demands[0] = D - N as u128 + 1;
    let profile = DemandProfile::new(demands);
    let (oblivious, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(30_000, 3));
    let gap = adaptive.p_hat / oblivious.p_hat.max(1e-9);
    assert!(
        (0.6..=1.6).contains(&gap),
        "adaptive {} vs oblivious {} (gap {gap:.2}) — should be ≈1",
        adaptive.p_hat,
        oblivious.p_hat
    );
}

#[test]
fn balanced_flood_realizes_the_uniform_profile_statistics() {
    let alg = AlgorithmKind::Cluster.build(space());
    let flood = BalancedFlood::ignoring_collisions(N, D);
    let cfg = TrialConfig::new(20_000, 4);
    let (adaptive, _) = estimate_adaptive(alg.as_ref(), &flood, cfg);
    let uniform = DemandProfile::uniform(N, D / N as u128);
    let (oblivious, _) = estimate_oblivious(alg.as_ref(), &uniform, TrialConfig::new(20_000, 4));
    // Same profile, adaptivity unused: identical seeds give identical
    // outcomes per trial.
    assert_eq!(adaptive.successes, oblivious.successes);
}

#[test]
fn attacks_report_no_exhaustion_within_guarantees() {
    let star = AlgorithmKind::ClusterStar.build(space());
    let attack = NearestPair::new(N, D);
    let (_, diag) = estimate_adaptive(star.as_ref(), &attack, TrialConfig::new(4_000, 5));
    assert_eq!(
        diag.exhausted_trials, 0,
        "cluster* exhausted within its guaranteed capacity"
    );
    assert_eq!(diag.truncated_trials, 0);
}
