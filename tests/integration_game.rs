//! Game-engine integration: the symbolic oblivious engine, the
//! materialized adaptive engine, and the two collision detectors must all
//! tell the same story.

use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::oblivious::{Oblivious, RequestOrder};
use uuidp_adversary::profile::DemandProfile;
use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::IdSpace;
use uuidp_core::rng::SeedTree;
use uuidp_core::traits::Algorithm;
use uuidp_sim::game::{run_adaptive, run_oblivious_symbolic, GameLimits};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};

fn suite(space: IdSpace) -> Vec<Box<dyn Algorithm>> {
    vec![
        AlgorithmKind::Random.build(space),
        AlgorithmKind::Cluster.build(space),
        AlgorithmKind::Bins { k: 16 }.build(space),
        AlgorithmKind::ClusterStar.build(space),
        AlgorithmKind::BinsStar.build(space),
    ]
}

#[test]
fn symbolic_and_materialized_engines_agree_trial_by_trial() {
    let space = IdSpace::new(1 << 10).unwrap();
    let profile = DemandProfile::new(vec![24, 24, 24]);
    for alg in suite(space) {
        for master in 0..60u64 {
            let seeds = SeedTree::new(master);
            let symbolic = run_oblivious_symbolic(alg.as_ref(), &profile, &seeds);
            let spec = Oblivious::new(profile.clone());
            let mut adv = spec.spawn(0);
            let adaptive = run_adaptive(alg.as_ref(), adv.as_mut(), &seeds, GameLimits::default());
            assert_eq!(
                symbolic.collided,
                adaptive.collided,
                "{} master {master}: engines disagree",
                alg.name()
            );
        }
    }
}

#[test]
fn request_interleaving_does_not_change_collision_statistics() {
    // Oblivious invariance: estimated p must be identical per-seed for
    // every interleaving (the instances are independent state machines).
    let space = IdSpace::new(1 << 10).unwrap();
    let profile = DemandProfile::new(vec![16, 8, 32]);
    for alg in suite(space) {
        let mut estimates = Vec::new();
        for order in [
            RequestOrder::Sequential,
            RequestOrder::RoundRobin,
            RequestOrder::RandomInterleave,
        ] {
            let spec = Oblivious::with_order(profile.clone(), order);
            let mut collisions = 0u32;
            for master in 0..400u64 {
                let seeds = SeedTree::new(master);
                let mut adv = spec.spawn(9);
                let out = run_adaptive(alg.as_ref(), adv.as_mut(), &seeds, GameLimits::default());
                collisions += out.collided as u32;
            }
            estimates.push(collisions);
        }
        assert!(
            estimates.windows(2).all(|w| w[0] == w[1]),
            "{}: orders gave {estimates:?}",
            alg.name()
        );
    }
}

#[test]
fn monte_carlo_is_deterministic_across_invocations() {
    let space = IdSpace::new(1 << 12).unwrap();
    let profile = DemandProfile::uniform(4, 32);
    for alg in suite(space) {
        let cfg = TrialConfig::new(3000, 0xBEEF);
        let (a, _) = estimate_oblivious(alg.as_ref(), &profile, cfg);
        let (b, _) = estimate_oblivious(alg.as_ref(), &profile, cfg);
        assert_eq!(a.successes, b.successes, "{}", alg.name());
    }
}

#[test]
fn guaranteed_collision_when_demand_exceeds_universe() {
    // Two instances each requesting > m/2 must collide, whatever the
    // algorithm (pigeonhole).
    let space = IdSpace::new(64).unwrap();
    let profile = DemandProfile::new(vec![40, 40]);
    for kind in [AlgorithmKind::Random, AlgorithmKind::Cluster] {
        let alg = kind.build(space);
        for master in 0..50u64 {
            let seeds = SeedTree::new(master);
            let out = run_oblivious_symbolic(alg.as_ref(), &profile, &seeds);
            assert!(out.collided, "{}: pigeonhole violated", alg.name());
        }
    }
}

#[test]
fn estimates_converge_with_more_trials() {
    // Width of the Wilson interval must shrink roughly as 1/√trials.
    let space = IdSpace::new(1 << 10).unwrap();
    let alg = AlgorithmKind::Cluster.build(space);
    let profile = DemandProfile::uniform(4, 16);
    let (small, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(2_000, 5));
    let (large, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(50_000, 5));
    assert!(
        large.half_width() < small.half_width() / 3.0,
        "CI did not shrink: {} vs {}",
        small.half_width(),
        large.half_width()
    );
}
