//! Integration tests pinning the service layer's concurrency story:
//!
//! * the parallel audit pipeline's headline counters are **bit-identical
//!   across every `(shards, audit_stripes, audit_threads)` combination**
//!   for the same seed and request script (property-tested over random
//!   scripts, with same-seed twin tenants injected so the counter is
//!   exercised, not just zero);
//! * injected duplicates survive the stripe-routing fan-out — the
//!   parallel pipeline has zero false negatives;
//! * the loopback TCP transport reproduces the in-process audit totals
//!   exactly for the same seed and mix (the stress driver differential).

use proptest::prelude::*;

use uuidp::core::algorithms::AlgorithmKind;
use uuidp::core::id::IdSpace;
use uuidp::service::service::{IdService, ServiceConfig};
use uuidp::service::stress::{run_stress, run_stress_remote, StressConfig, TrafficMix};

/// Replays `script` (tenant, count, reset?) against a fresh service and
/// returns the interleaving-invariant totals.
fn replay(
    seed: u64,
    shards: usize,
    stripes: usize,
    threads: usize,
    script: &[(u64, u128, bool)],
) -> (u128, u128, u128) {
    let mut cfg = ServiceConfig::new(AlgorithmKind::Cluster, IdSpace::with_bits(13).unwrap());
    cfg.shards = shards;
    cfg.audit_stripes = stripes;
    cfg.audit_threads = threads;
    cfg.master_seed = seed;
    // Twin tenants guarantee duplicate material flows through the
    // pipeline in every case, so the proptest pins a live counter.
    cfg.seed_alias = Some((0, 1));
    let service = IdService::start(cfg);
    for &(tenant, count, reset) in script {
        // Resets stay off the twin pair so both twins remain in epoch 0
        // and their streams stay guaranteed-overlapping.
        if reset && tenant >= 2 {
            service.reset_tenant(tenant);
        }
        service.issue(tenant, count);
    }
    // A fixed twin tail makes the duplicate counter provably non-zero no
    // matter which tenants the random script happened to touch.
    service.issue(0, 64);
    service.issue(1, 64);
    service.drain();
    let report = service.shutdown();
    (
        report.issued_ids,
        report.audit.counts.duplicate_ids,
        report.audit.counts.recorded_ids,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn audit_totals_are_bit_identical_across_the_concurrency_grid(
        seed in any::<u64>(),
        script in prop::collection::vec((0u64..6, 1u128..160, any::<bool>()), 8..30),
    ) {
        let mut reference = None;
        for &shards in &[1usize, 3] {
            for &threads in &[1usize, 2, 5] {
                for &stripes in &[1usize, 11] {
                    let got = replay(seed, shards, stripes, threads, &script);
                    prop_assert!(got.1 > 0, "twin tenants must collide");
                    match &reference {
                        None => reference = Some(got),
                        Some(r) => prop_assert_eq!(
                            *r, got,
                            "shards={} threads={} stripes={} changed the audit totals",
                            shards, threads, stripes
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn twin_injection_is_caught_exactly_through_the_parallel_pipeline() {
    // The zero-false-negative criterion, through the widest pipeline:
    // every ID the twin leases duplicates the victim's stream, and the
    // stripe-subset fan-out must count each exactly once.
    let mut cfg = ServiceConfig::new(AlgorithmKind::Cluster, IdSpace::with_bits(48).unwrap());
    cfg.shards = 3;
    cfg.audit_stripes = 32;
    cfg.audit_threads = 5;
    cfg.seed_alias = Some((2, 7));
    let service = IdService::start(cfg);
    let per_lease = 256u128;
    let leases = 12u128;
    for _ in 0..leases {
        for tenant in 0..8u64 {
            service.issue(tenant, per_lease);
        }
    }
    service.drain();
    let report = service.shutdown();
    assert_eq!(report.issued_ids, 8 * per_lease * leases);
    assert_eq!(
        report.audit.counts.duplicate_ids,
        per_lease * leases,
        "parallel audit missed or double-counted twin duplicates"
    );
    assert_eq!(report.audit.per_thread.len(), 5);
}

/// The invariant slice of a stress report: everything that must not
/// depend on the transport. (`flagged_records` is an arrival-order
/// diagnostic and legitimately varies between runs.)
fn invariant_totals(r: &uuidp::service::stress::StressReport) -> (u64, u128, u64, u128, u128, u64) {
    (
        r.requests,
        r.issued_ids,
        r.errors,
        r.audit.counts.duplicate_ids,
        r.audit.counts.recorded_ids,
        r.audit.counts.recorded_arcs,
    )
}

#[test]
fn remote_stress_reproduces_in_process_audit_totals() {
    // The differential criterion: the same seed and mix, replayed once
    // through in-process channels and once over a loopback socket
    // through the real client, must produce identical audit totals.
    for mix in [TrafficMix::Skewed, TrafficMix::Uniform] {
        let mut service =
            ServiceConfig::new(AlgorithmKind::ClusterStar, IdSpace::with_bits(40).unwrap());
        service.shards = 2;
        service.audit_stripes = 16;
        service.audit_threads = 3;
        service.master_seed = 0xD1FF;
        // Twins make the duplicate counter non-trivial on both paths.
        service.seed_alias = Some((0, 3));
        let mut cfg = StressConfig::new(service, 6, 240, 32);
        cfg.mix = mix;
        let local = run_stress(cfg.clone());
        let remote = run_stress_remote(cfg).expect("loopback stress");
        assert!(
            local.audit.counts.collided(),
            "{mix}: twins must collide locally"
        );
        assert_eq!(
            invariant_totals(&local),
            invariant_totals(&remote),
            "{mix}: transport changed the audit totals"
        );
    }
}

proptest! {
    // Remote runs are whole client/server lifecycles, so a handful of
    // random scenarios is the budget; each one sweeps the full
    // {v1, v2} × {shards, audit_threads} grid.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn duplicate_ids_are_bit_identical_across_protocols_and_concurrency(
        seed in any::<u64>(),
        tenants in 3u64..7,
        count in 8u128..48,
    ) {
        use uuidp::client::ProtoVersion;
        let mut reference: Option<(u64, u128, u64, u128, u128, u64)> = None;
        for proto in [ProtoVersion::V1, ProtoVersion::V2] {
            for &shards in &[1usize, 3] {
                for &audit_threads in &[1usize, 4] {
                    let mut service = ServiceConfig::new(
                        AlgorithmKind::ClusterStar,
                        IdSpace::with_bits(40).unwrap(),
                    );
                    service.shards = shards;
                    service.audit_threads = audit_threads;
                    service.master_seed = seed;
                    // Twins keep the duplicate counter non-trivial.
                    service.seed_alias = Some((0, tenants - 1));
                    let mut cfg = StressConfig::new(service, tenants, 120, count);
                    cfg.mix = TrafficMix::Skewed;
                    cfg.protocol = proto;
                    let report = run_stress_remote(cfg).expect("loopback stress");
                    prop_assert!(
                        report.audit.counts.duplicate_ids > 0,
                        "twins must collide"
                    );
                    let got = invariant_totals(&report);
                    match &reference {
                        None => reference = Some(got),
                        Some(r) => prop_assert_eq!(
                            *r, got,
                            "{} x {} shards x {} audit threads diverged",
                            proto, shards, audit_threads
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn remote_hunter_mix_observes_real_arcs_over_the_wire() {
    // The adaptive attacker needs the arcs echoed back through the
    // socket; if client-side parsing dropped or garbled them the game
    // would stall at the probe phase.
    let mut service = ServiceConfig::new(AlgorithmKind::Cluster, IdSpace::with_bits(20).unwrap());
    service.shards = 2;
    let mut cfg = StressConfig::new(service, 4, 150, 1);
    cfg.mix = TrafficMix::Hunter;
    let report = run_stress_remote(cfg).expect("loopback stress");
    assert!(report.requests >= 4, "probe phase never ran");
    assert_eq!(report.issued_ids, report.requests as u128);
    assert_eq!(report.audit.counts.recorded_ids, report.issued_ids);
}

#[test]
fn idle_v2_connections_cost_near_zero_wakeups() {
    // PR 8's reactor promise: parked v2 connections are free. A soak of
    // 256 idle connections must (a) leave the epoll reactor asleep —
    // the wakeup counter barely moves over two idle seconds, where the
    // poll-rotation fallback would spin thousands of passes — and
    // (b) leave every connection fully alive afterwards.
    use std::net::TcpStream;
    use uuidp::client::frame::{self, FrameBody};
    use uuidp::service::net::{RemoteClient, TcpServer};

    let space = IdSpace::with_bits(40).unwrap();
    let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
    let server = TcpServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let registry = server.registry();
    let wakeups = registry.counter("uuidp_net_wakeups_total");

    let mut conns = Vec::new();
    for _ in 0..256 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        frame::write_frame(
            &mut stream,
            0,
            &FrameBody::Hello {
                version: frame::VERSION,
                space: space.size(),
            },
        )
        .unwrap();
        let hello = frame::read_frame(&mut stream).unwrap();
        assert!(matches!(hello.body, FrameBody::HelloOk { .. }));
        conns.push(stream);
    }

    let before = wakeups.get();
    std::thread::sleep(std::time::Duration::from_secs(2));
    let woke = wakeups.get() - before;
    if server.net_backend() == "epoll" {
        // The rotation fallback burns ~5000 passes/s at this backoff;
        // a sleeping epoll reactor wakes for nothing at all.
        assert!(
            woke < 500,
            "epoll reactor woke {woke} times over an idle 2s soak"
        );
    }

    // Liveness: every soaked connection still leases.
    for (i, stream) in conns.iter_mut().enumerate() {
        let corr = 1 + i as u64;
        frame::write_frame(
            stream,
            corr,
            &FrameBody::LeaseReq {
                tenant: (i % 8) as u64,
                count: 1,
            },
        )
        .unwrap();
        let reply = frame::read_frame(stream).unwrap();
        assert_eq!(reply.corr, corr);
        match reply.body {
            FrameBody::LeaseResp { granted, error, .. } => {
                assert_eq!(granted, 1, "conn {i}");
                assert!(error.is_none(), "conn {i}");
            }
            other => panic!("conn {i}: unexpected reply {other:?}"),
        }
    }
    drop(conns);

    let ctl = RemoteClient::connect(server.local_addr(), space).unwrap();
    let summary = ctl.shutdown().unwrap();
    assert_eq!(summary.issued_ids, 256);
    server.join().unwrap();
}
