//! Property tests for crash-recovery semantics (`uuidp_core::persist`).
//!
//! The write-ahead reservation contract, per algorithm: snapshot a
//! running generator with a reservation window `R`, let the "process"
//! emit up to `R` further IDs (the crash can land mid-run, mid-bin,
//! mid-session — anywhere in the window), then recover. The recovered
//! instance must
//!
//! 1. never re-emit any ID emitted before the crash, and
//! 2. continue the seed's exact permutation from the reservation
//!    frontier (recovery is a *skip*, not a re-seed — the effective
//!    instance count `n` does not grow),
//!
//! with the record round-tripped through the on-disk store so the
//! codec, checksums, and atomic-replace path are all under test.

use std::collections::HashSet;

use proptest::prelude::*;

use uuidp::core::algorithms::AlgorithmKind;
use uuidp::core::id::IdSpace;
use uuidp::core::persist::{recover, SnapshotRecord, SnapshotStore};

/// The five paper algorithms plus the RocksDB-shaped SessionCounter,
/// over universes small enough to stress structure but big enough that
/// ~1k-ID workloads never exhaust.
fn suite() -> Vec<(AlgorithmKind, IdSpace)> {
    let space = IdSpace::new(1 << 16).unwrap();
    vec![
        (AlgorithmKind::Random, space),
        (AlgorithmKind::Cluster, space),
        (AlgorithmKind::Bins { k: 16 }, space),
        (AlgorithmKind::ClusterStar, space),
        (AlgorithmKind::BinsStar, space),
        (
            AlgorithmKind::SessionCounter {
                session_bits: 10,
                counter_bits: 6,
            },
            IdSpace::with_bits(16).unwrap(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_never_reemits_and_resumes_the_exact_stream(
        seed in any::<u64>(),
        pre in 0u128..300,
        reservation in 1u128..400,
        extra_raw in any::<u128>(),
        post in 1u128..300,
    ) {
        // The crash point: anywhere inside the reserved window,
        // including its edges (0 = crash right after persisting,
        // `reservation` = the process used its whole window).
        let extra = extra_raw % (reservation + 1);
        let store_dir = std::env::temp_dir().join(format!(
            "uuidp-proptest-recovery-{}",
            std::process::id()
        ));
        let store = SnapshotStore::open(&store_dir).unwrap();

        for (tenant, (kind, space)) in suite().into_iter().enumerate() {
            let alg = kind.build(space);
            let mut gen = alg.spawn(seed);
            let mut pre_crash: HashSet<u128> = HashSet::new();
            for _ in 0..pre {
                pre_crash.insert(gen.next_id().unwrap().value());
            }
            let record = SnapshotRecord {
                seq: 1,
                epoch: 0,
                reservation,
                space,
                state: gen.snapshot().expect("paper algorithms snapshot"),
            };
            // Crash mid-window: these IDs went out the door but were
            // never persisted anywhere.
            for _ in 0..extra {
                pre_crash.insert(gen.next_id().unwrap().value());
            }

            // Round-trip the record through disk before recovering.
            store.save(tenant as u64, &record).unwrap();
            let loaded = store.load(tenant as u64).unwrap().expect("just saved");
            prop_assert_eq!(&loaded, &record, "{:?}: store round-trip", kind);

            let mut recovered = recover(&loaded).unwrap();
            prop_assert_eq!(
                recovered.generated(),
                pre + reservation,
                "{:?}: recovery must land on the reservation frontier",
                kind
            );
            let mut reference = alg.spawn(seed);
            reference.skip(pre + reservation).unwrap();
            for step in 0..post {
                let id = recovered.next_id().unwrap();
                prop_assert_eq!(
                    id,
                    reference.next_id().unwrap(),
                    "{:?}: diverged from the seed's permutation at step {}",
                    kind,
                    step
                );
                prop_assert!(
                    !pre_crash.contains(&id.value()),
                    "{:?}: re-emitted pre-crash ID {} at step {}",
                    kind,
                    id,
                    step
                );
            }
        }
        let _ = std::fs::remove_dir_all(&store_dir);
    }
}

/// Exhaustion edge: when the reservation reaches past the universe,
/// recovery must yield an exhausted generator, never wrap or reuse.
#[test]
fn recovery_past_capacity_is_exhausted_for_every_algorithm() {
    let space = IdSpace::new(512).unwrap();
    for kind in [
        AlgorithmKind::Random,
        AlgorithmKind::Cluster,
        AlgorithmKind::Bins { k: 8 },
    ] {
        let alg = kind.build(space);
        let mut gen = alg.spawn(3);
        for _ in 0..100 {
            gen.next_id().unwrap();
        }
        let record = SnapshotRecord {
            seq: 1,
            epoch: 0,
            reservation: 10_000,
            space,
            state: gen.snapshot().unwrap(),
        };
        let mut recovered = recover(&record).unwrap();
        assert!(
            recovered.next_id().is_err(),
            "{kind:?}: over-reserved recovery must exhaust, not reuse"
        );
    }
}
