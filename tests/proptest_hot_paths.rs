//! Differential property tests for this PR's zero-allocation hot paths.
//!
//! Two families:
//!
//! * the `IntervalSet` fast paths (in-place segment extension, the gap
//!   cursor behind `count_fitting_starts` / `sample_fitting_start`,
//!   `clear`-based reuse) against a brute-force point-set model;
//! * `IdGenerator::reset(seed)` against a freshly constructed generator
//!   — the contract the Monte-Carlo trial engine's generator recycling
//!   rests on: reset must be *observationally identical* to a fresh
//!   spawn, including snapshots and footprints.

use std::collections::HashSet;

use proptest::prelude::*;

use uuidp_core::algorithms::{AlgorithmKind, SessionCounter, Snowflake, SnowflakeConfig};
use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::{Arc, IntervalSet};
use uuidp_core::rng::Xoshiro256pp;
use uuidp_core::traits::{Algorithm, Footprint, IdGenerator};

fn suite(space: IdSpace) -> Vec<Box<dyn Algorithm>> {
    vec![
        AlgorithmKind::Random.build(space),
        AlgorithmKind::Cluster.build(space),
        AlgorithmKind::Bins { k: 32 }.build(space),
        AlgorithmKind::ClusterStar.build(space),
        AlgorithmKind::BinsStar.build(space),
        AlgorithmKind::BinsStarMaxFit.build(space),
        AlgorithmKind::SetAside { i: 6, j: 40 }.build(space),
        Box::new(SessionCounter::new(9, 5)),
        Box::new(Snowflake::new(SnowflakeConfig {
            timestamp_bits: 10,
            worker_bits: 5,
            sequence_bits: 5,
            requests_per_tick: 4,
            max_skew_ticks: 4, // nonzero so reset must redraw worker AND skew
        })),
    ]
}

/// Asserts two generators are observationally equal: same counters, same
/// footprints, and (where supported) identical snapshots.
fn assert_observationally_equal(
    a: &mut Box<dyn IdGenerator>,
    b: &mut Box<dyn IdGenerator>,
    context: &str,
) {
    assert_eq!(a.generated(), b.generated(), "{context}: generated differs");
    assert_eq!(a.snapshot(), b.snapshot(), "{context}: snapshot differs");
    match (a.footprint(), b.footprint()) {
        (Footprint::Arcs(sa), Footprint::Arcs(sb)) => {
            assert_eq!(sa.measure(), sb.measure(), "{context}: measure differs");
            assert_eq!(
                sa.intersection_measure_set(sb),
                sa.measure(),
                "{context}: footprints differ as sets"
            );
        }
        (Footprint::Points(pa), Footprint::Points(pb)) => {
            assert_eq!(pa, pb, "{context}: point footprints differ");
        }
        _ => panic!("{context}: footprint kinds differ"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    // -----------------------------------------------------------------
    // IntervalSet fast paths vs the brute-force point-set model.
    // -----------------------------------------------------------------

    #[test]
    fn extend_heavy_insertion_matches_model(
        ops in prop::collection::vec((0u128..160, 1u128..24, 0u128..6), 1..40),
    ) {
        // Ops are biased toward the emitter pattern: mostly short forward
        // extensions from a moving cursor, with occasional far jumps —
        // exactly what exercises the hint fast path and its invalidation.
        let m = 160u128;
        let space = IdSpace::new(m).unwrap();
        let mut set = IntervalSet::new(space);
        let mut model: HashSet<u128> = HashSet::new();
        let mut cursor = 0u128;
        for (jump, len, mode) in ops {
            let start = if mode == 0 { jump } else { cursor };
            let arc = Arc::new(space, Id(start % m), len);
            set.insert(arc);
            for i in 0..len {
                model.insert((start % m + i) % m);
            }
            cursor = (start + len) % m;
            set.assert_invariants();
        }
        prop_assert_eq!(set.measure(), model.len() as u128);
        for v in 0..m {
            prop_assert_eq!(set.contains(Id(v)), model.contains(&v), "id {}", v);
        }
        // Gap cursor totals and fitting counts against brute force.
        let gap_total: u128 = set.gaps().iter().map(|g| g.len).sum();
        prop_assert_eq!(gap_total, m - model.len() as u128);
        for len in [1u128, 2, 7, 33] {
            let brute = (0..m)
                .filter(|&x| !set.intersects_arc(Arc::new(space, Id(x), len)))
                .count() as u128;
            prop_assert_eq!(set.count_fitting_starts(len), brute, "len {}", len);
        }
    }

    #[test]
    fn sampled_fitting_starts_are_valid_and_exhaustive(
        arcs in prop::collection::vec((0u128..96, 1u128..16), 0..14),
        len in 1u128..12,
        seed in any::<u64>(),
    ) {
        let m = 96u128;
        let space = IdSpace::new(m).unwrap();
        let mut set = IntervalSet::new(space);
        for (start, alen) in arcs {
            set.insert(Arc::new(space, Id(start), alen));
        }
        let valid: HashSet<u128> = (0..m)
            .filter(|&x| !set.intersects_arc(Arc::new(space, Id(x), len)))
            .collect();
        let mut rng = Xoshiro256pp::new(seed);
        match set.sample_fitting_start(&mut rng, len) {
            Some(x) => prop_assert!(valid.contains(&x.value()), "invalid start {}", x),
            None => prop_assert!(valid.is_empty(), "missed {} valid starts", valid.len()),
        }
        // Repeated draws only ever land on valid starts.
        for _ in 0..16 {
            if let Some(x) = set.sample_fitting_start(&mut rng, len) {
                prop_assert!(valid.contains(&x.value()));
            }
        }
    }

    #[test]
    fn cleared_set_behaves_like_fresh(
        first in prop::collection::vec((0u128..64, 1u128..10), 0..10),
        second in prop::collection::vec((0u128..64, 1u128..10), 0..10),
    ) {
        let space = IdSpace::new(64).unwrap();
        let mut reused = IntervalSet::new(space);
        for &(s, l) in &first {
            reused.insert(Arc::new(space, Id(s), l));
        }
        reused.clear();
        let mut fresh = IntervalSet::new(space);
        for &(s, l) in &second {
            reused.insert(Arc::new(space, Id(s), l));
            fresh.insert(Arc::new(space, Id(s), l));
        }
        reused.assert_invariants();
        prop_assert_eq!(reused.measure(), fresh.measure());
        prop_assert_eq!(reused.segment_count(), fresh.segment_count());
        for v in 0..64u128 {
            prop_assert_eq!(reused.contains(Id(v)), fresh.contains(Id(v)));
        }
    }

    // -----------------------------------------------------------------
    // reset(seed) ≡ fresh spawn(seed), across all algorithms.
    // -----------------------------------------------------------------

    #[test]
    fn reset_is_observationally_a_fresh_spawn(
        dirty_seed in any::<u64>(),
        seed in any::<u64>(),
        dirty_ops in 0u128..120,
        checked_ops in 1u128..120,
    ) {
        let space = IdSpace::new(1 << 14).unwrap();
        for alg in suite(space) {
            // Dirty a generator with a different seed and some traffic...
            let mut recycled = alg.spawn(dirty_seed);
            for _ in 0..dirty_ops {
                if recycled.next_id().is_err() {
                    break;
                }
            }
            let _ = recycled.footprint(); // force flush paths to populate state
            // ...then reset and race it against a pristine instance.
            recycled.reset(seed);
            let mut fresh = alg.spawn(seed);
            assert_observationally_equal(&mut recycled, &mut fresh, &alg.name());
            for step in 0..checked_ops {
                let a = recycled.next_id();
                let b = fresh.next_id();
                match (&a, &b) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(
                        x, y, "{} diverged at step {}", alg.name(), step
                    ),
                    (Err(_), Err(_)) => break,
                    _ => prop_assert!(false, "{}: exhaustion mismatch", alg.name()),
                }
            }
            assert_observationally_equal(&mut recycled, &mut fresh, &alg.name());
        }
    }

    #[test]
    fn reset_equivalence_survives_bulk_skips(
        seed in any::<u64>(),
        skip in 1u128..600,
        tail in 1u128..40,
    ) {
        let space = IdSpace::new(1 << 14).unwrap();
        for alg in suite(space) {
            let mut recycled = alg.spawn(seed.wrapping_add(1));
            let _ = recycled.skip(skip / 2);
            recycled.reset(seed);
            let mut fresh = alg.spawn(seed);
            let ra = recycled.skip(skip);
            let rb = fresh.skip(skip);
            prop_assert_eq!(ra.is_ok(), rb.is_ok(), "{}: skip outcome", alg.name());
            assert_observationally_equal(&mut recycled, &mut fresh, &alg.name());
            for _ in 0..tail {
                match (recycled.next_id(), fresh.next_id()) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "{}", alg.name()),
                    (Err(_), Err(_)) => break,
                    _ => prop_assert!(false, "{}: exhaustion mismatch", alg.name()),
                }
            }
        }
    }
}
