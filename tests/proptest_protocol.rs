//! Protocol robustness, both wire generations:
//!
//! * the v1 `uuidp_service::protocol` parsers — the server's command
//!   parser and the client's reply parsers — must return typed errors,
//!   never panic, on arbitrary byte soup and on systematically garbled
//!   (truncated / bit-flipped) versions of every valid line, and valid
//!   lines must round-trip exactly;
//! * the v2 `uuidp_client::frame` codec must round-trip every frame
//!   bit-exactly, report prefixes as incomplete, and reject byte soup,
//!   truncations, and bit flips with typed errors — never a panic and
//!   never a silent wrong decode.

use proptest::prelude::*;

use uuidp::client::frame::{
    decode_frame, encode_frame, read_frame, write_frame, FrameBody, VERSION,
};
use uuidp::client::{Client, ClientOptions, Summary};
use uuidp::core::id::{Id, IdSpace};
use uuidp::core::interval::Arc;
use uuidp::service::metrics::LatencyHistogram;
use uuidp::service::protocol::{
    parse_lease_line, parse_summary, render_lease, render_summary, Command,
};
use uuidp::service::service::{AuditReport, LeaseReply, ServiceReport};
use uuidp::sim::audit::AuditCounts;

fn space() -> IdSpace {
    IdSpace::with_bits(20).unwrap()
}

/// Feeds one line to every parser; the only acceptable outcomes are
/// `Ok`/`Err` — a panic fails the test by unwinding.
fn all_parsers_survive(line: &str) {
    let _ = Command::parse(line);
    let _ = parse_lease_line(line, space());
    let _ = parse_summary(line);
}

/// A syntactically valid lease reply built from fuzzed fields.
fn lease_line(tenant: u64, granted: u128, arcs: &[(u128, u128)]) -> String {
    let s = space();
    render_lease(&LeaseReply {
        tenant,
        arcs: arcs
            .iter()
            .map(|&(start, len)| Arc::new(s, Id(start), len))
            .collect(),
        granted,
        error: None,
        halted: false,
    })
}

/// A syntactically valid shutdown summary built from fuzzed counters.
fn summary_line(issued: u128, leases: u64, dup: u128, lag: u64) -> String {
    let mut latency = LatencyHistogram::new();
    latency.record_ns(lag.max(1));
    render_summary(&ServiceReport {
        issued_ids: issued,
        leases,
        errors: leases / 7,
        latency,
        audit: AuditReport {
            counts: AuditCounts {
                duplicate_ids: dup,
                flagged_records: leases / 3,
                recorded_ids: issued,
                recorded_arcs: leases,
            },
            max_lag: std::time::Duration::from_nanos(lag),
            mean_lag_ns: lag as f64 / 2.0,
            records: leases,
            per_thread: vec![],
        },
        uptime: std::time::Duration::from_millis(5),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn arbitrary_byte_soup_never_panics_any_parser(
        bytes in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        // Lossy UTF-8 of raw bytes: control characters, invalid
        // sequences, embedded '=' and '+' and digits all occur.
        let raw: Vec<u8> = bytes.iter().flat_map(|w| w.to_le_bytes()).collect();
        let line = String::from_utf8_lossy(&raw);
        all_parsers_survive(&line);
        // Also with the grammar's own framing glued on.
        all_parsers_survive(&format!("lease {line}"));
        all_parsers_survive(&format!("bye {line}"));
        all_parsers_survive(&format!("lease tenant=1 granted=5 arcs={line}"));
    }

    #[test]
    fn truncated_and_flipped_valid_lines_error_not_panic(
        tenant in any::<u64>(),
        start in 0u128..(1 << 20),
        len_raw in any::<u128>(),
        cut_raw in any::<u64>(),
        flip_raw in any::<u64>(),
        issued in any::<u128>(),
        lag in any::<u64>(),
    ) {
        let len = 1 + len_raw % (1 << 10);
        let wrapped_start = (1 << 20) - 1; // wrap-around arc, too
        for line in [
            lease_line(tenant, len, &[(start, len)]),
            lease_line(tenant, len + 2, &[(start, len), (wrapped_start, 2)]),
            summary_line(issued, (issued % 10_000) as u64, issued / 3, lag),
        ] {
            // Truncation at every fuzzed cut point (on a char boundary).
            let cut = (cut_raw as usize) % (line.len() + 1);
            let cut = (0..=cut).rev().find(|&c| line.is_char_boundary(c)).unwrap();
            all_parsers_survive(&line[..cut]);
            // A one-byte corruption somewhere in the line.
            let mut garbled = line.clone().into_bytes();
            let at = (flip_raw as usize) % garbled.len();
            garbled[at] = garbled[at].wrapping_add(1 + (flip_raw % 96) as u8);
            all_parsers_survive(&String::from_utf8_lossy(&garbled));
        }
    }

    #[test]
    fn valid_lease_lines_round_trip_exactly(
        tenant in any::<u64>(),
        arcs in prop::collection::vec((0u128..(1 << 20), 1u128..(1 << 12)), 0..6),
    ) {
        let line = lease_line(tenant, arcs.iter().map(|a| a.1).sum(), &arcs);
        let wire = parse_lease_line(&line, space()).expect("valid line must parse");
        prop_assert_eq!(wire.tenant, tenant);
        prop_assert_eq!(wire.arcs.len(), arcs.len());
        for (parsed, &(start, len)) in wire.arcs.iter().zip(&arcs) {
            prop_assert_eq!(parsed.start.value(), start);
            prop_assert_eq!(parsed.len, len);
        }
    }

    #[test]
    fn valid_summaries_round_trip_exactly(
        issued in any::<u128>(),
        leases in any::<u64>(),
        dup in any::<u128>(),
        lag in any::<u64>(),
    ) {
        let line = summary_line(issued, leases, dup, lag);
        let wire = parse_summary(&line).expect("valid summary must parse");
        prop_assert_eq!(wire.issued_ids, issued);
        prop_assert_eq!(wire.leases, leases);
        prop_assert_eq!(wire.duplicate_ids, dup);
        prop_assert_eq!(wire.max_lag_ns, lag as u128);
    }
}

/// A v2 frame body built from fuzzed fields, cycling through the
/// request/response kinds that carry payloads.
fn fuzzed_body(pick: u64, tenant: u64, count: u128, arcs: &[(u128, u128)]) -> FrameBody {
    match pick % 8 {
        0 => FrameBody::LeaseReq { tenant, count },
        1 => FrameBody::LeaseResp {
            tenant,
            granted: count,
            arcs: arcs.to_vec(),
            error: tenant
                .is_multiple_of(2)
                .then(|| format!("exhausted after {count}")),
        },
        2 => FrameBody::ResetReq { tenant },
        3 => FrameBody::Error {
            message: format!("tenant {tenant} went missing"),
        },
        4 => FrameBody::Hello {
            version: 2,
            space: count,
        },
        5 => FrameBody::MetricsReq,
        6 => FrameBody::MetricsResp {
            // Multi-line Prometheus-ish text: exposition payloads are
            // free-form on the wire, so newlines and `#` comments must
            // survive the codec bit-exactly.
            text: format!(
                "# TYPE uuidp_leases_total counter\nuuidp_leases_total {tenant}\n\
                 uuidp_ids_issued_total {count}\n# EOF\n"
            ),
        },
        _ => FrameBody::SummaryResp(Summary {
            issued_ids: count,
            leases: tenant,
            errors: tenant / 3,
            p50_ns: count as f64 * 0.5,
            p99_ns: count as f64,
            p999_ns: count as f64 * 1.25,
            mean_ns: count as f64 * 0.75,
            duplicate_ids: count / 7,
            flagged_records: tenant / 5,
            recorded_ids: count,
            recorded_arcs: tenant,
            records: tenant,
            max_lag_ns: count,
            mean_lag_ns: count as f64 / 2.0,
            audit_threads: (tenant % 9) as usize,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn v2_frames_round_trip_bit_exactly(
        pick in any::<u64>(),
        corr in any::<u64>(),
        tenant in any::<u64>(),
        count in any::<u128>(),
        arcs in prop::collection::vec((any::<u128>(), any::<u128>()), 0..8),
    ) {
        let body = fuzzed_body(pick, tenant, count, &arcs);
        let bytes = encode_frame(corr, &body);
        let (frame, used) = decode_frame(&bytes)
            .expect("valid frame must decode")
            .expect("complete frame must not read as a prefix");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(frame.corr, corr);
        prop_assert_eq!(frame.body, body);
    }

    #[test]
    fn v2_decoder_survives_byte_soup_truncation_and_bit_flips(
        words in prop::collection::vec(any::<u64>(), 0..40),
        pick in any::<u64>(),
        corr in any::<u64>(),
        tenant in any::<u64>(),
        count in any::<u128>(),
        cut_raw in any::<u64>(),
        flip_raw in any::<u64>(),
    ) {
        // Raw soup: decode must return, never panic or over-allocate.
        let soup: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let _ = decode_frame(&soup);
        // Soup glued behind a valid magic, too.
        let mut magicked = uuidp::client::frame::MAGIC.to_vec();
        magicked.extend_from_slice(&soup);
        let _ = decode_frame(&magicked);

        let bytes = encode_frame(corr, &fuzzed_body(pick, tenant, count, &[(count, tenant as u128)]));
        // Every truncation is "incomplete" or a typed error.
        let cut = (cut_raw as usize) % bytes.len();
        prop_assert!(
            !matches!(decode_frame(&bytes[..cut]), Ok(Some(_))),
            "a truncated frame decoded as complete"
        );
        // A bit flip anywhere must never yield the original frame as a
        // silent wrong decode: the checksum catches payload/header
        // damage, the magic check catches the prefix.
        let at = (flip_raw as usize) % bytes.len();
        let mut garbled = bytes.clone();
        garbled[at] ^= 1 << (flip_raw % 8) as u8;
        if garbled[at] != bytes[at] {
            match decode_frame(&garbled) {
                Err(_) | Ok(None) => {}
                Ok(Some(_)) => prop_assert!(false, "bit flip at {} accepted", at),
            }
        }
    }
}

/// A hostile v2 server for the live-connection property below: speaks a
/// valid handshake, serves `good` complete leases, then injects one
/// mid-stream fault and hangs up. Runs on its own thread; panics here
/// surface as test failures when the listener side misbehaves, but the
/// property under test is the *client's* behavior.
fn hostile_server(
    listener: std::net::TcpListener,
    good: u64,
    fault: u8,
    flip: u64,
) -> std::thread::JoinHandle<()> {
    use std::io::Write as _;
    std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let hello = read_frame(&mut conn).expect("client hello");
        let FrameBody::Hello { space: m, .. } = hello.body else {
            panic!("first frame must be a hello");
        };
        write_frame(
            &mut conn,
            hello.corr,
            &FrameBody::HelloOk {
                version: VERSION,
                space: m,
            },
        )
        .expect("hello-ok");
        let mut served = 0;
        loop {
            let req = match read_frame(&mut conn) {
                Ok(f) => f,
                Err(_) => return, // client gave up first — fine
            };
            let FrameBody::LeaseReq { tenant, count } = req.body else {
                return;
            };
            let body = FrameBody::LeaseResp {
                tenant,
                granted: count,
                arcs: vec![(0, count)],
                error: None,
            };
            if served < good {
                write_frame(&mut conn, req.corr, &body).expect("good lease");
                served += 1;
                continue;
            }
            // The adversarial move, in place of the awaited reply.
            match fault % 4 {
                0 => {
                    // Non-magic byte soup where a frame should start.
                    let _ = conn.write_all(&[0xDE; 64]);
                }
                1 => {
                    // A valid frame cut mid-payload, then EOF.
                    let bytes = encode_frame(req.corr, &body);
                    let _ = conn.write_all(&bytes[..bytes.len() / 2]);
                }
                2 => {
                    // A checksum-breaking bit flip inside the payload.
                    let mut bytes = encode_frame(req.corr, &body);
                    let at = 17 + (flip as usize) % (bytes.len() - 17 - 8);
                    bytes[at] ^= 1 << (flip % 8) as u8;
                    let _ = conn.write_all(&bytes);
                }
                _ => {} // plain EOF mid-request
            }
            return; // drop the connection
        }
    })
}

/// One case of the live-connection property: every pre-fault lease
/// arrives complete, the faulted request surfaces a typed error (never
/// a panic, never a partially-delivered lease), and every later request
/// fails fast instead of hanging. A plain fn so the `proptest!` body
/// stays within the macro's expansion budget.
fn live_adversary_case(good: u64, fault: u8, flip: u64, tenant: u64, count: u128) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = hostile_server(listener, good, fault, flip);
    let client = Client::connect_with(
        addr,
        space(),
        ClientOptions {
            // Bounds the worst case so a regression hangs the test run
            // for seconds, not forever.
            request_timeout: Some(std::time::Duration::from_secs(10)),
            ..ClientOptions::default()
        },
    )
    .expect("handshake is served cleanly");
    for _ in 0..good {
        let lease = client
            .lease(tenant, count)
            .expect("pre-fault leases are clean");
        assert_eq!(lease.granted, count);
        assert_eq!(lease.arcs.iter().map(|a| a.len).sum::<u128>(), count);
        assert!(lease.error.is_none());
    }
    // The faulted request: an error, never a partial lease.
    let hit = client.lease(tenant, count);
    assert!(hit.is_err(), "mid-stream fault delivered a lease: {hit:?}");
    // The connection is dead; later requests fail fast, not hang.
    let start = std::time::Instant::now();
    assert!(client.lease(tenant, count).is_err());
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "post-fault request should fail fast"
    );
    server.join().expect("hostile server exits cleanly");
}

proptest! {
    // Each case stands up a real TCP pair; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Mid-stream adversarial sequences on a LIVE connection.
    #[test]
    fn live_v2_connection_survives_midstream_adversaries(
        good in 0u64..3,
        fault in 0u8..4,
        flip in any::<u64>(),
        tenant in any::<u64>(),
        count in 1u128..512,
    ) {
        live_adversary_case(good, fault, flip, tenant, count);
    }
}

/// The classic attack lines, pinned explicitly (no randomness).
#[test]
fn hostile_classics_get_typed_errors() {
    for line in [
        "lease",                              // missing fields
        "lease 1",                            // still missing
        "lease 99999999999999999999999999 5", // u64 overflow
        "reset -3",                           // sign
        "lease tenant=1 granted=x arcs=",     // non-numeric reply
        "lease tenant=1 granted=5 arcs=1+",   // dangling arc
        "lease tenant=1 granted=5 arcs=+5",   // dangling start
        "lease tenant=1 granted=5 arcs=0+0",  // empty arc
        "lease tenant=1 granted=5 arcs=9999999999999999999999999999999999999999+1",
        "bye",                   // summary with nothing
        "bye issued=1 leases=2", // summary too short
        "bye issued=1 bogus=7",  // unknown field
        "shutdown now please",   // trailing junk
    ] {
        all_parsers_survive(line);
        assert!(
            Command::parse(line).is_err()
                || parse_lease_line(line, space()).is_err()
                || parse_summary(line).is_err(),
            "`{line}` should fail at least one parser"
        );
    }
}
