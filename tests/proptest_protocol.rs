//! Protocol robustness: the `uuidp_service::protocol` parsers — both
//! the server's command parser and the client's reply parsers — must
//! return typed errors, never panic, on arbitrary byte soup, and on
//! systematically garbled (truncated / bit-flipped) versions of every
//! valid line. Valid lines must round-trip exactly.

use proptest::prelude::*;

use uuidp::core::id::{Id, IdSpace};
use uuidp::core::interval::Arc;
use uuidp::service::metrics::LatencyHistogram;
use uuidp::service::protocol::{
    parse_lease_line, parse_summary, render_lease, render_summary, Command,
};
use uuidp::service::service::{AuditReport, LeaseReply, ServiceReport};
use uuidp::sim::audit::AuditCounts;

fn space() -> IdSpace {
    IdSpace::with_bits(20).unwrap()
}

/// Feeds one line to every parser; the only acceptable outcomes are
/// `Ok`/`Err` — a panic fails the test by unwinding.
fn all_parsers_survive(line: &str) {
    let _ = Command::parse(line);
    let _ = parse_lease_line(line, space());
    let _ = parse_summary(line);
}

/// A syntactically valid lease reply built from fuzzed fields.
fn lease_line(tenant: u64, granted: u128, arcs: &[(u128, u128)]) -> String {
    let s = space();
    render_lease(&LeaseReply {
        tenant,
        arcs: arcs
            .iter()
            .map(|&(start, len)| Arc::new(s, Id(start), len))
            .collect(),
        granted,
        error: None,
    })
}

/// A syntactically valid shutdown summary built from fuzzed counters.
fn summary_line(issued: u128, leases: u64, dup: u128, lag: u64) -> String {
    let mut latency = LatencyHistogram::new();
    latency.record_ns(lag.max(1));
    render_summary(&ServiceReport {
        issued_ids: issued,
        leases,
        errors: leases / 7,
        latency,
        audit: AuditReport {
            counts: AuditCounts {
                duplicate_ids: dup,
                flagged_records: leases / 3,
                recorded_ids: issued,
                recorded_arcs: leases,
            },
            max_lag: std::time::Duration::from_nanos(lag),
            mean_lag_ns: lag as f64 / 2.0,
            records: leases,
            per_thread: vec![],
        },
        uptime: std::time::Duration::from_millis(5),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn arbitrary_byte_soup_never_panics_any_parser(
        bytes in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        // Lossy UTF-8 of raw bytes: control characters, invalid
        // sequences, embedded '=' and '+' and digits all occur.
        let raw: Vec<u8> = bytes.iter().flat_map(|w| w.to_le_bytes()).collect();
        let line = String::from_utf8_lossy(&raw);
        all_parsers_survive(&line);
        // Also with the grammar's own framing glued on.
        all_parsers_survive(&format!("lease {line}"));
        all_parsers_survive(&format!("bye {line}"));
        all_parsers_survive(&format!("lease tenant=1 granted=5 arcs={line}"));
    }

    #[test]
    fn truncated_and_flipped_valid_lines_error_not_panic(
        tenant in any::<u64>(),
        start in 0u128..(1 << 20),
        len_raw in any::<u128>(),
        cut_raw in any::<u64>(),
        flip_raw in any::<u64>(),
        issued in any::<u128>(),
        lag in any::<u64>(),
    ) {
        let len = 1 + len_raw % (1 << 10);
        let wrapped_start = (1 << 20) - 1; // wrap-around arc, too
        for line in [
            lease_line(tenant, len, &[(start, len)]),
            lease_line(tenant, len + 2, &[(start, len), (wrapped_start, 2)]),
            summary_line(issued, (issued % 10_000) as u64, issued / 3, lag),
        ] {
            // Truncation at every fuzzed cut point (on a char boundary).
            let cut = (cut_raw as usize) % (line.len() + 1);
            let cut = (0..=cut).rev().find(|&c| line.is_char_boundary(c)).unwrap();
            all_parsers_survive(&line[..cut]);
            // A one-byte corruption somewhere in the line.
            let mut garbled = line.clone().into_bytes();
            let at = (flip_raw as usize) % garbled.len();
            garbled[at] = garbled[at].wrapping_add(1 + (flip_raw % 96) as u8);
            all_parsers_survive(&String::from_utf8_lossy(&garbled));
        }
    }

    #[test]
    fn valid_lease_lines_round_trip_exactly(
        tenant in any::<u64>(),
        arcs in prop::collection::vec((0u128..(1 << 20), 1u128..(1 << 12)), 0..6),
    ) {
        let line = lease_line(tenant, arcs.iter().map(|a| a.1).sum(), &arcs);
        let wire = parse_lease_line(&line, space()).expect("valid line must parse");
        prop_assert_eq!(wire.tenant, tenant);
        prop_assert_eq!(wire.arcs.len(), arcs.len());
        for (parsed, &(start, len)) in wire.arcs.iter().zip(&arcs) {
            prop_assert_eq!(parsed.start.value(), start);
            prop_assert_eq!(parsed.len, len);
        }
    }

    #[test]
    fn valid_summaries_round_trip_exactly(
        issued in any::<u128>(),
        leases in any::<u64>(),
        dup in any::<u128>(),
        lag in any::<u64>(),
    ) {
        let line = summary_line(issued, leases, dup, lag);
        let wire = parse_summary(&line).expect("valid summary must parse");
        prop_assert_eq!(wire.issued_ids, issued);
        prop_assert_eq!(wire.leases, leases);
        prop_assert_eq!(wire.duplicate_ids, dup);
        prop_assert_eq!(wire.max_lag_ns, lag as u128);
    }
}

/// The classic attack lines, pinned explicitly (no randomness).
#[test]
fn hostile_classics_get_typed_errors() {
    for line in [
        "lease",                              // missing fields
        "lease 1",                            // still missing
        "lease 99999999999999999999999999 5", // u64 overflow
        "reset -3",                           // sign
        "lease tenant=1 granted=x arcs=",     // non-numeric reply
        "lease tenant=1 granted=5 arcs=1+",   // dangling arc
        "lease tenant=1 granted=5 arcs=+5",   // dangling start
        "lease tenant=1 granted=5 arcs=0+0",  // empty arc
        "lease tenant=1 granted=5 arcs=9999999999999999999999999999999999999999+1",
        "bye",                   // summary with nothing
        "bye issued=1 leases=2", // summary too short
        "bye issued=1 bogus=7",  // unknown field
        "shutdown now please",   // trailing junk
    ] {
        all_parsers_survive(line);
        assert!(
            Command::parse(line).is_err()
                || parse_lease_line(line, space()).is_err()
                || parse_summary(line).is_err(),
            "`{line}` should fail at least one parser"
        );
    }
}
