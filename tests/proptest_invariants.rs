//! Property-based tests on the core data structures and the paper's
//! auxiliary lemmas.

use std::collections::HashSet;

use proptest::prelude::*;

use uuidp_adversary::profile::{prev_power_of_two, DemandProfile};
use uuidp_analysis::inequalities::{lemma13_bounds, lemma15_compare, lemma21_sides};
use uuidp_core::algorithms::AlgorithmKind;
use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::{Arc, IntervalSet};
use uuidp_core::rng::Xoshiro256pp;
use uuidp_core::shuffle::LazyShuffle;

// ---------------------------------------------------------------------
// IntervalSet vs a naive HashSet model.
// ---------------------------------------------------------------------

fn arcs_strategy(m: u128) -> impl Strategy<Value = Vec<(u128, u128)>> {
    prop::collection::vec((0..m, 1..=m / 2), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn interval_set_matches_naive_model(arcs in arcs_strategy(96)) {
        let m = 96u128;
        let space = IdSpace::new(m).unwrap();
        let mut set = IntervalSet::new(space);
        let mut model: HashSet<u128> = HashSet::new();
        for (start, len) in arcs {
            let arc = Arc::new(space, Id(start), len);
            set.insert(arc);
            for i in 0..len {
                model.insert((start + i) % m);
            }
            set.assert_invariants();
        }
        prop_assert_eq!(set.measure(), model.len() as u128);
        for v in 0..m {
            prop_assert_eq!(set.contains(Id(v)), model.contains(&v), "id {}", v);
        }
        // Gaps complement the set exactly.
        let gap_total: u128 = set.gaps().iter().map(|g| g.len).sum();
        prop_assert_eq!(gap_total, m - model.len() as u128);
        // Fitting starts agree with brute force for a few lengths.
        for len in [1u128, 3, 10] {
            let brute = (0..m)
                .filter(|&x| !set.intersects_arc(Arc::new(space, Id(x), len)))
                .count() as u128;
            prop_assert_eq!(set.count_fitting_starts(len), brute, "len {}", len);
        }
    }

    #[test]
    fn interval_intersection_matches_model(
        arcs_a in arcs_strategy(64),
        arcs_b in arcs_strategy(64),
    ) {
        let m = 64u128;
        let space = IdSpace::new(m).unwrap();
        let build = |arcs: &[(u128, u128)]| {
            let mut set = IntervalSet::new(space);
            let mut model = HashSet::new();
            for &(start, len) in arcs {
                set.insert(Arc::new(space, Id(start), len));
                for i in 0..len {
                    model.insert((start + i) % m);
                }
            }
            (set, model)
        };
        let (sa, ma) = build(&arcs_a);
        let (sb, mb) = build(&arcs_b);
        let expected: u128 = ma.intersection(&mb).count() as u128;
        prop_assert_eq!(sa.intersection_measure_set(&sb), expected);
        prop_assert_eq!(sa.intersects_set(&sb), expected > 0);
    }

    // -----------------------------------------------------------------
    // LazyShuffle is a permutation.
    // -----------------------------------------------------------------

    #[test]
    fn lazy_shuffle_is_a_permutation(n in 1u128..200, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::new(seed);
        let mut shuffle = LazyShuffle::new(n);
        let mut seen = HashSet::new();
        while let Some(x) = shuffle.draw(&mut rng) {
            prop_assert!(x < n);
            prop_assert!(seen.insert(x));
        }
        prop_assert_eq!(seen.len() as u128, n);
    }

    // -----------------------------------------------------------------
    // Generators never repeat within an instance (beyond unit tests:
    // arbitrary seeds and demands).
    // -----------------------------------------------------------------

    #[test]
    fn generators_never_repeat(seed in any::<u64>(), demand in 1u128..300) {
        let space = IdSpace::new(1 << 14).unwrap();
        for kind in [
            AlgorithmKind::Random,
            AlgorithmKind::Cluster,
            AlgorithmKind::Bins { k: 32 },
            AlgorithmKind::ClusterStar,
            AlgorithmKind::BinsStar,
        ] {
            let alg = kind.build(space);
            let mut gen = alg.spawn(seed);
            let mut seen = HashSet::new();
            for _ in 0..demand {
                match gen.next_id() {
                    Ok(id) => prop_assert!(seen.insert(id), "{} repeated", alg.name()),
                    Err(_) => break,
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Snapshot/resume: arbitrary split points across all algorithms.
    // -----------------------------------------------------------------

    #[test]
    fn snapshot_resume_is_exact_at_any_point(
        seed in any::<u64>(),
        before in 0u128..150,
        after in 1u128..150,
    ) {
        let space = IdSpace::new(1 << 14).unwrap();
        for kind in [
            AlgorithmKind::Random,
            AlgorithmKind::Cluster,
            AlgorithmKind::Bins { k: 32 },
            AlgorithmKind::ClusterStar,
            AlgorithmKind::BinsStar,
        ] {
            let alg = kind.build(space);
            let mut original = alg.spawn(seed);
            let mut ok = true;
            for _ in 0..before {
                if original.next_id().is_err() {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue; // exhausted before the split; nothing to check
            }
            let snap = original.snapshot().expect("suite supports snapshots");
            let mut resumed = uuidp_core::state::restore(space, &snap).unwrap();
            prop_assert_eq!(resumed.generated(), original.generated());
            for _ in 0..after {
                let a = original.next_id();
                let b = resumed.next_id();
                match (&a, &b) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "{} diverged", alg.name()),
                    (Err(_), Err(_)) => break,
                    _ => prop_assert!(false, "{}: exhaustion mismatch", alg.name()),
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Profile machinery.
    // -----------------------------------------------------------------

    #[test]
    fn rounding_is_idempotent_and_dominated(demands in prop::collection::vec(1u128..10_000, 2..10)) {
        let p = DemandProfile::new(demands);
        let r = p.rounded();
        // Idempotent.
        prop_assert_eq!(r.rounded(), r.clone());
        // Every rounded entry is a power of two not exceeding the original.
        for (orig, rounded) in p.demands().iter().zip(r.demands()) {
            prop_assert!(rounded.is_power_of_two());
            prop_assert!(rounded <= orig);
        }
        // Rank distribution counts all instances.
        let total: u128 = r.rank_distribution().iter().sum();
        prop_assert_eq!(total, r.n() as u128);
    }

    #[test]
    fn prev_power_of_two_brackets(d in 1u128..u64::MAX as u128) {
        let p = prev_power_of_two(d);
        prop_assert!(p.is_power_of_two());
        prop_assert!(p <= d);
        prop_assert!(d < p * 2);
    }

    // -----------------------------------------------------------------
    // The paper's auxiliary lemmas on random inputs.
    // -----------------------------------------------------------------

    #[test]
    fn lemma21_inequality_holds(x in 0u128..100_000, y in 0u128..100_000) {
        let (lhs, rhs) = lemma21_sides(x, y);
        prop_assert!(lhs <= rhs + 1e-6, "x={} y={}: {} > {}", x, y, lhs, rhs);
    }

    #[test]
    fn lemma13_bounds_are_ordered(probs in prop::collection::vec(0.0f64..0.4, 1..10)) {
        let (lo, hi) = lemma13_bounds(&probs);
        prop_assert!(lo <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
    }

    #[test]
    fn lemma15_uniform_maximizes(weights in prop::collection::vec(0.05f64..1.0, 3..8), n in 2usize..4) {
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let (uniform, given) = lemma15_compare(n, &probs);
        prop_assert!(uniform >= given - 1e-9, "uniform {} < given {}", uniform, given);
    }
}
